"""Benchmark E10 — ablations (design-choice checks).

* pre-ordering value: full HRMS vs the same placer in program order;
* initial-hypernode invariance (footnote 1);
* phase-time split (ordering vs placement).
"""

from repro.experiments.ablations import (
    hypernode_sensitivity,
    phase_split,
    preordering_value,
)
from repro.workloads.perfectclub import perfect_club_suite


def test_preordering_value(benchmark, pc_machine):
    loops = perfect_club_suite(n_loops=60, seed=31)

    result = benchmark.pedantic(
        preordering_value, args=(loops, pc_machine), rounds=1, iterations=1
    )
    assert result.hrms_maxlive <= result.ablated_maxlive


def test_hypernode_sensitivity(benchmark, gov_suite, gov_machine):
    sample = gov_suite[:6]

    rows = benchmark.pedantic(
        hypernode_sensitivity,
        args=(sample, gov_machine),
        kwargs={"max_candidates": 6},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.max_maxlive - row.min_maxlive <= 2
        assert row.min_ii == row.max_ii


def test_phase_split(benchmark, pc_machine):
    loops = perfect_club_suite(n_loops=40, seed=37)

    split = benchmark.pedantic(
        phase_split, args=(loops, pc_machine), rounds=1, iterations=1
    )
    assert split.ordering_share < 0.6  # placement dominates
