"""Benchmark — scheduler comparison on compiler-derived graphs.

The other benches use hand-built or synthetic DDGs; this one compiles the
21 bundled loop-language kernels with :mod:`repro.frontend` (the ICTINEO
stand-in) and schedules each with every heuristic method.  Checked
claims: HRMS reaches the MII everywhere, never uses more registers in
aggregate than the register-blind methods, and costs heuristic-class
time.
"""

from __future__ import annotations

from repro.experiments.frontend_suite import (
    render_frontend_suite,
    run_frontend_suite,
)


def test_frontend_suite(benchmark):
    result = benchmark.pedantic(run_frontend_suite, rounds=1, iterations=1)
    print()
    print(render_frontend_suite(result))

    summary = result.summary()
    kernels = len(result.for_method("hrms"))
    hrms_at_mii, hrms_maxlive, hrms_time = summary["hrms"]

    # HRMS reaches the MII on every compiled kernel.
    assert hrms_at_mii == kernels
    # It needs fewer registers in aggregate than the register-blind
    # baselines.
    for blind in ("topdown", "frlc", "ims"):
        assert hrms_maxlive <= summary[blind][1]
    # And costs the same order of magnitude as the other heuristics.
    slowest_heuristic = max(
        seconds for _, _, seconds in summary.values()
    )
    assert hrms_time <= slowest_heuristic * 3 + 0.05
