"""Benchmark — register-allocation strategies vs the MaxLive bound.

Reproduces the claim the paper leans on (footnote 4, from Rau et al.
PLDI'92): post-schedule allocation almost always reaches MaxLive, and
end-fit with adjacency ordering never needs more than MaxLive + 1.  The
matrix of (ordering × fit) strategies and the rotating-register-file
allocator run over the Table-1 suite scheduled by HRMS.
"""

from __future__ import annotations

from repro.schedule.rotating import allocate_rotating
from repro.schedule.wands import allocate_wands
from repro.schedule.strategies import FITS, ORDERINGS, allocate_with_strategy
from repro.schedulers.registry import make_scheduler


def _schedules(suite, machine):
    scheduler = make_scheduler("hrms")
    return [scheduler.schedule(loop.graph, machine) for loop in suite]


def test_strategy_matrix_overhead(benchmark, gov_suite, gov_machine):
    schedules = _schedules(gov_suite, gov_machine)

    def run():
        rows = {}
        for ordering in ORDERINGS:
            for fit in FITS:
                extra = 0
                for schedule in schedules:
                    allocation = allocate_with_strategy(
                        schedule, ordering, fit
                    )
                    extra += allocation.overhead
                rows[(ordering, fit)] = extra
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTotal registers over MaxLive across the 24-kernel suite:")
    for (ordering, fit), extra in sorted(rows.items(), key=lambda kv: kv[1]):
        print(f"  {ordering:10s} x {fit:6s} : +{extra}")
    # The paper's preferred pair is (near-)optimal.
    best = min(rows.values())
    assert rows[("adjacency", "end")] <= best + 2


def test_rotating_file_overhead(benchmark, gov_suite, gov_machine):
    schedules = _schedules(gov_suite, gov_machine)

    def run():
        return sum(
            allocate_rotating(schedule).overhead for schedule in schedules
        )

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nRotating file: +{total} registers over MaxLive (24 loops)")
    assert total <= len(schedules)


def test_wands_only_overhead(benchmark, gov_suite, gov_machine):
    """PLDI'92's named strategy: whole-value blocks, end-fit packed."""
    schedules = _schedules(gov_suite, gov_machine)

    def run():
        return sum(
            allocate_wands(schedule).overhead for schedule in schedules
        )

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nWands-only: +{total} registers over MaxLive (24 loops)")
    assert total <= 2 * len(schedules)
