"""Benchmark E9 — Figure 14 (cycles under register budgets, with spill).

The heaviest artefact: every loop is scheduled under infinite / 64 / 32
registers, spilling and re-scheduling when over budget.  Benchmarked on a
40-loop slice (the full population is the CLI's job); the Figure 14 shape
claims are asserted on the result.
"""

from repro.experiments.fig14 import figure14
from repro.experiments.stats import run_study


def test_figure14_budgets(benchmark, pc_suite_tiny):
    study = run_study(loops=pc_suite_tiny)

    result = benchmark.pedantic(
        figure14, args=(study,), rounds=1, iterations=1
    )

    for method in ("hrms", "topdown"):
        unlimited = result.cycles(method, None)
        at64 = result.cycles(method, 64)
        at32 = result.cycles(method, 32)
        assert unlimited <= at64 <= at32
    # HRMS never loses under register pressure.
    assert result.cycles("hrms", 64) <= result.cycles("topdown", 64)
    assert result.cycles("hrms", 32) <= result.cycles("topdown", 32)
