"""Benchmarks E6–E8 — Figures 11, 12, 13 (register-pressure curves).

The scheduling study is built once; each figure's curve construction is
benchmarked separately and its dominance/monotonicity properties are
asserted inline.
"""

import pytest

from repro.experiments.fig11 import figure11
from repro.experiments.fig12 import figure12
from repro.experiments.fig13 import figure13
from repro.experiments.results import series_at
from repro.experiments.stats import run_study


@pytest.fixture(scope="module")
def study(pc_suite_small):
    return run_study(loops=pc_suite_small)


@pytest.mark.parametrize(
    "figure", [figure11, figure12, figure13], ids=["fig11", "fig12", "fig13"]
)
def test_figure_curves(benchmark, study, figure):
    series = benchmark(figure, study)
    for name, curve in series.items():
        fractions = [frac for _, frac in curve]
        assert all(b >= a for a, b in zip(fractions, fractions[1:])), name
        assert fractions[-1] == pytest.approx(1.0)


def test_fig11_hrms_dominates(study):
    series = figure11(study)
    # The paper's claim: HRMS's cumulative curve lies on or above
    # Top-Down's nearly everywhere (mean requirement ~87 %).
    top = max(x for x, _ in series["topdown"])
    losses = sum(
        1
        for x in range(top + 1)
        if series_at(series["hrms"], x) < series_at(series["topdown"], x)
        - 1e-9
    )
    assert losses <= max(2, top // 20)
