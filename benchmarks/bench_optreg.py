"""Benchmark — HRMS register quality vs the MILP optimum ([7]).

The paper argues HRMS "performs ... almost as well as a linear
programming method but requiring much less time".  Table 1 makes that
case against SPILP's buffer objective; this bench audits the *register*
objective directly: the Eichenberger-style MILP of
:mod:`repro.schedulers.optreg` computes the minimum MaxLive at the
achieved II on the small Table-1 kernels, and HRMS must stay within one
register of it while being orders of magnitude faster.
"""

from __future__ import annotations

import time

from repro.mii.analysis import compute_mii
from repro.schedule.maxlive import max_live
from repro.schedulers.optreg import OptRegScheduler
from repro.schedulers.registry import make_scheduler

#: Kernels small enough for the MILP to solve quickly.
SMALL_KERNEL_LIMIT = 10


def test_hrms_vs_register_optimum(benchmark, gov_suite, gov_machine):
    loops = [
        loop for loop in gov_suite if len(loop.graph) <= SMALL_KERNEL_LIMIT
    ]
    assert loops, "suite unexpectedly has no small kernels"

    def run():
        rows = []
        for loop in loops:
            analysis = compute_mii(loop.graph, gov_machine)
            hrms_started = time.perf_counter()
            hrms = make_scheduler("hrms").schedule(
                loop.graph, gov_machine, analysis
            )
            hrms_seconds = time.perf_counter() - hrms_started
            milp_started = time.perf_counter()
            optimal = OptRegScheduler(time_limit=60.0).schedule(
                loop.graph, gov_machine, analysis
            )
            milp_seconds = time.perf_counter() - milp_started
            rows.append(
                (
                    loop.name,
                    hrms.ii,
                    optimal.ii,
                    max_live(hrms),
                    max_live(optimal),
                    hrms_seconds,
                    milp_seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nkernel            II(h/o)  MaxLive(h/o)  time h/o (s)")
    over = 0
    for name, hrms_ii, opt_ii, hrms_ml, opt_ml, ht, mt in rows:
        print(
            f"{name:16s}  {hrms_ii}/{opt_ii}      {hrms_ml}/{opt_ml}"
            f"          {ht:.4f}/{mt:.3f}"
        )
        if hrms_ii == opt_ii:
            over += max(0, hrms_ml - opt_ml)
    # HRMS stays within one register of the optimum per kernel on
    # average across the small suite.
    assert over <= len(rows)
