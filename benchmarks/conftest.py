"""Shared fixtures for the benchmark harness.

Every benchmark regenerates (a slice of) one of the paper's artefacts;
the fixtures pin the workloads so numbers are comparable across runs.
"""

from __future__ import annotations

import pytest

from repro.machine.configs import govindarajan_machine, perfect_club_machine
from repro.workloads.govindarajan import govindarajan_suite
from repro.workloads.perfectclub import perfect_club_suite


@pytest.fixture(scope="session")
def gov_machine():
    return govindarajan_machine()


@pytest.fixture(scope="session")
def pc_machine():
    return perfect_club_machine()


@pytest.fixture(scope="session")
def gov_suite():
    return govindarajan_suite()


@pytest.fixture(scope="session")
def pc_suite_small():
    """120 loops: the figure benchmarks' population."""
    return perfect_club_suite(n_loops=120)


@pytest.fixture(scope="session")
def pc_suite_tiny():
    """40 loops: for the spill-heavy Figure 14 benchmark."""
    return perfect_club_suite(n_loops=40)
