"""Benchmarks E3/E4 — Tables 2 and 3 (summary + compile-time totals).

Runs the full Table-1 harness once (heuristics only, to keep benchmark
rounds bounded) and benchmarks the summarisation; the assertions encode
the paper's Table 2 expectations: HRMS never loses II to the other
heuristics on more loops than it wins, and the time totals exist for
every method.
"""

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import summarise
from repro.experiments.table3 import summarise_times


@pytest.fixture(scope="module")
def records(gov_suite, gov_machine):
    return run_table1(
        loops=gov_suite,
        methods=("hrms", "slack", "frlc", "topdown"),
        machine=gov_machine,
    )


def test_table2_summary(benchmark, records):
    comparisons = benchmark(summarise, records)
    by_method = {c.method: c for c in comparisons}
    for method in ("slack", "frlc", "topdown"):
        comparison = by_method[method]
        assert comparison.ii_better >= comparison.ii_worse
        assert comparison.buf_better >= comparison.buf_worse


def test_table3_totals(benchmark, records):
    totals = benchmark(summarise_times, records)
    assert {t.method for t in totals} == {
        "hrms", "slack", "frlc", "topdown",
    }
    assert all(t.total_seconds > 0 for t in totals)
