"""Benchmark E1 — the motivating example (Figures 2–4).

Times each scheduler on the Section 2 graph and asserts the paper's
register counts (8 / 7 / 6) inside the benchmarked function, so the
benchmark doubles as a regression gate.
"""

import pytest

from repro.machine.configs import motivating_machine
from repro.schedule.maxlive import max_live
from repro.schedulers.registry import make_scheduler
from repro.workloads.motivating import (
    MOTIVATING_REGISTERS,
    motivating_example,
)

MACHINE = motivating_machine()


@pytest.mark.parametrize("method", ["topdown", "bottomup", "hrms"])
def test_motivating_schedule(benchmark, method):
    graph = motivating_example()
    scheduler = make_scheduler(method)

    def run():
        schedule = scheduler.schedule(graph, MACHINE)
        assert schedule.ii == 2
        assert max_live(schedule) == MOTIVATING_REGISTERS[method]
        return schedule

    schedule = benchmark(run)
    assert schedule.stage_count == 5
