"""Benchmark E5 — the Section 4.2 aggregate study.

Times the full schedule-everything pipeline (MII analysis + HRMS +
Top-Down on the loop population) and asserts the paper's aggregate claims
in their shape form: near-optimal II almost everywhere, mean II/MII close
to 1, HRMS needing fewer registers than Top-Down overall.
"""

from repro.experiments.stats import aggregate, run_study


def test_perfect_club_study(benchmark, pc_suite_small):
    def run():
        study = run_study(loops=pc_suite_small)
        return aggregate(study)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.loops == len(pc_suite_small)
    assert stats.optimal_fraction > 0.9  # paper: 97.5 %
    assert stats.mean_ii_over_mii < 1.05  # paper: 1.01
    assert stats.dynamic_performance > 0.9  # paper: 98.4 %
    assert stats.register_ratio_vs["topdown"] < 0.95  # paper: 0.87


def test_hrms_only_throughput(benchmark, pc_suite_small, pc_machine):
    """Loops scheduled per second by HRMS alone (the paper: 1258 loops
    in 5.5 minutes on a Sparc-10/40)."""
    from repro.core.scheduler import HRMSScheduler

    scheduler = HRMSScheduler()

    def run():
        for loop in pc_suite_small:
            scheduler.schedule(loop.graph, pc_machine)

    benchmark.pedantic(run, rounds=1, iterations=1)
