"""Benchmark E2 — Table 1 (24 loops × method: II, buffers, time).

One benchmark per scheduling method over the whole 24-kernel suite; the
per-method totals are the paper's Table 3 raw material.  SPILP is
benchmarked on a representative subset (its full-suite cost is the
paper's point, not something to repeat every benchmark round — the
``table1`` harness and EXPERIMENTS.md carry the full numbers).
"""

import pytest

from repro.mii.analysis import compute_mii
from repro.schedule.buffers import buffer_requirements
from repro.schedulers.registry import make_scheduler
from repro.workloads.govindarajan import daxpy, liv2, liv3, liv5, stencil3


@pytest.mark.parametrize("method", ["hrms", "slack", "frlc", "topdown"])
def test_heuristics_full_suite(benchmark, method, gov_suite, gov_machine):
    scheduler = make_scheduler(method)

    def run():
        total_buffers = 0
        for loop in gov_suite:
            analysis = compute_mii(loop.graph, gov_machine)
            schedule = scheduler.schedule(loop.graph, gov_machine, analysis)
            assert schedule.ii >= analysis.mii
            total_buffers += buffer_requirements(schedule)
        return total_buffers

    total = benchmark(run)
    assert total > 0


def test_spilp_subset(benchmark, gov_machine):
    loops = [liv2(), liv3(), liv5(), daxpy(), stencil3()]
    scheduler = make_scheduler("spilp", time_limit=20.0)

    def run():
        iis = []
        for loop in loops:
            analysis = compute_mii(loop.graph, gov_machine)
            schedule = scheduler.schedule(loop.graph, gov_machine, analysis)
            assert schedule.ii == analysis.mii  # optimal on these loops
            iis.append(schedule.ii)
        return iis

    benchmark.pedantic(run, rounds=1, iterations=1)
