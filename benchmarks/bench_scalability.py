"""Scalability microbenchmarks (not a paper artefact).

How the pipeline's phases scale with loop-body size: MII analysis
(circuit enumeration), the HRMS pre-ordering, the MinDist solver (cold
factorise-and-solve vs. warm cache hit), and the full schedule.  Useful
for spotting complexity regressions in the graph algorithms.

The 512-op tier exists to exercise the engine layer at sizes the seed
implementation could not reach interactively; its full-schedule case
performs a long II search (~tens of attempts) and is deliberately run
for a single round.  ``scripts/perf_check.py`` runs the same
measurements standalone and gates on the committed baseline.
"""

import random

import pytest

from repro.core.ordering import hrms_order
from repro.core.scheduler import HRMSScheduler
from repro.engine import MinDistSolver
from repro.mii.analysis import compute_mii
from repro.workloads.synthetic import random_ddg

SIZES = [16, 64, 160]
#: The engine-layer tier; the seed topped out at 160.
LARGE_SIZES = SIZES + [512]


def graph_of(size: int):
    return random_ddg(random.Random(size), size, name=f"scale{size}")


@pytest.mark.parametrize("size", LARGE_SIZES)
def test_mii_analysis(benchmark, size, pc_machine):
    graph = graph_of(size)
    result = benchmark(compute_mii, graph, pc_machine)
    assert result.mii >= 1


@pytest.mark.parametrize("size", LARGE_SIZES)
def test_preordering(benchmark, size, pc_machine):
    graph = graph_of(size)
    analysis = compute_mii(graph, pc_machine)
    result = benchmark(hrms_order, graph, analysis)
    assert len(result.order) == size


@pytest.mark.parametrize("size", LARGE_SIZES)
def test_mindist_cold(benchmark, size, pc_machine):
    """Factorise the graph and solve one II with an empty cache."""
    graph = graph_of(size)
    ii = compute_mii(graph, pc_machine).mii

    def cold_solve():
        return MinDistSolver().solve(graph, ii)

    result = benchmark(cold_solve)
    assert result is not None


@pytest.mark.parametrize("size", LARGE_SIZES)
def test_mindist_warm(benchmark, size, pc_machine):
    """Cache-hit path: the II search's repeat queries cost this much."""
    graph = graph_of(size)
    ii = compute_mii(graph, pc_machine).mii
    solver = MinDistSolver()
    assert solver.solve(graph, ii) is not None  # prime

    result = benchmark(solver.solve, graph, ii)
    assert result is not None
    assert solver.cache_info()["hits"] >= 1


@pytest.mark.parametrize("size", SIZES)
def test_full_schedule(benchmark, size, pc_machine):
    graph = graph_of(size)
    analysis = compute_mii(graph, pc_machine)
    scheduler = HRMSScheduler()
    schedule = benchmark(scheduler.schedule, graph, pc_machine, analysis)
    assert schedule.ii >= analysis.mii


def test_full_schedule_512(benchmark, pc_machine):
    """One round only: the 512-op II search runs ~55 attempts cold."""
    graph = graph_of(512)
    analysis = compute_mii(graph, pc_machine)
    scheduler = HRMSScheduler()
    schedule = benchmark.pedantic(
        scheduler.schedule,
        args=(graph, pc_machine, analysis),
        rounds=1,
        iterations=1,
    )
    assert schedule.ii >= analysis.mii
