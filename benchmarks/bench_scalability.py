"""Scalability microbenchmarks (not a paper artefact).

How the pipeline's phases scale with loop-body size: MII analysis
(circuit enumeration), the HRMS pre-ordering, and the full schedule.
Useful for spotting complexity regressions in the graph algorithms.
"""

import random

import pytest

from repro.core.ordering import hrms_order
from repro.core.scheduler import HRMSScheduler
from repro.mii.analysis import compute_mii
from repro.workloads.synthetic import random_ddg

SIZES = [16, 64, 160]


def graph_of(size: int):
    return random_ddg(random.Random(size), size, name=f"scale{size}")


@pytest.mark.parametrize("size", SIZES)
def test_mii_analysis(benchmark, size, pc_machine):
    graph = graph_of(size)
    result = benchmark(compute_mii, graph, pc_machine)
    assert result.mii >= 1


@pytest.mark.parametrize("size", SIZES)
def test_preordering(benchmark, size, pc_machine):
    graph = graph_of(size)
    analysis = compute_mii(graph, pc_machine)
    result = benchmark(hrms_order, graph, analysis)
    assert len(result.order) == size


@pytest.mark.parametrize("size", SIZES)
def test_full_schedule(benchmark, size, pc_machine):
    graph = graph_of(size)
    analysis = compute_mii(graph, pc_machine)
    scheduler = HRMSScheduler()
    schedule = benchmark(scheduler.schedule, graph, pc_machine, analysis)
    assert schedule.ii >= analysis.mii
