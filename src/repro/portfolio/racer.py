"""The budgeted multi-scheduler racing engine.

The paper's whole evaluation is a *comparison* — HRMS against Top-Down,
Bottom-Up, Slack, IMS-style schedulers on II and register pressure.
:func:`race_portfolio` turns that comparison into a subsystem: run any
subset of the registered schedulers concurrently over one loop, score
every finished schedule on the multi-objective
:class:`~repro.portfolio.score.ScheduleScore`, and select a winner under
a pluggable :mod:`~repro.portfolio.policies` policy.

Racing rules:

* members run in **daemon** threads, one per member (the schedulers are
  NumPy-heavy and already raced concurrently by the service worker
  pool); the MII analysis is computed **once** and shared;
* each member gets ``member_budget`` wall seconds measured from race
  start; a member still running past it is abandoned (its thread result
  is discarded — Python threads cannot be killed, but the racer never
  waits for them, and daemon threads cannot hold up interpreter exit
  either) and recorded as ``"timeout"``;
* the exact (MILP-backed) members of
  :data:`repro.schedulers.registry.EXACT_SCHEDULERS` are opt-in: they
  join the default line-up only with ``include_exact=True``, and even
  then loops larger than ``exact_op_limit`` operations skip them (they
  are orders of magnitude slower than the heuristics) — raced exact
  members inherit the member budget as their solver time limit;
* the winner is re-validated through
  :func:`repro.schedule.verify.verify_schedule` before being returned;
  an invalid schedule (which would indicate a scheduler bug) is demoted
  and the next-best member wins instead.

Selection is deterministic: scores are pure functions of the schedules,
and exact ties break by member order, never by finishing order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.engine.session import SchedulingSession
from repro.errors import ScheduleVerificationError, SchedulingError
from repro.graph.ddg import DependenceGraph
from repro.obs import trace
from repro.machine.machine import MachineModel
from repro.mii.analysis import MIIResult
from repro.portfolio.policies import Policy, make_policy
from repro.portfolio.score import ScheduleScore, score_schedule
from repro.schedule.schedule import Schedule
from repro.schedule.verify import verify_schedule
from repro.schedulers.base import ModuloScheduler
from repro.schedulers.registry import (
    EXACT_SCHEDULERS,
    VIRTUAL_SCHEDULERS,
    available_schedulers,
    make_scheduler,
)

#: Wall seconds each member gets before the racer abandons it.
DEFAULT_MEMBER_BUDGET = 10.0

#: Largest loop (operations) the exact MILP members race on by default.
EXACT_OP_LIMIT = 24


class MemberStatus:
    """String constants for a member's race outcome."""

    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"
    INVALID = "invalid"


@dataclass
class MemberOutcome:
    """What one portfolio member did in the race."""

    name: str
    status: str
    score: ScheduleScore | None = None
    schedule: Schedule | None = None
    seconds: float = 0.0
    #: ``"raced"`` when scheduled here, ``"store"`` when the caller
    #: supplied a precomputed schedule (e.g. an artifact-store hit).
    source: str = "raced"
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view for decision records and API responses."""
        return {
            "name": self.name,
            "status": self.status,
            "score": self.score.as_dict() if self.score else None,
            "seconds": self.seconds,
            "source": self.source,
            "error": self.error,
        }


@dataclass
class PortfolioResult:
    """The race outcome: a winning schedule plus the full scoreboard."""

    winner: str
    schedule: Schedule
    policy: str
    members: tuple[str, ...]
    outcomes: list[MemberOutcome] = field(default_factory=list)

    def outcome(self, name: str) -> MemberOutcome:
        """The outcome of member *name* (:class:`KeyError` if absent)."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    @property
    def winner_score(self) -> ScheduleScore:
        return self.outcome(self.winner).score

    def decision_record(self) -> dict[str, Any]:
        """The JSON decision record the artifact store persists."""
        return {
            "winner": self.winner,
            "policy": self.policy,
            "members": [outcome.to_dict() for outcome in self.outcomes],
        }


def default_members(include_exact: bool = False) -> tuple[str, ...]:
    """The registry line-up a race uses when none is given."""
    names = [
        name
        for name in available_schedulers()
        if name not in VIRTUAL_SCHEDULERS
    ]
    if not include_exact:
        names = [name for name in names if name not in EXACT_SCHEDULERS]
    return tuple(names)


def resolve_members(
    members: Iterable[str] | None, include_exact: bool = False
) -> tuple[str, ...]:
    """Validate and canonicalise a member list (order kept, deduped)."""
    if members is None:
        return default_members(include_exact)
    known = available_schedulers()
    resolved: list[str] = []
    for member in members:
        name = str(member)
        if name in VIRTUAL_SCHEDULERS:
            raise SchedulingError(
                f"the portfolio cannot race itself ({name!r})"
            )
        if name not in known:
            raise SchedulingError(
                f"unknown portfolio member {name!r}; available: "
                f"{', '.join(n for n in known if n not in VIRTUAL_SCHEDULERS)}"
            )
        if name not in resolved:
            resolved.append(name)
    if not resolved:
        raise SchedulingError("a portfolio needs at least one member")
    return tuple(resolved)


def _default_make(name: str, **options) -> Any:
    return make_scheduler(name, **options)


class _MemberRun:
    """One racing member on its own daemon thread.

    Deliberately not a :class:`concurrent.futures` future: executor
    worker threads are non-daemon and joined at interpreter exit, which
    would let an abandoned (timed-out) member block process shutdown
    for as long as it keeps scheduling.
    """

    def __init__(self, name: str, fn: Callable[[], Schedule]) -> None:
        self.result: Schedule | None = None
        self.error: BaseException | None = None
        #: The member's own runtime — not the race-elapsed time at
        #: which the racer happened to observe it.
        self.seconds: float = 0.0
        self.name = name
        # Trace context is thread-local: snapshot it on the racing
        # thread so the member thread can re-parent onto the race.
        self._trace_ctx = (
            trace.current() if trace.ACTIVE is not None else None
        )
        self._done = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(fn,),
            name=f"hrms-race-{name}", daemon=True,
        )
        self._thread.start()

    def _run(self, fn: Callable[[], Schedule]) -> None:
        began = time.perf_counter()
        try:
            if self._trace_ctx is not None and trace.ACTIVE is not None:
                with trace.attach(*self._trace_ctx):
                    with trace.span("portfolio.member", member=self.name):
                        self.result = fn()
            else:
                self.result = fn()
        except BaseException as exc:  # noqa: BLE001 - scoreboard entry
            self.error = exc
        finally:
            self.seconds = time.perf_counter() - began
            self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """``True`` once the member finished (either way)."""
        return self._done.wait(timeout)


def race_portfolio(
    graph: DependenceGraph,
    machine: MachineModel,
    analysis: MIIResult | None = None,
    *,
    members: Iterable[str] | None = None,
    policy: "str | dict | Policy | None" = None,
    member_budget: float | None = DEFAULT_MEMBER_BUDGET,
    include_exact: bool = False,
    exact_op_limit: int = EXACT_OP_LIMIT,
    max_ii: int | None = None,
    register_budget: int | None = None,
    precomputed: Mapping[str, Schedule] | None = None,
    make: Callable[..., Any] | None = None,
    session: SchedulingSession | None = None,
) -> PortfolioResult:
    """Race *members* over *graph* × *machine* and pick a winner.

    ``precomputed`` maps member names onto already-known schedules
    (artifact-store hits); those members are scored without racing.
    ``make`` overrides scheduler construction (tests inject slow or
    canned members through it).  ``session`` shares one
    :class:`~repro.engine.session.SchedulingSession` — MII analysis and
    the sweeping MinDist frontier — across every racing member; without
    one a race-private session is created, so members still share the
    analysis and matrices among themselves.
    """
    members = resolve_members(members, include_exact)
    selected = make_policy(policy)
    if session is None:
        session = SchedulingSession(graph, machine, analysis)
    if analysis is None:
        analysis = session.analysis
    precomputed = dict(precomputed or {})
    make = make or _default_make

    skipped: dict[str, str] = {}
    to_race: list[str] = []
    for name in members:
        if name in precomputed:
            continue
        if name in EXACT_SCHEDULERS and len(graph) > exact_op_limit:
            skipped[name] = (
                f"exact scheduler skipped on a {len(graph)}-op loop "
                f"(limit {exact_op_limit}; raise exact_op_limit to force)"
            )
        else:
            to_race.append(name)

    def run_member(name: str) -> Schedule:
        options: dict[str, Any] = {}
        if max_ii is not None:
            options["max_ii"] = max_ii
        if name in EXACT_SCHEDULERS and member_budget is not None:
            options["time_limit"] = member_budget
        scheduler = make(name, **options)
        if isinstance(scheduler, ModuloScheduler):
            # Library schedulers share the race's session; canned test
            # members (arbitrary objects) keep the plain signature.
            return scheduler.schedule(
                graph, machine, analysis, session=session
            )
        return scheduler.schedule(graph, machine, analysis)

    # One daemon thread per member: the budget is a wall-clock deadline
    # from race start, so every member must *start* immediately —
    # capping at the core count would let slow members starve queued
    # ones into bogus "timeout" outcomes on small boxes.
    runs = {
        name: _MemberRun(name, lambda name=name: run_member(name))
        for name in to_race
    }
    started = time.perf_counter()

    outcomes: list[MemberOutcome] = []
    for name in members:
        if name in precomputed:
            schedule = precomputed[name]
            outcomes.append(
                MemberOutcome(
                    name=name,
                    status=MemberStatus.OK,
                    score=score_schedule(schedule, register_budget),
                    schedule=schedule,
                    seconds=schedule.stats.total_seconds,
                    source="store",
                )
            )
            continue
        if name in skipped:
            outcomes.append(
                MemberOutcome(
                    name=name,
                    status=MemberStatus.SKIPPED,
                    error=skipped[name],
                )
            )
            continue
        run = runs[name]
        remaining: float | None = None
        if member_budget is not None:
            remaining = max(
                0.0, member_budget - (time.perf_counter() - started)
            )
        if not run.wait(remaining):
            # Abandoned, not joined: the daemon thread finishes (or
            # not) in the background and its result is discarded.
            outcomes.append(
                MemberOutcome(
                    name=name,
                    status=MemberStatus.TIMEOUT,
                    seconds=time.perf_counter() - started,
                    error=f"exceeded the {member_budget}s member budget",
                )
            )
        elif run.error is not None:
            outcomes.append(
                MemberOutcome(
                    name=name,
                    status=MemberStatus.FAILED,
                    seconds=run.seconds,
                    error=f"{type(run.error).__name__}: {run.error}",
                )
            )
        else:
            outcomes.append(
                MemberOutcome(
                    name=name,
                    status=MemberStatus.OK,
                    score=score_schedule(run.result, register_budget),
                    schedule=run.result,
                    seconds=run.result.stats.total_seconds,
                )
            )

    # Verify every finisher (not just the front-runner): an "ok" status
    # is a promise consumers rely on — the service layer caches ok
    # member schedules as individually-servable artifacts.
    with trace.span(
        "portfolio.verify",
        finishers=sum(1 for o in outcomes if o.status == MemberStatus.OK),
    ):
        for outcome in outcomes:
            if outcome.status != MemberStatus.OK:
                continue
            try:
                verify_schedule(outcome.schedule)
            except ScheduleVerificationError as exc:
                outcome.status = MemberStatus.INVALID
                outcome.error = str(exc)

    ranked = sorted(
        (
            (selected.key(outcome.score), rank, outcome)
            for rank, outcome in enumerate(outcomes)
            if outcome.status == MemberStatus.OK
        ),
        key=lambda item: (item[0], item[1]),
    )
    if ranked:
        winner = ranked[0][2]
        return PortfolioResult(
            winner=winner.name,
            schedule=winner.schedule,
            policy=selected.name,
            members=members,
            outcomes=outcomes,
        )

    details = "; ".join(
        f"{outcome.name}: {outcome.status}"
        + (f" ({outcome.error})" if outcome.error else "")
        for outcome in outcomes
    )
    raise SchedulingError(
        f"portfolio race produced no valid schedule for "
        f"{graph.name!r} — {details}"
    )
