"""Portfolio sweeps: race one loop across machine configurations.

Where :func:`~repro.portfolio.racer.race_portfolio` answers "which
scheduler wins on this machine", the sweep answers "which machine is
worth having": it races the portfolio on every configuration in
:func:`repro.machine.configs.canonical_machines` (or a caller-supplied
set) and reports the Pareto front over the winners' (II, MaxLive) —
the configurations no other configuration beats on both objectives.

Machines that cannot execute the loop at all (a missing functional-unit
class, an infeasible II search) stay in the report as error entries
rather than disappearing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.graph.ddg import DependenceGraph
from repro.machine.configs import canonical_machines
from repro.machine.machine import MachineModel
from repro.portfolio.racer import PortfolioResult, race_portfolio


def pareto_front(
    items: Sequence[Any], key: Callable[[Any], tuple]
) -> list[Any]:
    """The non-dominated subset of *items* under minimisation of *key*.

    ``a`` dominates ``b`` when ``key(a)`` is no worse in every component
    and strictly better in at least one.  Input order is preserved;
    items with identical keys all survive (they dominate nobody and
    nobody strictly beats them).
    """
    keys = [tuple(key(item)) for item in items]

    def dominates(a: tuple, b: tuple) -> bool:
        return all(x <= y for x, y in zip(a, b)) and a != b

    return [
        item
        for item, own in zip(items, keys)
        if not any(dominates(other, own) for other in keys)
    ]


@dataclass
class SweepEntry:
    """One machine configuration's race result (or failure)."""

    machine: str
    result: PortfolioResult | None = None
    error: str | None = None
    on_front: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view of this sweep entry (decision record included)."""
        record: dict[str, Any] = {
            "machine": self.machine,
            "on_front": self.on_front,
            "error": self.error,
        }
        if self.result is not None:
            record["decision"] = self.result.decision_record()
        return record


@dataclass
class PortfolioSweep:
    """The sweep of one loop across machine configurations."""

    graph: str
    policy: str
    entries: list[SweepEntry] = field(default_factory=list)

    def front(self) -> list[SweepEntry]:
        """The Pareto-optimal entries, input order."""
        return [entry for entry in self.entries if entry.on_front]


def sweep_portfolio(
    graph: DependenceGraph,
    machines: Mapping[str, MachineModel] | Iterable[str] | None = None,
    **race_kwargs,
) -> PortfolioSweep:
    """Race the portfolio on every machine; mark the Pareto front.

    *machines* may be a name → model mapping, an iterable of registered
    configuration names, or ``None`` for every canonical built-in.
    Remaining keyword arguments go to :func:`race_portfolio` verbatim.
    """
    if machines is None:
        resolved = canonical_machines()
    elif isinstance(machines, Mapping):
        resolved = dict(machines)
    else:
        builtin = canonical_machines()
        resolved = {}
        for name in machines:
            try:
                resolved[str(name)] = builtin[str(name)]
            except KeyError:
                raise ReproError(
                    f"unknown machine configuration {name!r}; available: "
                    f"{', '.join(sorted(builtin))}"
                ) from None

    entries: list[SweepEntry] = []
    policy_name = ""
    for name, machine in resolved.items():
        try:
            result = race_portfolio(graph, machine, **race_kwargs)
        except ReproError as exc:
            entries.append(SweepEntry(machine=name, error=str(exc)))
            continue
        policy_name = result.policy
        entries.append(SweepEntry(machine=name, result=result))

    scored = [entry for entry in entries if entry.ok]
    for entry in pareto_front(
        scored,
        key=lambda e: (e.result.winner_score.ii, e.result.winner_score.maxlive),
    ):
        entry.on_front = True
    return PortfolioSweep(
        graph=graph.name, policy=policy_name, entries=entries
    )


def render_sweep(sweep: PortfolioSweep) -> str:
    """Fixed-width text table of a sweep (the experiments CLI output)."""
    lines = [
        f"{sweep.graph}: portfolio sweep "
        f"(policy {sweep.policy or '-'})",
        f"  {'machine':14s} {'winner':10s} {'II':>4s} {'MaxLive':>8s} "
        f"{'length':>7s} {'pareto':>7s}",
    ]
    for entry in sweep.entries:
        if not entry.ok:
            lines.append(
                f"  {entry.machine:14s} {'-':10s}"
                f"    infeasible: {entry.error}"
            )
            continue
        score = entry.result.winner_score
        lines.append(
            f"  {entry.machine:14s} {entry.result.winner:10s} "
            f"{score.ii:4d} {score.maxlive:8d} {score.length:7d} "
            f"{'*' if entry.on_front else '':>7s}"
        )
    return "\n".join(lines)
