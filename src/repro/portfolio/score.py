"""Multi-objective scoring of a schedule for portfolio selection.

Every racing member produces a :class:`~repro.schedule.schedule.Schedule`;
the racer compares them on one :class:`ScheduleScore` — the objectives the
paper's evaluation tables rank schedulers by:

* ``ii`` — the achieved initiation interval (Tables 1/2, Figs 11-12);
* ``maxlive`` — the register-pressure lower bound of
  :func:`repro.schedule.maxlive.max_live` (Section 4.2, Fig 13);
* ``length`` — cycles from first issue to last result of one iteration
  (shorter kernels drain faster and need fewer epilogue stages);
* ``spills`` — how far MaxLive overshoots an optional register budget,
  i.e. the values a real allocator would have to spill (Fig 14's regime).

``seconds`` rides along for reporting but never participates in
comparisons (two racers must pick the same winner regardless of machine
load), which is why it is excluded from equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class ScheduleScore:
    """The objective vector one member's schedule achieved."""

    ii: int
    maxlive: int
    length: int
    spills: int = 0
    seconds: float = field(default=0.0, compare=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe view (stored in portfolio decision records)."""
        return {
            "ii": self.ii,
            "maxlive": self.maxlive,
            "length": self.length,
            "spills": self.spills,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScheduleScore":
        return cls(
            ii=int(payload["ii"]),
            maxlive=int(payload["maxlive"]),
            length=int(payload["length"]),
            spills=int(payload.get("spills", 0)),
            seconds=float(payload.get("seconds", 0.0)),
        )


def score_schedule(
    schedule: Schedule, register_budget: int | None = None
) -> ScheduleScore:
    """Score *schedule* on the portfolio objectives.

    ``register_budget`` turns the spill objective on: the score counts
    the values by which MaxLive exceeds the budget (0 when it fits or
    when no budget applies).
    """
    maxlive = max_live(schedule)
    spills = (
        max(0, maxlive - register_budget)
        if register_budget is not None
        else 0
    )
    return ScheduleScore(
        ii=schedule.ii,
        maxlive=maxlive,
        length=schedule.length,
        spills=spills,
        seconds=schedule.stats.total_seconds,
    )
