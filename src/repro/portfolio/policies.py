"""Pluggable winner-selection policies for the portfolio racer.

A policy maps a :class:`~repro.portfolio.score.ScheduleScore` onto a
sort key; the racer picks the member whose key is smallest, breaking
exact ties by member order (earlier-listed members win), so selection is
deterministic regardless of racing timing.

Built-in policies::

    lexicographic   (II, MaxLive, length, spills)   -- the paper's framing:
                    II first, then register pressure    (the default)
    min_ii          II above all, pressure only as a tie-break
    min_regs        MaxLive above all, II only as a tie-break
    weighted        one scalar: w_ii*II + w_maxlive*MaxLive
                    + w_length*length + w_spills*spills

``make_policy`` accepts a name, a ``{"name": …, …params}`` wire dict
(how the service passes policies around), or an already-built
:class:`Policy` (returned unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.portfolio.score import ScheduleScore

#: Policy used when a caller does not name one.
DEFAULT_POLICY = "lexicographic"

#: Default objective weights of the ``weighted`` policy: an II cycle is
#: the unit, a register is worth a quarter cycle, kernel length is a
#: light tie-break, a spill costs as much as an II cycle (it becomes
#: one or more memory operations).
DEFAULT_WEIGHTS = {"ii": 1.0, "maxlive": 0.25, "length": 0.01, "spills": 1.0}


@dataclass(frozen=True)
class Policy:
    """A named scoring rule: lower key wins."""

    name: str
    key: Callable[[ScheduleScore], tuple] = field(compare=False)

    def describe(self) -> str:
        """Human-readable policy identity (currently just the name)."""
        return self.name


def _lexicographic(score: ScheduleScore) -> tuple:
    return (score.ii, score.maxlive, score.length, score.spills)


def _min_ii(score: ScheduleScore) -> tuple:
    return (score.ii, score.spills, score.maxlive, score.length)


def _min_regs(score: ScheduleScore) -> tuple:
    return (score.maxlive, score.spills, score.ii, score.length)


def _weighted_key(weights: dict[str, float]) -> Callable[[ScheduleScore], tuple]:
    def key(score: ScheduleScore) -> tuple:
        total = (
            weights["ii"] * score.ii
            + weights["maxlive"] * score.maxlive
            + weights["length"] * score.length
            + weights["spills"] * score.spills
        )
        # Round away float-noise, then fall back to the lexicographic
        # tuple so equal-cost members still order deterministically.
        return (round(total, 9), *_lexicographic(score))

    return key


def _make_weighted(**params) -> Policy:
    unknown = set(params) - set(DEFAULT_WEIGHTS)
    if unknown:
        raise ReproError(
            f"weighted policy has no weight(s) {sorted(unknown)}; "
            f"available: {', '.join(sorted(DEFAULT_WEIGHTS))}"
        )
    weights = {**DEFAULT_WEIGHTS, **{k: float(v) for k, v in params.items()}}
    return Policy(name="weighted", key=_weighted_key(weights))


_BUILTIN: dict[str, Callable[..., Policy]] = {
    "lexicographic": lambda: Policy("lexicographic", _lexicographic),
    "min_ii": lambda: Policy("min_ii", _min_ii),
    "min_regs": lambda: Policy("min_regs", _min_regs),
    "weighted": _make_weighted,
}


def policy_names() -> tuple[str, ...]:
    """The registered policy names, stable order."""
    return tuple(_BUILTIN)


def make_policy(spec: "str | dict | Policy | None" = None, **params) -> Policy:
    """Resolve *spec* (name, wire dict, Policy, or None) into a policy."""
    if spec is None:
        spec = DEFAULT_POLICY
    if isinstance(spec, Policy):
        return spec
    if isinstance(spec, dict):
        spec = dict(spec)
        name = str(spec.pop("name", DEFAULT_POLICY))
        params = {**spec, **params}
    else:
        name = str(spec)
    try:
        factory = _BUILTIN[name]
    except KeyError:
        raise ReproError(
            f"unknown portfolio policy {name!r}; available: "
            f"{', '.join(policy_names())}"
        ) from None
    try:
        return factory(**params)
    except TypeError:
        raise ReproError(
            f"policy {name!r} does not take parameters {sorted(params)}"
        ) from None
