"""Scheduler portfolio racing.

The paper evaluates HRMS by racing it against the other schedulers of
its era; this package makes that race a first-class subsystem.  Give it
a loop and a machine and it runs any subset of the registered
schedulers concurrently under a per-member time budget, scores every
finished schedule on (II, MaxLive, kernel length, spills), picks a
winner under a pluggable policy, and verifies the winner before
returning it:

* :mod:`~repro.portfolio.score` — the multi-objective
  :class:`~repro.portfolio.score.ScheduleScore`;
* :mod:`~repro.portfolio.policies` — winner-selection policies
  (``lexicographic``, ``min_ii``, ``min_regs``, ``weighted``);
* :mod:`~repro.portfolio.racer` — the budgeted racing engine,
  :func:`~repro.portfolio.racer.race_portfolio`;
* :mod:`~repro.portfolio.scheduler` — the virtual ``"portfolio"``
  registry entry, so every registry consumer (service executor,
  experiment runner, CLIs) can name it like a concrete method;
* :mod:`~repro.portfolio.sweep` — race one loop across machine
  configurations and report the Pareto front.
"""

from repro.portfolio.policies import (
    DEFAULT_POLICY,
    Policy,
    make_policy,
    policy_names,
)
from repro.portfolio.racer import (
    DEFAULT_MEMBER_BUDGET,
    EXACT_OP_LIMIT,
    MemberOutcome,
    MemberStatus,
    PortfolioResult,
    default_members,
    race_portfolio,
    resolve_members,
)
from repro.portfolio.scheduler import PortfolioScheduler
from repro.portfolio.score import ScheduleScore, score_schedule
from repro.portfolio.sweep import (
    PortfolioSweep,
    SweepEntry,
    pareto_front,
    render_sweep,
    sweep_portfolio,
)

__all__ = [
    "DEFAULT_MEMBER_BUDGET",
    "DEFAULT_POLICY",
    "EXACT_OP_LIMIT",
    "MemberOutcome",
    "MemberStatus",
    "Policy",
    "PortfolioResult",
    "PortfolioScheduler",
    "PortfolioSweep",
    "ScheduleScore",
    "SweepEntry",
    "default_members",
    "make_policy",
    "pareto_front",
    "policy_names",
    "race_portfolio",
    "render_sweep",
    "resolve_members",
    "score_schedule",
    "sweep_portfolio",
]
