"""The registry-facing ``"portfolio"`` virtual scheduler.

Everything that speaks the registry protocol — the service executor,
the experiments runner, ``hrms-compile``, suite jobs — can name
``"portfolio"`` like any concrete method and transparently get the race
winner.  The returned schedule keeps the winning member's own stats
(its name, attempts and timings), and the full scoreboard stays
available on :attr:`PortfolioScheduler.last_result`.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.mii.analysis import MIIResult
from repro.portfolio.policies import DEFAULT_POLICY, Policy
from repro.portfolio.racer import (
    DEFAULT_MEMBER_BUDGET,
    EXACT_OP_LIMIT,
    PortfolioResult,
    race_portfolio,
)
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ModuloScheduler


class PortfolioScheduler(ModuloScheduler):
    """Race the registered schedulers and return the policy winner."""

    name = "portfolio"

    def __init__(
        self,
        max_ii: int | None = None,
        *,
        members: Iterable[str] | None = None,
        policy: "str | dict | Policy | None" = DEFAULT_POLICY,
        member_budget: float | None = DEFAULT_MEMBER_BUDGET,
        include_exact: bool = False,
        exact_op_limit: int = EXACT_OP_LIMIT,
        register_budget: int | None = None,
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._members = tuple(members) if members is not None else None
        self._policy = policy
        self._member_budget = member_budget
        self._include_exact = include_exact
        self._exact_op_limit = exact_op_limit
        self._register_budget = register_budget
        #: Scoreboard of the most recent race (None before the first).
        self.last_result: PortfolioResult | None = None

    # ------------------------------------------------------------------
    def schedule(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: MIIResult | None = None,
        session: SchedulingSession | None = None,
    ) -> Schedule:
        """Race the portfolio; the winner is already verified."""
        result = race_portfolio(
            graph,
            machine,
            analysis,
            session=session,
            members=self._members,
            policy=self._policy,
            member_budget=self._member_budget,
            include_exact=self._include_exact,
            exact_op_limit=self._exact_op_limit,
            max_ii=self._max_ii,
            register_budget=self._register_budget,
        )
        self.last_result = result
        return result.schedule

    # ------------------------------------------------------------------
    # The template hooks never run: schedule() is fully overridden (the
    # members own their II searches).
    def prepare(self, session) -> Any:  # pragma: no cover
        raise NotImplementedError("the portfolio delegates to its members")

    def attempt(self, session, ii, context):  # pragma: no cover
        raise NotImplementedError("the portfolio delegates to its members")
