"""Cooperative per-thread deadlines for long-running library work.

The service layer gives each job a wall-clock deadline; the scheduler's
II search is the only place the library can spin for a long time, and
it cannot be interrupted preemptively (threads, and the work is pure
Python/NumPy).  So cancellation is cooperative: the worker arms a
deadline for its thread before calling into the library, the II search
polls :func:`check` between attempts, and a blown deadline surfaces as
:class:`~repro.errors.DeadlineExceededError`.

The deadline is *absolute wall time* (``time.time()``) so it can cross
the process boundary unchanged — the process backend ships it in the
wire envelope and the worker process re-arms it locally.

This module lives outside :mod:`repro.service` on purpose: schedulers
poll it, and the core layers must not import the service ones.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import DeadlineExceededError

_STATE = threading.local()


def set_deadline(at: float | None) -> None:
    """Arm (or clear, with ``None``) this thread's absolute deadline."""
    _STATE.deadline = at


def clear_deadline() -> None:
    """Disarm this thread's deadline."""
    _STATE.deadline = None


def get_deadline() -> float | None:
    """This thread's absolute deadline, or ``None`` when unarmed."""
    return getattr(_STATE, "deadline", None)


def remaining() -> float | None:
    """Seconds left before this thread's deadline (``None`` = unarmed)."""
    deadline = get_deadline()
    if deadline is None:
        return None
    return deadline - time.time()


def expired() -> bool:
    """Whether this thread's deadline (if any) has passed."""
    deadline = get_deadline()
    return deadline is not None and time.time() >= deadline


def check() -> None:
    """Raise :class:`DeadlineExceededError` if the deadline has passed.

    The polling point: cheap enough (one ``time.time()`` when armed, a
    single attribute probe when not) to call once per II attempt.
    """
    deadline = get_deadline()
    if deadline is not None and time.time() >= deadline:
        raise DeadlineExceededError(
            f"deadline exceeded ({time.time() - deadline:.3f}s past budget)"
        )


@contextmanager
def deadline_scope(at: float | None) -> Iterator[None]:
    """Arm *at* for the duration of the block, restoring the previous
    deadline on exit (worker threads are reused across jobs)."""
    previous = get_deadline()
    set_deadline(at)
    try:
        yield
    finally:
        set_deadline(previous)
