"""JSON (de)serialisation of dependence graphs.

The format is intentionally boring — a dict with ``name``, ``operations``
and ``edges`` lists — so that graphs can be checked into a repository,
diffed, and loaded by other tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import GraphError
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation

FORMAT_VERSION = 1


def _declared_version(data: dict[str, Any]) -> int:
    """The envelope's schema version, tolerantly resolved.

    ``schema`` is the canonical key; ``format`` is the historical alias
    the seed wrote and is still honoured.  A missing version means 1 (the
    only format that ever existed without one), but any *declared* version
    outside ``1..FORMAT_VERSION`` is rejected — newer envelopes may carry
    fields whose absence here would silently change meaning.
    """
    declared = [
        data[key] for key in ("schema", "format") if data.get(key) is not None
    ]
    for version in declared:
        if not isinstance(version, int) or not 1 <= version <= FORMAT_VERSION:
            raise GraphError(f"unsupported graph format version {version!r}")
    return declared[0] if declared else FORMAT_VERSION


def graph_to_dict(graph: DependenceGraph) -> dict[str, Any]:
    """Serialise *graph* to a plain dict."""
    return {
        "schema": FORMAT_VERSION,
        "format": FORMAT_VERSION,
        "name": graph.name,
        "operations": [
            {
                "name": op.name,
                "latency": op.latency,
                "opclass": op.opclass,
                "produces_value": op.produces_value,
            }
            for op in graph.operations()
        ],
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                "distance": edge.distance,
                "kind": edge.kind.value,
            }
            for edge in graph.edges()
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> DependenceGraph:
    """Rebuild a graph serialised by :func:`graph_to_dict`."""
    _declared_version(data)
    graph = DependenceGraph(data.get("name", "loop"))
    for op in data.get("operations", []):
        graph.add_operation(
            Operation(
                name=op["name"],
                latency=int(op.get("latency", 1)),
                opclass=op.get("opclass", "generic"),
                produces_value=bool(op.get("produces_value", True)),
            )
        )
    for edge in data.get("edges", []):
        graph.add_edge(
            Edge(
                src=edge["src"],
                dst=edge["dst"],
                distance=int(edge.get("distance", 0)),
                kind=DependenceKind(edge.get("kind", "register")),
            )
        )
    return graph


def dump_graph(graph: DependenceGraph, path: str | Path) -> None:
    """Write *graph* to *path* as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(graph_to_dict(graph), indent=2) + "\n", encoding="utf-8"
    )


def load_graph(path: str | Path) -> DependenceGraph:
    """Load a graph written by :func:`dump_graph`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(data)


def dumps_graph(graph: DependenceGraph) -> str:
    """Serialise *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=2)


def loads_graph(text: str) -> DependenceGraph:
    """Parse a graph from a JSON string."""
    return graph_from_dict(json.loads(text))
