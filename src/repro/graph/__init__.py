"""Data-dependence-graph (DDG) substrate.

A loop body is modelled as a dependence graph ``G = (V, E, delta, lambda)``
per Section 3 of the paper: vertices are operations with a latency, edges are
dependences annotated with an iteration *distance* (``delta >= 0``; positive
distance means the dependence is loop-carried).

Public surface:

* :class:`~repro.graph.ops.Operation` — a loop operation.
* :class:`~repro.graph.edges.Edge` / :class:`~repro.graph.edges.DependenceKind`
  — a typed dependence.
* :class:`~repro.graph.ddg.DependenceGraph` — the graph container.
* :class:`~repro.graph.builder.GraphBuilder` — fluent construction DSL.
* :mod:`~repro.graph.traversal` — topological orders, ASAP/ALAP/PALA levels,
  reachability.
* :mod:`~repro.graph.components` — weakly-connected components.
* :mod:`~repro.graph.circuits` — elementary-circuit enumeration (Johnson).
* :mod:`~repro.graph.serialization` — JSON round-tripping.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation

__all__ = [
    "DependenceGraph",
    "DependenceKind",
    "Edge",
    "GraphBuilder",
    "Operation",
]
