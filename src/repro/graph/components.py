"""Weakly-connected components of a dependence graph.

Section 3 of the paper: when the dependence graph is not connected, each
connected component is ordered separately and the per-component orders are
concatenated, giving higher priority to the component with the most
restrictive recurrence circuit (largest RecMII).
"""

from __future__ import annotations

from repro.graph.ddg import DependenceGraph


def connected_components(graph: DependenceGraph) -> list[list[str]]:
    """Weakly-connected components, each in program order.

    Components themselves are returned in order of their earliest member,
    so the output is deterministic for a given graph.
    """
    names = graph.node_names()
    position = {name: i for i, name in enumerate(names)}
    seen: set[str] = set()
    components: list[list[str]] = []
    for name in names:
        if name in seen:
            continue
        members = [name]
        seen.add(name)
        stack = [name]
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    members.append(neighbor)
                    stack.append(neighbor)
        members.sort(key=position.__getitem__)
        components.append(members)
    return components


def component_subgraphs(graph: DependenceGraph) -> list[DependenceGraph]:
    """Induced subgraph for every weakly-connected component."""
    return [
        graph.subgraph(members, name=f"{graph.name}.cc{i}")
        for i, members in enumerate(connected_components(graph))
    ]
