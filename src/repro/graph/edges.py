"""Dependence edges.

The paper admits three dependence kinds (Section 3): *register* dependences
(a value flows from producer to consumer), *memory* dependences and *control*
dependences.  Only register dependences create loop variants whose lifetimes
the scheduler tries to shorten; memory/control edges constrain the schedule
but carry no value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DependenceKind(enum.Enum):
    """Classification of a dependence edge."""

    REGISTER = "register"
    MEMORY = "memory"
    CONTROL = "control"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Edge:
    """A dependence ``src -> dst`` with iteration distance ``distance``.

    ``distance`` (the paper's ``delta``) is a nonnegative integer: the
    consumer in iteration ``i`` depends on the producer in iteration
    ``i - distance``.  ``distance == 0`` is an intra-iteration dependence;
    ``distance > 0`` is loop-carried.
    """

    src: str
    dst: str
    distance: int = 0
    kind: DependenceKind = DependenceKind.REGISTER

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError(
                f"edge {self.src}->{self.dst}: distance must be >= 0, "
                f"got {self.distance}"
            )

    @property
    def is_loop_carried(self) -> bool:
        """``True`` when the dependence crosses an iteration boundary."""
        return self.distance > 0

    @property
    def carries_value(self) -> bool:
        """``True`` when the edge transports a register value."""
        return self.kind is DependenceKind.REGISTER

    @property
    def key(self) -> tuple[str, str, int, str]:
        """Hashable identity used by graph containers."""
        return (self.src, self.dst, self.distance, self.kind.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.distance == 0 else f" (d={self.distance})"
        return f"{self.src} -> {self.dst}{tag} [{self.kind.value}]"
