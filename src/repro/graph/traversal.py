"""Topological orders, ASAP/ALAP/PALA sorts and reachability.

These helpers operate on any object exposing the small graph protocol used
throughout the library (``node_names``, ``predecessors``, ``successors``,
``operation``) so they work both on :class:`~repro.graph.ddg.DependenceGraph`
and on the mutable hypernode working graph used by the pre-ordering phase.

Ties are always broken by *program order* (the order of ``node_names()``),
which keeps every algorithm deterministic — a requirement for reproducible
experiments.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.errors import CyclicGraphError


class GraphLike(Protocol):
    """Minimal protocol the traversal helpers require."""

    def node_names(self) -> list[str]: ...

    def predecessors(self, name: str) -> list[str]: ...

    def successors(self, name: str) -> list[str]: ...


class LatencyGraphLike(GraphLike, Protocol):
    """Graph protocol extended with operation latencies."""

    def operation(self, name: str): ...


def topological_order(graph: GraphLike) -> list[str]:
    """Kahn's algorithm with program-order tie-breaking.

    Raises :class:`CyclicGraphError` when the graph has a directed cycle.
    """
    names = graph.node_names()
    position = {name: i for i, name in enumerate(names)}
    indegree = {name: 0 for name in names}
    for name in names:
        for succ in graph.successors(name):
            if succ in indegree and succ != name:
                indegree[succ] += 1
    # A sorted list scanned front-to-back keeps program order among ready
    # nodes without needing a heap for the modest graph sizes involved.
    ready = sorted(
        (name for name, deg in indegree.items() if deg == 0),
        key=position.__getitem__,
    )
    order: list[str] = []
    import heapq

    heap = [position[name] for name in ready]
    heapq.heapify(heap)
    names_by_position = {position[name]: name for name in names}
    while heap:
        name = names_by_position[heapq.heappop(heap)]
        order.append(name)
        for succ in graph.successors(name):
            if succ == name or succ not in indegree:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, position[succ])
    if len(order) != len(names):
        raise CyclicGraphError(
            "graph has a directed cycle; topological order undefined"
        )
    return order


def is_acyclic(graph: GraphLike) -> bool:
    """``True`` when the graph has no directed cycle."""
    try:
        topological_order(graph)
    except CyclicGraphError:
        return False
    return True


def _latency(graph, name: str) -> int:
    op = getattr(graph, "operation", None)
    if op is None:
        return 1
    return graph.operation(name).latency


def asap_levels(graph: LatencyGraphLike) -> dict[str, int]:
    """Earliest start level of each node (longest path from the sources).

    Edge weight is the producer's latency; sources sit at level 0.
    """
    levels: dict[str, int] = {}
    for name in topological_order(graph):
        level = 0
        for pred in graph.predecessors(name):
            if pred == name:
                continue
            level = max(level, levels[pred] + _latency(graph, pred))
        levels[name] = level
    return levels


def alap_levels(graph: LatencyGraphLike) -> dict[str, int]:
    """Latest start level of each node, anchored to the critical path.

    Sinks sit at ``critical_path - latency``; every other node as late as
    its successors permit.  Levels share the ASAP origin so
    ``slack = alap - asap >= 0``.
    """
    order = topological_order(graph)
    asap = asap_levels(graph)
    horizon = max(
        (asap[name] + _latency(graph, name) for name in order), default=0
    )
    levels: dict[str, int] = {}
    for name in reversed(order):
        level = horizon - _latency(graph, name)
        for succ in graph.successors(name):
            if succ == name:
                continue
            level = min(level, levels[succ] - _latency(graph, name))
        levels[name] = level
    return levels


def asap_order(graph: LatencyGraphLike) -> list[str]:
    """Topological order sorted by ASAP level (program order within a level).

    This is the "Sort_ASAP" of Figure 5: successors of the hypernode are
    ordered earliest-first so that, during scheduling, each node finds a
    previously scheduled predecessor.
    """
    names = graph.node_names()
    position = {name: i for i, name in enumerate(names)}
    asap = asap_levels(graph)
    return sorted(names, key=lambda n: (asap[n], position[n]))


def pala_order(graph: LatencyGraphLike) -> list[str]:
    """The paper's "Sort_PALA": an ALAP topological sort, list inverted.

    Predecessor batches are emitted deepest-node-first, so the node adjacent
    to the hypernode is scheduled first (as late as possible) and every
    following node already has a successor in the partial schedule.
    """
    names = graph.node_names()
    position = {name: i for i, name in enumerate(names)}
    alap = alap_levels(graph)
    in_alap_order = sorted(names, key=lambda n: (alap[n], position[n]))
    return list(reversed(in_alap_order))


def forward_reachable(graph: GraphLike, seeds: Iterable[str]) -> set[str]:
    """Nodes reachable from *seeds* (seeds included)."""
    return _reach(graph, seeds, graph.successors)


def backward_reachable(graph: GraphLike, seeds: Iterable[str]) -> set[str]:
    """Nodes from which some seed is reachable (seeds included)."""
    return _reach(graph, seeds, graph.predecessors)


def _reach(graph: GraphLike, seeds: Iterable[str], step) -> set[str]:
    seen = set(seeds)
    stack = list(seen)
    while stack:
        node = stack.pop()
        for nxt in step(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def longest_path_length(graph: LatencyGraphLike) -> int:
    """Length (in cycles) of the critical path through an acyclic graph."""
    asap = asap_levels(graph)
    return max(
        (asap[name] + _latency(graph, name) for name in graph.node_names()),
        default=0,
    )


def restrict_order(order: Sequence[str], keep: Iterable[str]) -> list[str]:
    """Filter *order* down to the members of *keep*, preserving sequence."""
    keep_set = set(keep)
    return [name for name in order if name in keep_set]
