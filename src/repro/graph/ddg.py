"""The dependence-graph container.

:class:`DependenceGraph` stores operations in *program order* (insertion
order) and supports the small set of mutating operations the algorithms
need: adding/removing operations and edges, and cheap copying.  Multiple
parallel edges between the same pair of operations are allowed as long as
they differ in distance or kind (e.g. a register and a memory dependence).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import (
    DuplicateOperationError,
    UnknownOperationError,
    ZeroDistanceCycleError,
)
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation


class DependenceGraph:
    """A loop-body data dependence graph ``G = (V, E, delta, lambda)``.

    Operations are identified by name.  Program order — the order in which
    operations were added — is preserved and used by the algorithms whenever
    the paper says "the first node of the graph".
    """

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._ops: dict[str, Operation] = {}
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}
        self._edge_keys: set[tuple[str, str, int, str]] = set()

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> Operation:
        """Insert *op*; raises :class:`DuplicateOperationError` on repeats."""
        if op.name in self._ops:
            raise DuplicateOperationError(op.name)
        self._ops[op.name] = op
        self._out[op.name] = []
        self._in[op.name] = []
        return op

    def add_edge(self, edge: Edge) -> Edge:
        """Insert *edge*; endpoints must already exist.

        Duplicate edges (same endpoints, distance and kind) are ignored,
        which makes graph-rewriting passes idempotent.
        """
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._ops:
                raise UnknownOperationError(endpoint)
        if edge.key in self._edge_keys:
            return edge
        self._edge_keys.add(edge.key)
        self._out[edge.src].append(edge)
        self._in[edge.dst].append(edge)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        """Remove *edge*; silently ignores edges not present."""
        if edge.key not in self._edge_keys:
            return
        self._edge_keys.discard(edge.key)
        self._out[edge.src] = [
            e for e in self._out[edge.src] if e.key != edge.key
        ]
        self._in[edge.dst] = [e for e in self._in[edge.dst] if e.key != edge.key]

    def remove_operation(self, name: str) -> None:
        """Remove an operation and every edge incident to it."""
        if name not in self._ops:
            raise UnknownOperationError(name)
        for edge in list(self._out[name]) + list(self._in[name]):
            self.remove_edge(edge)
        del self._ops[name]
        del self._out[name]
        del self._in[name]

    def copy(self, name: str | None = None) -> "DependenceGraph":
        """Return an independent copy (operations are shared, edges copied)."""
        clone = DependenceGraph(name or self.name)
        for op in self._ops.values():
            clone.add_operation(op)
        for edge in self.edges():
            clone.add_edge(edge)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[str]:
        return iter(self._ops)

    def operation(self, name: str) -> Operation:
        """Look up an operation by name."""
        try:
            return self._ops[name]
        except KeyError:
            raise UnknownOperationError(name) from None

    def operations(self) -> list[Operation]:
        """All operations in program order."""
        return list(self._ops.values())

    def node_names(self) -> list[str]:
        """All operation names in program order."""
        return list(self._ops)

    @property
    def first_node(self) -> str:
        """The first operation in program order ("First" in the paper)."""
        if not self._ops:
            raise UnknownOperationError("<empty graph>")
        return next(iter(self._ops))

    def edges(self) -> list[Edge]:
        """All edges, grouped by source in program order."""
        return [edge for out in self._out.values() for edge in out]

    def edge_count(self) -> int:
        return len(self._edge_keys)

    def out_edges(self, name: str) -> list[Edge]:
        """Edges leaving *name*."""
        self.operation(name)
        return list(self._out[name])

    def in_edges(self, name: str) -> list[Edge]:
        """Edges entering *name*."""
        self.operation(name)
        return list(self._in[name])

    def successors(self, name: str) -> list[str]:
        """Distinct successor names of *name* (program-order stable)."""
        seen: dict[str, None] = {}
        for edge in self._out[name]:
            seen.setdefault(edge.dst, None)
        return list(seen)

    def predecessors(self, name: str) -> list[str]:
        """Distinct predecessor names of *name* (program-order stable)."""
        seen: dict[str, None] = {}
        for edge in self._in[name]:
            seen.setdefault(edge.src, None)
        return list(seen)

    def neighbors(self, name: str) -> list[str]:
        """Union of predecessors and successors."""
        seen: dict[str, None] = {}
        for other in self.predecessors(name):
            seen.setdefault(other, None)
        for other in self.successors(name):
            seen.setdefault(other, None)
        return list(seen)

    def value_consumers(self, name: str) -> list[tuple[str, int]]:
        """``(consumer, distance)`` pairs of register edges leaving *name*."""
        return [
            (edge.dst, edge.distance)
            for edge in self._out[name]
            if edge.kind is DependenceKind.REGISTER
        ]

    def subgraph(
        self, names: Iterable[str], name: str | None = None
    ) -> "DependenceGraph":
        """Induced subgraph over *names* (program order preserved)."""
        keep = set(names)
        for missing in keep - set(self._ops):
            raise UnknownOperationError(missing)
        sub = DependenceGraph(name or f"{self.name}.sub")
        for op_name, op in self._ops.items():
            if op_name in keep:
                sub.add_operation(op)
        for edge in self.edges():
            if edge.src in keep and edge.dst in keep:
                sub.add_edge(edge)
        return sub

    def total_latency(self) -> int:
        """Sum of all operation latencies (used for II search bounds)."""
        return sum(op.latency for op in self._ops.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Reject graphs containing a zero-total-distance cycle.

        Such a cycle would make an operation depend on itself in the same
        iteration, which no schedule can satisfy.  Detection: a cycle made
        only of distance-0 edges exists iff the distance-0 subgraph has a
        directed cycle (DFS colouring).
        """
        color: dict[str, int] = {}  # 0 = white, 1 = grey, 2 = black

        def dfs(start: str) -> None:
            stack: list[tuple[str, Iterator[Edge]]] = [
                (start, iter(self._out[start]))
            ]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for edge in it:
                    if edge.distance != 0:
                        continue
                    state = color.get(edge.dst, 0)
                    if state == 1:
                        raise ZeroDistanceCycleError(
                            f"graph {self.name!r}: zero-distance cycle "
                            f"through {edge.dst!r}"
                        )
                    if state == 0:
                        color[edge.dst] = 1
                        stack.append((edge.dst, iter(self._out[edge.dst])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()

        for name in self._ops:
            if color.get(name, 0) == 0:
                dfs(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependenceGraph({self.name!r}, |V|={len(self)}, "
            f"|E|={self.edge_count()})"
        )
