"""Fluent builder for dependence graphs.

The workload modules construct dozens of hand-written loop kernels; the
builder keeps those definitions short and readable::

    g = (GraphBuilder("daxpy")
         .load("x")
         .load("y")
         .op("mul", "fmul", latency=2, deps=["x"])
         .op("add", "fadd", latency=1, deps=["mul", "y"])
         .store("st", deps=["add"])
         .build())

Dependencies given as plain names become distance-0 register edges; a
``(name, distance)`` tuple makes the edge loop-carried; and a
``(name, distance, kind)`` triple selects memory/control kinds.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import FADD, FDIV, FMUL, FSQRT, GENERIC, MEM, Operation

DepSpec = Union[str, tuple]


class GraphBuilder:
    """Incrementally build a :class:`DependenceGraph`."""

    def __init__(self, name: str = "loop") -> None:
        self._graph = DependenceGraph(name)
        self._default_latencies: dict[str, int] = {}
        # Edges are deferred to build() so recurrences can reference
        # operations defined later in program order.
        self._pending_edges: list[Edge] = []

    def defaults(self, **latencies: int) -> "GraphBuilder":
        """Set per-opclass default latencies (e.g. ``fadd=1, fdiv=17``)."""
        self._default_latencies.update(latencies)
        return self

    # ------------------------------------------------------------------
    def op(
        self,
        name: str,
        opclass: str = GENERIC,
        latency: int | None = None,
        deps: Sequence[DepSpec] = (),
        produces_value: bool = True,
    ) -> "GraphBuilder":
        """Add an operation and the edges feeding it."""
        if latency is None:
            latency = self._default_latencies.get(opclass, 1)
        self._graph.add_operation(
            Operation(
                name=name,
                latency=latency,
                opclass=opclass,
                produces_value=produces_value,
            )
        )
        for dep in deps:
            src, distance, kind = _parse_dep(dep)
            self._pending_edges.append(Edge(src, name, distance, kind))
        return self

    def load(
        self,
        name: str,
        deps: Sequence[DepSpec] = (),
        latency: int | None = None,
    ) -> "GraphBuilder":
        """Add a load (memory class, produces a value)."""
        return self.op(name, MEM, latency=latency, deps=deps)

    def store(
        self,
        name: str,
        deps: Sequence[DepSpec] = (),
        latency: int | None = None,
    ) -> "GraphBuilder":
        """Add a store (memory class, produces no value)."""
        return self.op(
            name, MEM, latency=latency, deps=deps, produces_value=False
        )

    def add(self, name: str, deps: Sequence[DepSpec] = ()) -> "GraphBuilder":
        """Add an FP add/subtract."""
        return self.op(name, FADD, deps=deps)

    def mul(self, name: str, deps: Sequence[DepSpec] = ()) -> "GraphBuilder":
        """Add an FP multiply."""
        return self.op(name, FMUL, deps=deps)

    def div(self, name: str, deps: Sequence[DepSpec] = ()) -> "GraphBuilder":
        """Add an FP divide."""
        return self.op(name, FDIV, deps=deps)

    def sqrt(self, name: str, deps: Sequence[DepSpec] = ()) -> "GraphBuilder":
        """Add an FP square root."""
        return self.op(name, FSQRT, deps=deps)

    def edge(
        self,
        src: str,
        dst: str,
        distance: int = 0,
        kind: DependenceKind = DependenceKind.REGISTER,
    ) -> "GraphBuilder":
        """Add an edge (operations may be defined later)."""
        self._pending_edges.append(Edge(src, dst, distance, kind))
        return self

    def chain(self, names: Iterable[str], distance: int = 0) -> "GraphBuilder":
        """Add edges linking *names* in sequence."""
        names = list(names)
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst, distance)
        return self

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> DependenceGraph:
        """Finish and return the graph (validated by default)."""
        for edge in self._pending_edges:
            self._graph.add_edge(edge)
        self._pending_edges.clear()
        if validate:
            self._graph.validate()
        return self._graph


def _parse_dep(dep: DepSpec) -> tuple[str, int, DependenceKind]:
    """Normalise a dependency spec to ``(src, distance, kind)``."""
    if isinstance(dep, str):
        return dep, 0, DependenceKind.REGISTER
    if len(dep) == 2:
        src, distance = dep
        return src, distance, DependenceKind.REGISTER
    if len(dep) == 3:
        src, distance, kind = dep
        if isinstance(kind, str):
            kind = DependenceKind(kind)
        return src, distance, kind
    raise ValueError(f"malformed dependency spec: {dep!r}")


__all__ = [
    "GraphBuilder",
    "FADD",
    "FMUL",
    "FDIV",
    "FSQRT",
    "MEM",
    "GENERIC",
]
