"""Elementary-circuit enumeration (Johnson's algorithm).

Recurrence analysis needs every elementary circuit of the dependence graph:
RecMII is a maximum over circuits, and the pre-ordering phase groups
circuits into *recurrence subgraphs* keyed by their sets of loop-carried
("backward") edges (Section 3.2).

Parallel edges: for a given cycle of *nodes*, the circuit that most
restricts RecMII is the one using the minimum-distance edge on every hop
(the latency sum is fixed by the nodes).  We therefore canonicalise each
node cycle to that minimal-distance edge selection; parallel edges with
larger distances are strictly less restrictive and never change the node
set of a recurrence subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import Edge

#: Safety cap — graphs in this domain have few circuits; a pathological
#: generator output should fail loudly rather than hang.
DEFAULT_MAX_CIRCUITS = 50_000


@dataclass(frozen=True)
class Circuit:
    """An elementary circuit: node ring plus the chosen edge per hop."""

    nodes: tuple[str, ...]
    edges: tuple[Edge, ...]

    def latency_sum(self, graph: DependenceGraph) -> int:
        """Sum of node latencies around the circuit (RecMII's numerator).

        Latencies live on the operations, not the circuit, so the graph
        must be supplied.
        """
        return sum(graph.operation(name).latency for name in self.nodes)

    def total_distance(self) -> int:
        """Sum of dependence distances around the circuit (Omega)."""
        return sum(edge.distance for edge in self.edges)

    def backward_edges(self) -> frozenset[tuple[str, str, int, str]]:
        """Keys of the loop-carried edges that close this circuit."""
        return frozenset(
            edge.key for edge in self.edges if edge.distance > 0
        )


class CircuitLimitExceeded(RuntimeError):
    """More elementary circuits than the configured cap."""


def _min_distance_edge(graph: DependenceGraph, src: str, dst: str) -> Edge:
    """Canonical edge for hop ``src -> dst``: minimal distance, stable tie."""
    best: Edge | None = None
    for edge in graph.out_edges(src):
        if edge.dst != dst:
            continue
        if best is None or edge.distance < best.distance:
            best = edge
    assert best is not None, f"no edge {src}->{dst}"
    return best


def elementary_circuits(
    graph: DependenceGraph, max_circuits: int = DEFAULT_MAX_CIRCUITS
) -> list[Circuit]:
    """All elementary circuits of *graph* via Johnson's algorithm.

    Self-loops are returned as single-node circuits.  Node cycles are
    canonicalised per the module docstring.  Circuits are emitted in a
    deterministic order (rooted at increasing program-order positions).
    """
    names = graph.node_names()
    position = {name: i for i, name in enumerate(names)}
    adjacency: dict[str, list[str]] = {
        name: sorted(set(graph.successors(name)), key=position.__getitem__)
        for name in names
    }

    circuits: list[Circuit] = []

    # Self-loops first (Johnson's SCC machinery below excludes them).
    for name in names:
        if name in adjacency[name]:
            edge = _min_distance_edge(graph, name, name)
            circuits.append(Circuit(nodes=(name,), edges=(edge,)))

    def strongly_connected(sub_nodes: list[str]) -> list[list[str]]:
        """Tarjan SCC restricted to *sub_nodes* (iterative)."""
        node_set = set(sub_nodes)
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[list[str]] = []
        counter = 0

        for root in sub_nodes:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_idx = work.pop()
                if edge_idx == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                neighbors = [
                    succ
                    for succ in adjacency[node]
                    if succ in node_set and succ != node
                ]
                for i in range(edge_idx, len(neighbors)):
                    succ = neighbors[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recursed:
                    continue
                if lowlink[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        result.append(scc)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def circuits_from(start: str, scc_nodes: set[str]) -> None:
        """Johnson's backtracking search rooted at *start*."""
        blocked: set[str] = set()
        block_map: dict[str, set[str]] = {n: set() for n in scc_nodes}
        path: list[str] = [start]
        blocked.add(start)
        neighbor_stack: list[list[str]] = [
            [
                succ
                for succ in adjacency[start]
                if succ in scc_nodes and succ != start
            ]
        ]
        closed_flags: list[bool] = [False]

        def unblock(node: str) -> None:
            work = [node]
            while work:
                current = work.pop()
                if current in blocked:
                    blocked.discard(current)
                    pending = block_map[current]
                    block_map[current] = set()
                    work.extend(pending)

        while neighbor_stack:
            neighbors = neighbor_stack[-1]
            node = path[-1]
            if neighbors:
                succ = neighbors.pop()
                if succ == start:
                    ring = tuple(path)
                    hop_edges = tuple(
                        _min_distance_edge(
                            graph, ring[i], ring[(i + 1) % len(ring)]
                        )
                        for i in range(len(ring))
                    )
                    circuits.append(Circuit(nodes=ring, edges=hop_edges))
                    if len(circuits) > max_circuits:
                        raise CircuitLimitExceeded(
                            f"more than {max_circuits} elementary circuits"
                        )
                    closed_flags[-1] = True
                elif succ not in blocked:
                    path.append(succ)
                    blocked.add(succ)
                    neighbor_stack.append(
                        [
                            nxt
                            for nxt in adjacency[succ]
                            if nxt in scc_nodes and nxt != succ
                        ]
                    )
                    closed_flags.append(False)
            else:
                neighbor_stack.pop()
                closed = closed_flags.pop()
                path.pop()
                if closed:
                    unblock(node)
                    if closed_flags:
                        closed_flags[-1] = True
                else:
                    for succ in adjacency[node]:
                        if succ in scc_nodes and succ != node:
                            block_map[succ].add(node)

    remaining = list(names)
    while remaining:
        sccs = strongly_connected(remaining)
        if not sccs:
            break
        # Process the SCC containing the least (program-order) node.
        sccs.sort(key=lambda scc: min(position[n] for n in scc))
        scc = sccs[0]
        scc_sorted = sorted(scc, key=position.__getitem__)
        start = scc_sorted[0]
        circuits_from(start, set(scc_sorted))
        remaining = [n for n in remaining if n != start]

    circuits.sort(
        key=lambda c: (min(position[n] for n in c.nodes), len(c.nodes),
                       tuple(sorted(position[n] for n in c.nodes)))
    )
    return circuits
