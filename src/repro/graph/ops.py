"""Operations (vertices) of a dependence graph.

Each operation carries the attributes the paper's model needs:

* ``latency`` — the nonzero positive number of cycles the operation takes to
  produce its result (the paper's ``lambda_u``).
* ``opclass`` — the functional-unit class that executes it (e.g. ``"fadd"``).
  The machine model maps classes to unit counts; the special class
  :data:`GENERIC` is used by machines whose units are general purpose.
* ``produces_value`` — whether the operation defines a loop variant.  Stores
  and branches do not; they consume registers but never occupy one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Functional-unit class for machines with general-purpose units only.
GENERIC = "generic"

#: Conventional opclass names used by the bundled machine configurations.
FADD = "fadd"
FMUL = "fmul"
FDIV = "fdiv"
FSQRT = "fsqrt"
MEM = "mem"


@dataclass(frozen=True)
class Operation:
    """A single operation of the loop body.

    Parameters
    ----------
    name:
        Unique identifier within its graph.  Program order is the order in
        which operations were added to the graph, not the name.
    latency:
        Cycles until the result is available (``lambda_u >= 1``).
    opclass:
        Functional-unit class executing the operation.
    produces_value:
        ``False`` for stores/branches: the operation defines no loop variant
        and therefore needs no register for a result (it still contributes
        one *buffer* in the Govindarajan metric, handled by
        :mod:`repro.schedule.buffers`).
    """

    name: str
    latency: int = 1
    opclass: str = GENERIC
    produces_value: bool = True
    attrs: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be non-empty")
        if self.latency < 1:
            raise ValueError(
                f"operation {self.name!r}: latency must be >= 1, "
                f"got {self.latency}"
            )

    @property
    def is_store(self) -> bool:
        """``True`` when the operation defines no loop variant."""
        return not self.produces_value

    def renamed(self, name: str) -> "Operation":
        """Return a copy of this operation under a different name."""
        return Operation(
            name=name,
            latency=self.latency,
            opclass=self.opclass,
            produces_value=self.produces_value,
            attrs=dict(self.attrs),
        )
