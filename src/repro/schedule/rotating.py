"""Rotating-register-file allocation (Cydra 5 style).

Section 2 of the paper offers two fixes for values whose lifetime exceeds
the II: modulo variable expansion (kernel unrolling — see
:mod:`repro.schedule.allocator`) or a **rotating register file** that
renames loop variants in hardware "without replicating code" [5].

Model: the file holds ``R`` registers; the architectural register number
advances by one every II cycles (every kernel iteration).  A value defined
at cycle ``t_v`` with lifetime ``L_v`` is assigned a *slot* ``s_v``; its
iteration-``i`` instance physically occupies register ``(s_v + i) mod R``
from ``t_v + i*II`` until ``t_v + L_v + i*II``.

Two values (or two instances of one value) collide exactly when some
integer ``m = i - j`` satisfies both

* the register congruence ``m ≡ s_w - s_v (mod R)``, and
* the time overlap ``t_w - t_v - L_v < m * II < t_w - t_v + L_w``.

The allocator assigns slots greedily in definition order, growing ``R``
from the MaxLive lower bound until every value fits — the same incremental
search a compiler for the Cydra 5 performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.schedule.lifetimes import ValueLifetime, compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule

#: Safety bound on the incremental search (far above any real loop).
MAX_ROTATING_REGISTERS = 4096


@dataclass
class RotatingAllocation:
    """Slot assignment in a rotating register file."""

    register_count: int
    maxlive: int
    #: value (producer name) → rotating slot.
    slots: dict[str, int] = field(default_factory=dict)

    @property
    def overhead(self) -> int:
        """Registers beyond the MaxLive lower bound."""
        return self.register_count - self.maxlive


def _collides(
    first: ValueLifetime,
    second: ValueLifetime,
    slot_first: int,
    slot_second: int,
    ii: int,
    registers: int,
    same_value: bool = False,
) -> bool:
    """Do the two values ever occupy the same physical register?

    With *same_value* the ``m = 0`` solution (an instance against itself)
    is not a collision; nonzero ``m`` catches a lifetime longer than
    ``R * II`` wrapping onto its own later instances.
    """
    if first.length == 0 or second.length == 0:
        return False
    shift = second.start - first.start
    residue = (slot_second - slot_first) % registers
    # m ranges over integers with shift - L1 < m*II < shift + L2.
    low = shift - first.length
    high = shift + second.length
    m = low // ii + 1
    while m * ii < high:
        if m % registers == residue and not (same_value and m == 0):
            return True
        m += 1
    return False


def allocate_rotating(schedule: Schedule) -> RotatingAllocation:
    """Assign every loop variant a slot in a minimal rotating file."""
    lifetimes = [
        lt for lt in compute_lifetimes(schedule) if lt.length > 0
    ]
    lower_bound = max_live(schedule)
    if not lifetimes:
        return RotatingAllocation(register_count=0, maxlive=lower_bound)

    ii = schedule.ii
    ordered = sorted(lifetimes, key=lambda lt: (lt.start, -lt.length))
    registers = max(1, lower_bound)
    while registers <= MAX_ROTATING_REGISTERS:
        slots = _try_allocate(ordered, ii, registers)
        if slots is not None:
            return RotatingAllocation(
                register_count=registers,
                maxlive=lower_bound,
                slots=slots,
            )
        registers += 1
    raise AllocationError(
        f"rotating allocation exceeded {MAX_ROTATING_REGISTERS} registers"
    )


def _try_allocate(
    ordered: list[ValueLifetime], ii: int, registers: int
) -> dict[str, int] | None:
    """Greedy slot assignment at a fixed file size; None on failure."""
    slots: dict[str, int] = {}
    placed: list[tuple[ValueLifetime, int]] = []
    for lifetime in ordered:
        chosen: int | None = None
        for slot in range(registers):
            feasible = all(
                not _collides(other, lifetime, other_slot, slot, ii, registers)
                for other, other_slot in placed
            ) and not _collides(
                lifetime, lifetime, slot, slot, ii, registers,
                same_value=True,
            )
            if feasible:
                chosen = slot
                break
        if chosen is None:
            return None
        slots[lifetime.producer] = chosen
        placed.append((lifetime, chosen))
    return slots


def verify_rotating(
    schedule: Schedule,
    allocation: RotatingAllocation,
    horizon_iterations: int = 8,
) -> None:
    """Brute-force simulation check of a rotating allocation.

    Walks *horizon_iterations* worth of instances and asserts no two live
    instances share a physical register at any cycle.
    """
    lifetimes = [
        lt for lt in compute_lifetimes(schedule) if lt.length > 0
    ]
    if not lifetimes:
        return
    ii = schedule.ii
    registers = allocation.register_count
    occupancy: dict[tuple[int, int], tuple[str, int]] = {}
    for lifetime in lifetimes:
        slot = allocation.slots[lifetime.producer]
        for iteration in range(horizon_iterations):
            phys = (slot + iteration) % registers
            begin = lifetime.start + iteration * ii
            for cycle in range(begin, begin + lifetime.length):
                key = (cycle, phys)
                holder = occupancy.get(key)
                if holder is not None and holder != (
                    lifetime.producer,
                    iteration,
                ):
                    raise AllocationError(
                        f"cycle {cycle}: register {phys} held by both "
                        f"{holder} and {(lifetime.producer, iteration)}"
                    )
                occupancy[key] = (lifetime.producer, iteration)
