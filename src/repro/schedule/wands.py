"""Wands-only register allocation (Rau et al. PLDI'92, §"wands").

The strategy the paper's footnote 4 actually names: a **wand** is the
set of simultaneously-live instances of one value on the MVE-unrolled
kernel circle — ``K`` arcs offset by II, where ``K`` is the unroll
degree.  Wands-only allocation places each value's *whole wand* into a
block of cyclically-adjacent registers (instance ``j`` in block slot
``j mod width``), so consecutive instances of a value always sit in
neighbouring registers — the property that makes post-pass copy
insertion and rotating-file emulation cheap.

Blocks are packed end-fit: values ordered by lifetime start, each block
placed at the rotation of the register ring where it fits with the
least dead space.  The result is a
:class:`~repro.schedule.allocator.RegisterAllocation`, comparable with
the per-arc strategies of :mod:`repro.schedule.strategies`; PLDI'92
reports (and the bench reproduces) that wands-only end-fit with
adjacency ordering stays within one register of MaxLive.
"""

from __future__ import annotations

import math

from repro.errors import AllocationError
from repro.schedule.allocator import (
    Arc,
    RegisterAllocation,
    mve_unroll_degree,
)
from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule


class _Wand:
    """One value's arcs, grouped and indexed by block slot."""

    def __init__(self, value: str, arcs: list[Arc], width: int) -> None:
        self.value = value
        self.width = width
        #: slot (0..width-1) → arcs landing in that slot.
        self.slots: list[list[Arc]] = [[] for _ in range(width)]
        for arc in arcs:
            self.slots[arc.instance % width].append(arc)
        self.start = min(arc.start for arc in arcs)

    def conflicts_with_register(
        self, slot: int, register: list[Arc]
    ) -> bool:
        return any(
            mine.overlaps(other)
            for mine in self.slots[slot]
            for other in register
        )


def allocate_wands(schedule: Schedule) -> RegisterAllocation:
    """Wands-only end-fit allocation of *schedule*'s loop variants."""
    ii = schedule.ii
    unroll = mve_unroll_degree(schedule)
    circumference = unroll * ii

    wands: list[_Wand] = []
    for lifetime in compute_lifetimes(schedule):
        if lifetime.length == 0:
            continue
        if lifetime.length > circumference:
            raise AllocationError(
                f"value {lifetime.producer!r}: lifetime {lifetime.length} "
                f"exceeds unrolled kernel span {circumference}"
            )
        width = max(1, math.ceil(lifetime.length / ii))
        # A slot is reused by instances j and j+width; that is only
        # conflict-free when width divides the unroll degree (the same
        # divisibility the tiled allocator needs).
        while unroll % width:
            width += 1
        arcs = [
            Arc(
                value=lifetime.producer,
                instance=instance,
                start=(lifetime.start + instance * ii) % circumference,
                length=lifetime.length,
                circumference=circumference,
            )
            for instance in range(unroll)
        ]
        wands.append(_Wand(lifetime.producer, arcs, width))

    wands.sort(key=lambda w: (w.start, -w.width, w.value))
    registers: list[list[Arc]] = []
    assignment: dict[tuple[str, int], int] = {}
    for wand in wands:
        base = _place_wand(wand, registers)
        for slot in range(wand.width):
            register = registers[(base + slot) % len(registers)]
            for arc in wand.slots[slot]:
                register.append(arc)
                assignment[(arc.value, arc.instance)] = (
                    base + slot
                ) % len(registers)

    return RegisterAllocation(
        unroll=unroll,
        register_count=len(registers),
        maxlive=max_live(schedule),
        assignment=assignment,
    )


def _place_wand(wand: _Wand, registers: list[list[Arc]]) -> int:
    """Find (or create) a base register for *wand*'s block.

    Tries every rotation of the current ring and keeps the feasible
    base whose first slot starts closest after an existing arc's end
    (the end-fit measure); when no rotation fits, the ring grows by the
    wand's width.
    """
    count = len(registers)
    best_base: int | None = None
    best_gap: int | None = None
    for base in range(count):
        if count < wand.width:
            break
        feasible = all(
            not wand.conflicts_with_register(
                slot, registers[(base + slot) % count]
            )
            for slot in range(wand.width)
        )
        if not feasible:
            continue
        gap = _gap_before(wand, registers[base % count])
        if best_gap is None or gap < best_gap:
            best_base, best_gap = base, gap
    if best_base is not None:
        return best_base
    base = len(registers)
    registers.extend([] for _ in range(wand.width))
    return base


def _gap_before(wand: _Wand, register: list[Arc]) -> int:
    """Dead space between the register's arcs and the wand's first slot."""
    if not register:
        return 10**9 - 1  # prefer reusing partially-filled registers
    anchor = min(arc.start for arc in wand.slots[0]) if wand.slots[0] else 0
    return min(
        (anchor - (other.start + other.length)) % other.circumference
        for other in register
    )
