"""Schedule representation and the register-pressure metrics of Section 4.

* :class:`~repro.schedule.schedule.Schedule` — an operation→cycle mapping
  for one iteration, plus the II; normalised so the earliest issue is 0.
* :mod:`~repro.schedule.lifetimes` — loop-variant lifetimes (producer issue
  to last-consumer issue).
* :mod:`~repro.schedule.maxlive` — MaxLive, the lower bound on variant
  register requirements used throughout Section 4.2.
* :mod:`~repro.schedule.buffers` — Govindarajan's buffer metric (Table 1).
* :mod:`~repro.schedule.verify` — dependence/resource checker applied to
  every schedule the test-suite produces.
* :mod:`~repro.schedule.kernel` — kernel/prologue/epilogue construction.
* :mod:`~repro.schedule.allocator` — modulo variable expansion plus an
  end-fit register allocator (Rau et al. [21] style).
* :mod:`~repro.schedule.strategies` — the full PLDI'92 ordering × fit
  allocation matrix (ablation for the footnote-4 claim).
* :mod:`~repro.schedule.wands` — wands-only allocation: each value's
  instances in a block of adjacent registers (the strategy footnote 4
  names).
* :mod:`~repro.schedule.rotating` — rotating-register-file allocation,
  the hardware renaming alternative of Section 2 [5].
* :mod:`~repro.schedule.codegen` — the MVE-unrolled kernel with renamed
  registers (what a back-end without rotating registers would emit).
"""

from repro.schedule.allocator import RegisterAllocation, allocate_registers
from repro.schedule.buffers import buffer_requirements
from repro.schedule.lifetimes import ValueLifetime, compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.rotating import RotatingAllocation, allocate_rotating
from repro.schedule.schedule import Schedule
from repro.schedule.strategies import allocate_with_strategy, strategy_matrix
from repro.schedule.wands import allocate_wands
from repro.schedule.verify import verify_schedule

__all__ = [
    "RegisterAllocation",
    "RotatingAllocation",
    "Schedule",
    "ValueLifetime",
    "allocate_registers",
    "allocate_rotating",
    "allocate_wands",
    "allocate_with_strategy",
    "buffer_requirements",
    "compute_lifetimes",
    "max_live",
    "strategy_matrix",
    "verify_schedule",
]
