"""Code generation: the MVE-unrolled kernel with concrete registers.

The final artefact a compiler back-end would emit for a software-pipelined
loop without rotating register files: the kernel unrolled by the modulo-
variable-expansion degree, with each value instance renamed to the
register chosen by :mod:`repro.schedule.allocator`.

Operation ``u`` of unrolled copy ``k`` issues at row
``(start(u) + k * II) mod (K * II)`` of the unrolled kernel; it writes
``assignment[(u, k)]`` and reads, for each register operand ``(p, δ)``,
the register holding ``p``'s instance from ``δ`` copies earlier —
``assignment[(p, (k - δ) mod K)]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.edges import DependenceKind
from repro.schedule.allocator import RegisterAllocation, allocate_registers
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class EmittedOp:
    """One instruction of the unrolled kernel."""

    operation: str
    copy: int
    dest: str | None
    sources: tuple[str, ...]

    def render(self) -> str:
        reads = ", ".join(self.sources) if self.sources else "-"
        dest = self.dest or "-"
        return f"{self.operation}#{self.copy}  ->{dest:>5s}  (reads {reads})"


@dataclass
class UnrolledKernel:
    """The unrolled kernel: ``rows[r]`` issues at unrolled cycle ``r``."""

    ii: int
    unroll: int
    register_count: int
    rows: list[list[EmittedOp]]

    def render(self) -> str:
        lines = [
            f"unrolled kernel: {self.unroll} copies x II={self.ii} "
            f"({self.register_count} registers)"
        ]
        for index, row in enumerate(self.rows):
            body = "; ".join(op.render() for op in row) or "(empty)"
            lines.append(f"  [{index:3d}] {body}")
        return "\n".join(lines)


def generate_unrolled_kernel(
    schedule: Schedule,
    allocation: RegisterAllocation | None = None,
) -> UnrolledKernel:
    """Emit the register-renamed unrolled kernel for *schedule*."""
    if allocation is None:
        allocation = allocate_registers(schedule)
    graph = schedule.graph
    ii = schedule.ii
    unroll = allocation.unroll
    span = unroll * ii
    rows: list[list[EmittedOp]] = [[] for _ in range(span)]

    def register_of(value: str, copy: int) -> str | None:
        index = allocation.assignment.get((value, copy % unroll))
        return None if index is None else f"r{index}"

    for op in graph.operations():
        for copy in range(unroll):
            row = (schedule.issue_cycle(op.name) + copy * ii) % span
            dest = (
                register_of(op.name, copy) if op.produces_value else None
            )
            sources = []
            for edge in graph.in_edges(op.name):
                if edge.kind is not DependenceKind.REGISTER:
                    continue
                source = register_of(edge.src, copy - edge.distance)
                if source is not None:
                    sources.append(source)
            rows[row].append(
                EmittedOp(
                    operation=op.name,
                    copy=copy,
                    dest=dest,
                    sources=tuple(sources),
                )
            )

    return UnrolledKernel(
        ii=ii,
        unroll=unroll,
        register_count=allocation.register_count,
        rows=rows,
    )


@dataclass
class RotatingKernel:
    """The single-copy kernel with rotating-register operand names.

    With a rotating file the kernel is **not** unrolled: each iteration's
    instance of value ``v`` lands in physical register
    ``(slot_v + iteration) mod R``, so the architectural operand names are
    iteration-relative.  An operation writes ``rr[slot_v]``; a consumer of
    the instance from ``δ`` iterations earlier reads
    ``rr[(slot_p − δ) mod R]`` — the hardware adds the current iteration
    offset (the Cydra 5's rotating register base).
    """

    ii: int
    register_count: int
    rows: list[list[EmittedOp]]

    def render(self) -> str:
        lines = [
            f"rotating kernel: II={self.ii} "
            f"({self.register_count} rotating registers, no unrolling)"
        ]
        for index, row in enumerate(self.rows):
            body = "; ".join(op.render() for op in row) or "(empty)"
            lines.append(f"  [{index:3d}] {body}")
        return "\n".join(lines)


def generate_rotating_kernel(
    schedule: Schedule,
    allocation: "RotatingAllocation | None" = None,
) -> RotatingKernel:
    """Emit the rotating-register kernel for *schedule*.

    The paper's Section 2 names the rotating file as the renaming
    mechanism that avoids kernel replication [5]; this is the code a
    back-end for such a machine would emit.
    """
    from repro.schedule.rotating import RotatingAllocation, allocate_rotating

    if allocation is None:
        allocation = allocate_rotating(schedule)
    graph = schedule.graph
    ii = schedule.ii
    registers = max(allocation.register_count, 1)
    rows: list[list[EmittedOp]] = [[] for _ in range(ii)]

    for op in graph.operations():
        row = schedule.issue_cycle(op.name) % ii
        dest = None
        if op.produces_value and op.name in allocation.slots:
            dest = f"rr{allocation.slots[op.name]}"
        sources = []
        for edge in graph.in_edges(op.name):
            if edge.kind is not DependenceKind.REGISTER:
                continue
            slot = allocation.slots.get(edge.src)
            if slot is None:
                continue
            sources.append(f"rr{(slot - edge.distance) % registers}")
        rows[row].append(
            EmittedOp(
                operation=op.name,
                copy=0,
                dest=dest,
                sources=tuple(sources),
            )
        )

    return RotatingKernel(
        ii=ii,
        register_count=allocation.register_count,
        rows=rows,
    )
