"""Loop-variant lifetimes.

Following Section 4.2: a loop variant is alive from the issue of its
producer to the issue of its last consumer.  We represent the lifetime as
the half-open interval ``[def_cycle, last_use_cycle)`` — a value whose last
consumer issues at the cycle the next instance is defined occupies the
register up to, but not beyond, that boundary.  Operations without register
consumers (results that only feed stores in other iterations via memory, or
dead values emitted by generators) get zero-length lifetimes.

Lifetimes are per-iteration; instance ``i`` of a value spans
``[def + i*II, last_use + i*II)`` and instances of consecutive iterations
overlap whenever the lifetime exceeds the II — that overlap is what
:mod:`repro.schedule.maxlive` counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class ValueLifetime:
    """The lifetime of one loop variant (iteration 0's instance)."""

    producer: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"lifetime of {self.producer!r}: end {self.end} before "
                f"start {self.start}"
            )


def compute_lifetimes(schedule: Schedule) -> list[ValueLifetime]:
    """Lifetime of every value-producing operation, program order."""
    graph = schedule.graph
    ii = schedule.ii
    lifetimes: list[ValueLifetime] = []
    for op in graph.operations():
        if not op.produces_value:
            continue
        start = schedule.issue_cycle(op.name)
        end = start
        for consumer, distance in graph.value_consumers(op.name):
            if consumer == op.name:
                # A self-dependence consumes the previous iteration's
                # instance: the use happens distance*II later.
                use = start + distance * ii
            else:
                use = schedule.issue_cycle(consumer) + distance * ii
            end = max(end, use)
        lifetimes.append(ValueLifetime(op.name, start, end))
    return lifetimes


def total_lifetime(schedule: Schedule) -> int:
    """Sum of variant lifetime lengths (a scheduler-quality diagnostic)."""
    return sum(lt.length for lt in compute_lifetimes(schedule))
