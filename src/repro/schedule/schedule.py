"""The schedule object produced by every scheduler in the library.

A modulo schedule is fully described by the initiation interval ``II`` and
one issue cycle per operation for a *single* iteration; iteration ``i``
issues operation ``u`` at ``start[u] + i * II``.  Schedules are normalised
at construction so the earliest issue cycle is zero, which makes stage
numbering and kernel rows canonical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel


@dataclass
class ScheduleStats:
    """Bookkeeping the experiment harness reports."""

    scheduler: str = ""
    mii: int = 0
    resmii: int = 0
    recmii: int = 0
    attempts: int = 0
    ordering_seconds: float = 0.0
    scheduling_seconds: float = 0.0
    total_seconds: float = 0.0


class Schedule:
    """A modulo schedule for one loop.

    Parameters
    ----------
    graph / machine:
        What was scheduled and on what.
    ii:
        The achieved initiation interval.
    start:
        Issue cycle per operation (any integer offsets; normalised here).
    stats:
        Optional bookkeeping propagated to experiment reports.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        ii: int,
        start: dict[str, int],
        stats: ScheduleStats | None = None,
    ) -> None:
        if ii < 1:
            raise SchedulingError(f"II must be >= 1, got {ii}")
        missing = set(graph.node_names()) - set(start)
        if missing:
            raise SchedulingError(
                f"schedule is missing operations: {sorted(missing)}"
            )
        self.graph = graph
        self.machine = machine
        self.ii = ii
        base = min(start.values(), default=0)
        self.start = {name: cycle - base for name, cycle in start.items()}
        self.stats = stats or ScheduleStats()

    # ------------------------------------------------------------------
    def issue_cycle(self, name: str) -> int:
        """Normalised issue cycle of *name* (iteration 0)."""
        return self.start[name]

    @property
    def length(self) -> int:
        """Cycles from the first issue to the last result (one iteration)."""
        return max(
            self.start[name] + self.graph.operation(name).latency
            for name in self.start
        )

    @property
    def stage_count(self) -> int:
        """Number of II-cycle stages one iteration spans (the paper's SC)."""
        last_issue = max(self.start.values())
        return last_issue // self.ii + 1

    def stage_of(self, name: str) -> int:
        """Stage index of *name* within its iteration."""
        return self.start[name] // self.ii

    def row_of(self, name: str) -> int:
        """Kernel row (cycle modulo II) of *name*."""
        return self.start[name] % self.ii

    def kernel_rows(self) -> list[list[tuple[str, int]]]:
        """Kernel: for each row, the ``(operation, stage)`` pairs issued.

        In the steady state, row ``r`` of the kernel simultaneously issues
        operation ``u`` of the iteration started ``stage_of(u)`` stages ago.
        """
        rows: list[list[tuple[str, int]]] = [[] for _ in range(self.ii)]
        for name in self.graph.node_names():
            rows[self.row_of(name)].append((name, self.stage_of(name)))
        return rows

    def execution_cycles(self, iterations: int) -> int:
        """Estimated execution time, II × iterations (Section 4.2's model)."""
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        return self.ii * iterations

    def as_dict(self) -> dict[str, int]:
        """Copy of the operation→cycle mapping."""
        return dict(self.start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.graph.name!r}, II={self.ii}, "
            f"SC={self.stage_count}, by {self.stats.scheduler or '?'})"
        )
