"""Register allocation for software-pipelined loops.

The paper (footnote 4) defers allocation to Rau et al. [21]: with modulo
variable expansion (MVE) or a rotating register file, the "wands-only"
strategy using **end-fit with adjacency ordering** almost always reaches
the MaxLive lower bound and never needs more than MaxLive + 1 registers.

This module implements that pipeline:

1. Pick the MVE unroll degree ``K`` — the largest number of simultaneously
   live instances of any single value (``max_v ceil(lifetime_v / II)``).
   Unrolling the kernel ``K`` times gives every live instance of a value a
   distinct name.
2. Lay every instance's lifetime onto a circle of circumference ``K * II``
   (the unrolled kernel is cyclic: instance ``j`` of iteration ``i`` is
   instance ``(j + 1) mod K`` of iteration ``i + 1``).
3. Colour the resulting circular-arc conflict graph with *end-fit*: arcs
   sorted by start cycle, each placed in the first register whose existing
   arcs it does not overlap (adjacency ordering makes consecutive
   instances of one value land in adjacent registers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.schedule.lifetimes import ValueLifetime, compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class Arc:
    """One value instance's lifetime on the unrolled-kernel circle."""

    value: str
    instance: int
    start: int
    length: int
    circumference: int

    def covers(self, point: int) -> bool:
        """Does the arc cover *point* (mod circumference)?"""
        if self.length >= self.circumference:
            return True
        offset = (point - self.start) % self.circumference
        return offset < self.length

    def overlaps(self, other: "Arc") -> bool:
        """Cyclic interval overlap test."""
        if self.length == 0 or other.length == 0:
            return False
        if (
            self.length >= self.circumference
            or other.length >= other.circumference
        ):
            return True
        gap = (other.start - self.start) % self.circumference
        if gap < self.length:
            return True
        gap_back = (self.start - other.start) % self.circumference
        return gap_back < other.length


@dataclass
class RegisterAllocation:
    """Result of allocating one schedule's loop variants."""

    unroll: int
    register_count: int
    maxlive: int
    #: (value, instance) -> register index.
    assignment: dict[tuple[str, int], int] = field(default_factory=dict)

    @property
    def overhead(self) -> int:
        """Registers beyond the MaxLive lower bound."""
        return self.register_count - self.maxlive


#: Unroll degrees beyond this are impractical for code size; the degree
#: falls back to the largest per-value requirement (still correct, merely
#: more fragmented).
MAX_UNROLL = 64


def mve_unroll_degree(schedule: Schedule) -> int:
    """Kernel unroll factor for modulo variable expansion.

    Lam's MVE uses the least common multiple of the per-value degrees
    ``ceil(lifetime / II)`` so that every value's instances tile the
    unrolled kernel exactly; the lcm is what lets end-fit reach MaxLive.
    Degenerate lcm blow-ups fall back to the maximum degree.
    """
    degrees = [
        math.ceil(lifetime.length / schedule.ii)
        for lifetime in compute_lifetimes(schedule)
        if lifetime.length > 0
    ]
    if not degrees:
        return 1
    degree = math.lcm(*degrees)
    if degree > MAX_UNROLL:
        degree = max(degrees)
    return degree


def allocate_registers(schedule: Schedule) -> RegisterAllocation:
    """Allocate all loop variants of *schedule*.

    Runs three strategies and keeps the smallest result:

    * **end-fit colouring** of the circular-arc conflict graph (good when
      lifetimes are of similar length),
    * **per-value tiling with register merging** — each value first gets
      its own ``ceil(lifetime/II)`` cyclically-tiled registers (plain
      modulo variable expansion), then registers with disjoint occupancy
      are greedily merged (good when a few very long lifetimes coexist
      with many short ones), and
    * the PLDI'92 **adjacency-ordered end-fit** from
      :mod:`repro.schedule.strategies` — the pair the paper's footnote 4
      singles out.

    Together they stay within a small constant of MaxLive on every suite
    in the repository; Rau et al.'s full wands machinery would shave the
    remaining register or two.
    """
    # Imported lazily: strategies reuses this module's Arc machinery.
    from repro.schedule.strategies import allocate_with_strategy

    candidates = [
        _allocate_end_fit(schedule),
        _allocate_tiled_merged(schedule),
        allocate_with_strategy(schedule, "adjacency", "end"),
    ]
    return min(candidates, key=lambda a: a.register_count)


def _allocate_end_fit(schedule: Schedule) -> RegisterAllocation:
    """End-fit colouring of all value instances."""
    ii = schedule.ii
    unroll = mve_unroll_degree(schedule)
    circumference = unroll * ii

    arcs: list[Arc] = []
    for lifetime in compute_lifetimes(schedule):
        if lifetime.length == 0:
            continue
        if lifetime.length > circumference:
            raise AllocationError(
                f"value {lifetime.producer!r}: lifetime {lifetime.length} "
                f"exceeds unrolled kernel span {circumference}"
            )
        for instance in range(unroll):
            arcs.append(
                Arc(
                    value=lifetime.producer,
                    instance=instance,
                    start=(lifetime.start + instance * ii) % circumference,
                    length=lifetime.length,
                    circumference=circumference,
                )
            )

    # End-fit with adjacency ordering: arcs sorted by start point (ties:
    # longer arcs first so awkward arcs claim registers early); each arc
    # goes to the feasible register whose previous occupant ends closest
    # before the arc starts, minimising dead space on the circle — this is
    # what keeps the result at MaxLive or MaxLive + 1 in [21].
    arcs.sort(key=lambda a: (a.start, -a.length, a.value, a.instance))
    registers: list[list[Arc]] = []
    assignment: dict[tuple[str, int], int] = {}
    for arc in arcs:
        best_index: int | None = None
        best_gap: int | None = None
        for index, existing in enumerate(registers):
            if any(arc.overlaps(other) for other in existing):
                continue
            gap = min(
                (arc.start - (other.start + other.length)) % circumference
                for other in existing
            )
            if best_gap is None or gap < best_gap:
                best_index = index
                best_gap = gap
        if best_index is None:
            registers.append([arc])
            best_index = len(registers) - 1
        else:
            registers[best_index].append(arc)
        assignment[(arc.value, arc.instance)] = best_index

    lower_bound = max_live(schedule)
    return RegisterAllocation(
        unroll=unroll,
        register_count=len(registers),
        maxlive=lower_bound,
        assignment=assignment,
    )


def _allocate_tiled_merged(schedule: Schedule) -> RegisterAllocation:
    """Per-value modulo-variable-expansion tiling, then register merging.

    Value ``v`` with degree ``d = ceil(lifetime/II)`` places instance
    ``j`` in private register ``j mod d`` — instances of one value never
    conflict that way.  Registers (arc sets) from different values are
    then merged greedily whenever their occupancies are disjoint on the
    common circle.
    """
    ii = schedule.ii
    unroll = mve_unroll_degree(schedule)
    circumference = unroll * ii

    # Build per-value private registers.
    registers: list[list[Arc]] = []
    owner_of: dict[tuple[str, int], int] = {}
    for lifetime in compute_lifetimes(schedule):
        if lifetime.length == 0:
            continue
        if lifetime.length > circumference:
            raise AllocationError(
                f"value {lifetime.producer!r}: lifetime {lifetime.length} "
                f"exceeds unrolled kernel span {circumference}"
            )
        degree = max(1, math.ceil(lifetime.length / ii))
        # Instance j and j+degree share a register, which is only
        # conflict-free when the circle holds a whole number of degree-
        # sized strides; when the unroll factor fell back from the lcm,
        # widen the stride to the next divisor of the unroll.
        while unroll % degree:
            degree += 1
        base = len(registers)
        registers.extend([] for _ in range(degree))
        for instance in range(unroll):
            arc = Arc(
                value=lifetime.producer,
                instance=instance,
                start=(lifetime.start + instance * ii) % circumference,
                length=lifetime.length,
                circumference=circumference,
            )
            slot = base + instance % degree
            registers[slot].append(arc)
            owner_of[(arc.value, arc.instance)] = slot

    # Greedy merging of disjoint registers (largest occupancy first so
    # heavy registers absorb light ones).
    order = sorted(
        range(len(registers)),
        key=lambda r: -sum(arc.length for arc in registers[r]),
    )
    merged_into: dict[int, int] = {}
    kept: list[int] = []
    for reg in order:
        placed = False
        for target in kept:
            if all(
                not a.overlaps(b)
                for a in registers[reg]
                for b in registers[target]
            ):
                registers[target].extend(registers[reg])
                merged_into[reg] = target
                placed = True
                break
        if not placed:
            kept.append(reg)
    renumber = {old: new for new, old in enumerate(kept)}
    assignment = {
        key: renumber[merged_into.get(slot, slot)]
        for key, slot in owner_of.items()
    }

    return RegisterAllocation(
        unroll=unroll,
        register_count=len(kept),
        maxlive=max_live(schedule),
        assignment=assignment,
    )
