"""Kernel / prologue / epilogue construction.

A software-pipelined loop executes ``SC - 1`` prologue stages that fill the
pipeline, a steady-state kernel of II cycles iterated ``N - SC + 1`` times,
and ``SC - 1`` epilogue stages that drain it (Section 2).  This module
materialises those tables from a :class:`~repro.schedule.schedule.Schedule`
— the representation a code generator would lower to VLIW bundles — and is
also what the kernel simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class KernelSlot:
    """One operation instance within a pipelined code table."""

    operation: str
    #: Which iteration (relative to the row's newest iteration) issues it.
    stage: int


@dataclass
class PipelinedLoop:
    """The three code regions of a software-pipelined loop."""

    ii: int
    stage_count: int
    #: ``prologue[c]`` = slots issued at fill cycle ``c``.
    prologue: list[list[KernelSlot]]
    #: ``kernel[r]`` = slots issued every II cycles at row ``r``.
    kernel: list[list[KernelSlot]]
    #: ``epilogue[c]`` = slots issued at drain cycle ``c``.
    epilogue: list[list[KernelSlot]]

    def total_cycles(self, iterations: int) -> int:
        """Execution time including fill and drain (iterations >= SC)."""
        if iterations < self.stage_count:
            # Short loops never reach steady state; fall back to the
            # unpipelined bound: one iteration length plus II per extra.
            return len(self.prologue) + self.ii * max(iterations, 0)
        steady = iterations - (self.stage_count - 1)
        return len(self.prologue) + steady * self.ii + len(self.epilogue)


def build_pipelined_loop(schedule: Schedule) -> PipelinedLoop:
    """Expand *schedule* into explicit prologue/kernel/epilogue tables."""
    ii = schedule.ii
    sc = schedule.stage_count
    kernel: list[list[KernelSlot]] = [[] for _ in range(ii)]
    for name, stage in (
        (op.name, schedule.stage_of(op.name))
        for op in schedule.graph.operations()
    ):
        kernel[schedule.row_of(name)].append(KernelSlot(name, stage))

    # Prologue: absolute cycles [0, (SC-1)*II).  Operation u of iteration i
    # issues at start(u) + i*II, so prologue cycle c carries every op whose
    # row matches c and whose stage has already begun (stage <= c // II).
    prologue: list[list[KernelSlot]] = []
    for cycle in range((sc - 1) * ii):
        slots = [
            KernelSlot(op.name, schedule.stage_of(op.name))
            for op in schedule.graph.operations()
            if schedule.row_of(op.name) == cycle % ii
            and schedule.stage_of(op.name) <= cycle // ii
        ]
        prologue.append(slots)

    # Epilogue: after N kernel-started iterations the drain covers absolute
    # cycles [N*II, (N+SC-1)*II).  Relative cycle c carries ops whose row
    # matches and whose stage lies strictly beyond c // II — the mirror
    # image of the prologue condition.
    epilogue: list[list[KernelSlot]] = []
    for cycle in range((sc - 1) * ii):
        slots = [
            KernelSlot(op.name, schedule.stage_of(op.name))
            for op in schedule.graph.operations()
            if schedule.row_of(op.name) == cycle % ii
            and schedule.stage_of(op.name) > cycle // ii
        ]
        epilogue.append(slots)

    return PipelinedLoop(
        ii=ii,
        stage_count=sc,
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
    )


def render_kernel(schedule: Schedule) -> str:
    """Human-readable kernel table (used by examples and docs)."""
    lines = [
        f"kernel for {schedule.graph.name!r}: II={schedule.ii}, "
        f"SC={schedule.stage_count}"
    ]
    for row, slots in enumerate(schedule.kernel_rows()):
        rendered = ", ".join(
            f"{name}[s{stage}]" for name, stage in slots
        ) or "(empty)"
        lines.append(f"  row {row}: {rendered}")
    return "\n".join(lines)
