"""MaxLive — the lower bound on variant register requirements.

Section 4.2: "a lower bound on the register pressure of the loops
(MaxLive) can be found by computing the maximum number of values that are
alive at any cycle of the schedule" in steady state.  For each kernel row
``r`` we count, over all values, how many overlapped iteration instances of
that value are alive at ``r``; MaxLive is the maximum over rows.

For a lifetime ``[s, e)`` and a row ``r``, the alive instances at steady
state are the integers ``t`` with ``t ≡ r (mod II)`` and ``s <= t < e`` —
a closed-form count, no simulation needed (the kernel simulator in
:mod:`repro.sim` cross-checks this).
"""

from __future__ import annotations

from repro.schedule.lifetimes import ValueLifetime, compute_lifetimes
from repro.schedule.schedule import Schedule


def instances_alive_at_row(lifetime: ValueLifetime, row: int, ii: int) -> int:
    """How many overlapped instances of *lifetime* are alive at kernel *row*."""
    span = lifetime.length
    if span <= 0:
        return 0
    # Number of t in [start, end) with t ≡ row (mod ii).
    first = lifetime.start + (row - lifetime.start) % ii
    if first >= lifetime.end:
        return 0
    return (lifetime.end - 1 - first) // ii + 1


def live_values_per_row(schedule: Schedule) -> list[int]:
    """Simultaneously-live variant count for every kernel row."""
    lifetimes = compute_lifetimes(schedule)
    return [
        sum(
            instances_alive_at_row(lifetime, row, schedule.ii)
            for lifetime in lifetimes
        )
        for row in range(schedule.ii)
    ]


def max_live(schedule: Schedule) -> int:
    """MaxLive of the schedule (variants only; invariants are additive)."""
    per_row = live_values_per_row(schedule)
    return max(per_row, default=0)
