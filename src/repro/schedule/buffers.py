"""Buffer requirements (Govindarajan, Altman & Gao [8]).

Table 1 reports schedules in *buffers*: "a value requires as many buffers
as the number of times the producer instruction is issued before the issue
of the last consumer.  In addition, stores require one buffer."  For a
lifetime ``[s, e)`` the producer issues at ``s, s+II, s+2·II, …``; the
issues strictly before ``e`` number ``ceil((e − s) / II)``.  Ning & Gao
[18] showed this is a tight upper bound on the register requirement, which
is why the paper uses it for the method comparison.
"""

from __future__ import annotations

import math

from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.schedule import Schedule


def value_buffers(start: int, end: int, ii: int) -> int:
    """Buffers required by one value with lifetime ``[start, end)``."""
    if end <= start:
        return 0
    return math.ceil((end - start) / ii)


def buffer_requirements(schedule: Schedule) -> int:
    """Total buffers of the schedule: values plus one per store."""
    total = 0
    for lifetime in compute_lifetimes(schedule):
        total += value_buffers(lifetime.start, lifetime.end, schedule.ii)
    total += sum(
        1 for op in schedule.graph.operations() if op.is_store
    )
    return total
