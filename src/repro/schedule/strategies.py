"""The Rau et al. [21] register-allocation strategy matrix.

"Register allocation for software pipelined loops" (PLDI'92) evaluates
allocation as a cross product of an **ordering** (which arc to place next)
and a **fit** (which feasible register takes it).  The paper's footnote 4
quotes its headline result — wands-only end-fit with adjacency ordering
never needs more than MaxLive + 1 registers — and
:func:`repro.schedule.allocator.allocate_registers` uses exactly that
pair.  This module exposes the full matrix so the claim itself can be
reproduced as an ablation:

Orderings
    ``start``      arcs by start cycle (round-robin over the circle);
    ``adjacency``  arcs chained end-to-start: after placing an arc, the
                   next candidate is the unplaced arc starting closest to
                   where it ended (the PLDI'92 "adjacency" heuristic);
    ``conflict``   most-constrained first: arcs by decreasing conflict
                   degree (graph-colouring flavour).

Fits
    ``first``      lowest-indexed feasible register;
    ``best``       feasible register with the smallest dead gap before
                   the arc (end-fit's gap measure, global over arcs);
    ``end``        register whose most recent arc ends nearest the new
                   arc's start.

All strategies colour the same circular-arc conflict graph built on the
MVE-unrolled kernel, so any (ordering, fit) pair yields a correct
allocation; they differ only in register count.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AllocationError
from repro.schedule.allocator import (
    Arc,
    RegisterAllocation,
    mve_unroll_degree,
)
from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule

#: Recognised orderings and fits (documented above).
ORDERINGS = ("start", "adjacency", "conflict")
FITS = ("first", "best", "end")


def build_arcs(schedule: Schedule) -> tuple[list[Arc], int]:
    """All value-instance arcs of *schedule* on the unrolled circle."""
    ii = schedule.ii
    unroll = mve_unroll_degree(schedule)
    circumference = unroll * ii
    arcs: list[Arc] = []
    for lifetime in compute_lifetimes(schedule):
        if lifetime.length == 0:
            continue
        if lifetime.length > circumference:
            raise AllocationError(
                f"value {lifetime.producer!r}: lifetime {lifetime.length} "
                f"exceeds unrolled kernel span {circumference}"
            )
        for instance in range(unroll):
            arcs.append(
                Arc(
                    value=lifetime.producer,
                    instance=instance,
                    start=(lifetime.start + instance * ii) % circumference,
                    length=lifetime.length,
                    circumference=circumference,
                )
            )
    return arcs, unroll


def allocate_with_strategy(
    schedule: Schedule,
    ordering: str = "adjacency",
    fit: str = "end",
) -> RegisterAllocation:
    """Allocate *schedule*'s variants with one (ordering, fit) pair."""
    if ordering not in ORDERINGS:
        raise ValueError(
            f"unknown ordering {ordering!r}; choose from {ORDERINGS}"
        )
    if fit not in FITS:
        raise ValueError(f"unknown fit {fit!r}; choose from {FITS}")
    arcs, unroll = build_arcs(schedule)
    sequence = _ORDERING_FUNCS[ordering](arcs)
    registers: list[list[Arc]] = []
    assignment: dict[tuple[str, int], int] = {}
    fit_func = _FIT_FUNCS[fit]
    for arc in sequence:
        index = fit_func(arc, registers)
        if index is None:
            registers.append([arc])
            index = len(registers) - 1
        else:
            registers[index].append(arc)
        assignment[(arc.value, arc.instance)] = index
    return RegisterAllocation(
        unroll=unroll,
        register_count=len(registers),
        maxlive=max_live(schedule),
        assignment=assignment,
    )


def strategy_matrix(
    schedule: Schedule,
) -> dict[tuple[str, str], RegisterAllocation]:
    """Every (ordering, fit) pair's allocation, for ablation reports."""
    return {
        (ordering, fit): allocate_with_strategy(schedule, ordering, fit)
        for ordering in ORDERINGS
        for fit in FITS
    }


# ----------------------------------------------------------------------
# Orderings
# ----------------------------------------------------------------------
def _order_start(arcs: list[Arc]) -> list[Arc]:
    return sorted(arcs, key=lambda a: (a.start, -a.length, a.value, a.instance))


def _order_adjacency(arcs: list[Arc]) -> list[Arc]:
    """Chain arcs end-to-start around the circle."""
    remaining = _order_start(arcs)
    if not remaining:
        return []
    sequence = [remaining.pop(0)]
    while remaining:
        anchor = sequence[-1]
        end = (anchor.start + anchor.length) % anchor.circumference
        best_index = min(
            range(len(remaining)),
            key=lambda i: (
                (remaining[i].start - end) % remaining[i].circumference,
                -remaining[i].length,
            ),
        )
        sequence.append(remaining.pop(best_index))
    return sequence


def _order_conflict(arcs: list[Arc]) -> list[Arc]:
    degrees = [
        sum(1 for other in arcs if other is not arc and arc.overlaps(other))
        for arc in arcs
    ]
    paired = sorted(
        zip(arcs, degrees),
        key=lambda p: (-p[1], p[0].start, p[0].value, p[0].instance),
    )
    return [arc for arc, _ in paired]


# ----------------------------------------------------------------------
# Fits
# ----------------------------------------------------------------------
def _feasible(arc: Arc, register: list[Arc]) -> bool:
    return all(not arc.overlaps(other) for other in register)


def _fit_first(arc: Arc, registers: list[list[Arc]]) -> int | None:
    for index, register in enumerate(registers):
        if _feasible(arc, register):
            return index
    return None


def _gap_before(arc: Arc, register: list[Arc]) -> int:
    return min(
        (arc.start - (other.start + other.length)) % arc.circumference
        for other in register
    )


def _fit_best(arc: Arc, registers: list[list[Arc]]) -> int | None:
    best_index: int | None = None
    best_gap: int | None = None
    for index, register in enumerate(registers):
        if not _feasible(arc, register):
            continue
        gap = _gap_before(arc, register)
        if best_gap is None or gap < best_gap:
            best_index, best_gap = index, gap
    return best_index


def _fit_end(arc: Arc, registers: list[list[Arc]]) -> int | None:
    """Register whose most recently placed arc ends nearest the start."""
    best_index: int | None = None
    best_gap: int | None = None
    for index, register in enumerate(registers):
        if not _feasible(arc, register):
            continue
        last = register[-1]
        gap = (arc.start - (last.start + last.length)) % arc.circumference
        if best_gap is None or gap < best_gap:
            best_index, best_gap = index, gap
    return best_index


_ORDERING_FUNCS: dict[str, Callable[[list[Arc]], list[Arc]]] = {
    "start": _order_start,
    "adjacency": _order_adjacency,
    "conflict": _order_conflict,
}

_FIT_FUNCS: dict[str, Callable[[Arc, list[list[Arc]]], int | None]] = {
    "first": _fit_first,
    "best": _fit_best,
    "end": _fit_end,
}


def verify_allocation(
    schedule: Schedule, allocation: RegisterAllocation
) -> None:
    """Independent overlap check: no register holds two overlapping arcs."""
    arcs, _ = build_arcs(schedule)
    by_register: dict[int, list[Arc]] = {}
    for arc in arcs:
        register = allocation.assignment[(arc.value, arc.instance)]
        by_register.setdefault(register, []).append(arc)
    for register, members in by_register.items():
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if first.overlaps(second):
                    raise AllocationError(
                        f"register {register} holds overlapping arcs "
                        f"{(first.value, first.instance)} and "
                        f"{(second.value, second.instance)}"
                    )
