"""Schedule verifier.

Every schedule produced anywhere in the library can be checked against the
three constraint families of modulo scheduling:

* **Completeness** — the start map must schedule exactly the graph's
  operations, each at a non-negative integral issue cycle.  A missing
  operation, a spurious entry for an operation the graph does not
  contain (the footprint a double-scheduling bug leaves after a rename
  or a stale merge), or a negative/fractional cycle is rejected before
  the arithmetic below could silently skip over it.
* **Dependences** — for every edge ``(u, v, delta)``:
  ``start[v] + delta * II >= start[u] + latency(u)``.
* **Resources** — the per-class reservations must be packable onto the
  class's unit instances.  For pipelined classes (one-cycle reservations)
  this is exactly "no kernel row exceeds the unit count".  For unpipelined
  classes the reservations are multi-row *circular arcs*, and packability
  is circular-arc colouring: first-fit replay (what the schedulers' MRT
  does) is order-dependent and can reject a packable set, so the verifier
  uses an exact backtracking assignment — a schedule is rejected only if
  **no** unit assignment exists.

The test-suite runs this on every schedule; experiment harnesses run it on
samples.  A violation raises :class:`ScheduleVerificationError` with a
message naming the offending edge or class.
"""

from __future__ import annotations

from repro.errors import ScheduleVerificationError
from repro.schedule.schedule import Schedule


def verify_schedule(schedule: Schedule) -> None:
    """Raise :class:`ScheduleVerificationError` on any violated constraint."""
    graph = schedule.graph
    ii = schedule.ii

    _verify_completeness(schedule)

    for edge in graph.edges():
        t_src = schedule.issue_cycle(edge.src)
        t_dst = schedule.issue_cycle(edge.dst)
        latency = graph.operation(edge.src).latency
        if t_dst + edge.distance * ii < t_src + latency:
            raise ScheduleVerificationError(
                f"{graph.name}: dependence {edge} violated — "
                f"{edge.src}@{t_src} (latency {latency}) feeds "
                f"{edge.dst}@{t_dst} with slack "
                f"{t_dst + edge.distance * ii - t_src - latency}"
            )

    machine = schedule.machine
    by_class: dict[str, list[tuple[int, int, str]]] = {}
    for op in graph.operations():
        unit = machine.class_for(op)
        span = machine.reservation_cycles(op)
        if span > ii:
            raise ScheduleVerificationError(
                f"{graph.name}: {op.name!r} reserves a {unit.name!r} unit "
                f"for {span} cycles, longer than II={ii}"
            )
        row = schedule.issue_cycle(op.name) % ii
        by_class.setdefault(unit.name, []).append((row, span, op.name))

    for unit in machine.unit_classes():
        arcs = by_class.get(unit.name, [])
        if not arcs:
            continue
        if not _packable(arcs, unit.count, ii):
            raise ScheduleVerificationError(
                f"{graph.name}: resource conflict — class {unit.name!r} "
                f"reservations cannot be packed onto {unit.count} unit(s) "
                f"at II={ii} (ops {[name for _, _, name in arcs]})"
            )


def _verify_completeness(schedule: Schedule) -> None:
    """Every graph operation scheduled exactly once, at a sane cycle.

    :class:`Schedule` normalises and checks at construction, but the
    start map is a plain mutable dict and many schedules are rebuilt
    from stored artifacts or hand-assembled in tests — so the verifier
    re-checks rather than trusting the constructor ran on this exact
    state.
    """
    graph = schedule.graph
    start = schedule.start
    missing = [name for name in graph.node_names() if name not in start]
    if missing:
        raise ScheduleVerificationError(
            f"{graph.name}: schedule omits operation(s) {sorted(missing)}"
        )
    spurious = [name for name in start if name not in graph]
    if spurious:
        raise ScheduleVerificationError(
            f"{graph.name}: schedule has entries for operation(s) "
            f"{sorted(spurious)} that are not in the graph"
        )
    for name, cycle in start.items():
        if isinstance(cycle, bool) or not isinstance(cycle, int):
            raise ScheduleVerificationError(
                f"{graph.name}: {name!r} has a non-integer issue cycle "
                f"{cycle!r}"
            )
        if cycle < 0:
            raise ScheduleVerificationError(
                f"{graph.name}: {name!r} is issued at negative cycle {cycle}"
            )


def _packable(arcs: list[tuple[int, int, str]], count: int, ii: int) -> bool:
    """Can the (row, span) circular arcs be packed onto *count* units?

    Pipelined classes (all spans 1) reduce to per-row counting.  For
    multi-row arcs an exact backtracking search assigns each arc a unit;
    arcs are ordered by decreasing span so the awkward ones place first,
    and unit symmetry is broken by never opening more than one fresh
    unit.  Class populations are small (a handful of divides/sqrt ops),
    so the search is effectively instant.
    """
    if all(span == 1 for _, span, _ in arcs):
        occupancy = [0] * ii
        for row, _, _ in arcs:
            occupancy[row] += 1
            if occupancy[row] > count:
                return False
        return True

    # Quick necessary condition before searching.
    occupancy = [0] * ii
    for row, span, _ in arcs:
        for offset in range(span):
            occupancy[(row + offset) % ii] += 1
    if max(occupancy) > count:
        return False

    ordered = sorted(arcs, key=lambda a: (-a[1], a[0]))
    units: list[list[bool]] = [[False] * ii for _ in range(count)]

    def fits(unit: list[bool], row: int, span: int) -> bool:
        return all(not unit[(row + offset) % ii] for offset in range(span))

    def mark(unit: list[bool], row: int, span: int, value: bool) -> None:
        for offset in range(span):
            unit[(row + offset) % ii] = value

    def search(index: int) -> bool:
        if index == len(ordered):
            return True
        row, span, _ = ordered[index]
        opened_fresh = False
        for unit in units:
            is_fresh = not any(unit)
            if is_fresh and opened_fresh:
                continue  # identical to the fresh unit already tried
            if is_fresh:
                opened_fresh = True
            if not fits(unit, row, span):
                continue
            mark(unit, row, span, True)
            if search(index + 1):
                return True
            mark(unit, row, span, False)
        return False

    return search(0)


def arcs_packable(
    arcs: list[tuple[int, int, str]], count: int, ii: int
) -> bool:
    """Public exact packability test for ``(row, span, name)`` arcs.

    Used by the MILP schedulers to validate extracted placements: their
    per-row occupancy constraints are a *relaxation* for unpipelined
    (multi-row) reservations — circular arcs can saturate every row of
    ``count`` units and still admit no unit assignment — so an exact
    check decides whether a solver placement is realizable.
    """
    return _packable(arcs, count, ii)


def is_valid(schedule: Schedule) -> bool:
    """Boolean convenience wrapper around :func:`verify_schedule`."""
    try:
        verify_schedule(schedule)
    except ScheduleVerificationError:
        return False
    return True
