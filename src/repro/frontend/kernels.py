"""A library of loop-language kernels.

Classic innermost loops — Livermore kernels, BLAS level-1 idioms, and the
control-flow/indirect-access shapes the Perfect Club population contains —
written in the mini language.  They serve three purposes: realistic
end-to-end tests of the front end, example inputs for the documentation,
and an independent sanity population for the scheduler comparisons (the
hand-built :mod:`repro.workloads.govindarajan` suite bypasses the front
end entirely).

Each entry is plain source text; compile with
:func:`repro.frontend.compile_source`.
"""

from __future__ import annotations

#: name → loop-language source.
KERNEL_SOURCES: dict[str, str] = {}


def _kernel(name: str, source: str) -> None:
    KERNEL_SOURCES[name] = source


_kernel(
    "daxpy",
    """
    ! BLAS: y := y + a*x
    real a
    real x(1000), y(1000)
    do i = 1, 1000
      y(i) = y(i) + a * x(i)
    end do
    """,
)

_kernel(
    "dot",
    """
    ! Reduction: s := s + x(i)*y(i)  (a recurrence on s)
    real s
    real x(1000), y(1000)
    do i = 1, 1000
      s = s + x(i) * y(i)
    end do
    """,
)

_kernel(
    "liv1_hydro",
    """
    ! Livermore kernel 1: hydro fragment
    real q, r, t
    real x(1000), y(1000), z(1000)
    do k = 1, 400
      x(k) = q + y(k) * (r * z(k + 10) + t * z(k + 11))
    end do
    """,
)

_kernel(
    "liv5_tridiag",
    """
    ! Livermore kernel 5: tri-diagonal elimination, below diagonal.
    ! x(i) depends on x(i-1): a first-order linear recurrence.
    real x(1000), y(1000), z(1000)
    do i = 2, 998
      x(i) = z(i) * (y(i) - x(i - 1))
    end do
    """,
)

_kernel(
    "liv7_eos",
    """
    ! Livermore kernel 7: equation of state fragment (wide, no recurrence)
    real q, r, t
    real u(1000), x(1000), y(1000), z(1000)
    do k = 1, 101
      x(k) = u(k) + r * (z(k) + r * y(k)) + t * (u(k + 3) + r * (u(k + 2) + r * u(k + 1)) + t * (u(k + 6) + q * (u(k + 5) + q * u(k + 4))))
    end do
    """,
)

_kernel(
    "liv11_partial_sum",
    """
    ! Livermore kernel 11: first sum (prefix-sum recurrence via scalar)
    real s
    real x(1000), y(1000)
    do k = 1, 1000
      s = s + y(k)
      x(k) = s
    end do
    """,
)

_kernel(
    "liv12_first_diff",
    """
    ! Livermore kernel 12: first difference
    real x(1000), y(1000)
    do k = 1, 999
      x(k) = y(k + 1) - y(k)
    end do
    """,
)

_kernel(
    "state_recurrence",
    """
    ! Second-order linear recurrence (two-deep loop-carried chain)
    real a, b
    real x(1000), f(1000)
    do i = 3, 1000
      x(i) = a * x(i - 1) + b * x(i - 2) + f(i)
    end do
    """,
)

_kernel(
    "normalize",
    """
    ! Divide-heavy: vector normalisation by a running magnitude
    real eps
    real v(1000), w(1000), m(1000)
    do i = 1, 1000
      w(i) = v(i) / (sqrt(m(i)) + eps)
    end do
    """,
)

_kernel(
    "predicated_clip",
    """
    ! Control flow: clip negative values (IF-converted to a select)
    real lo
    real x(1000), y(1000)
    do i = 1, 1000
      if (x(i) < lo) then
        y(i) = lo
      else
        y(i) = x(i)
      end if
    end do
    """,
)

_kernel(
    "predicated_sum",
    """
    ! Guarded reduction: only positive terms accumulate
    real s
    real x(1000)
    do i = 1, 1000
      if (x(i) > 0) then
        s = s + x(i)
      end if
    end do
    """,
)

_kernel(
    "nested_guards",
    """
    ! Nested conditionals: three-way band classification
    real lo, hi, sl, sm, sh
    real x(1000)
    do i = 1, 1000
      if (x(i) < lo) then
        sl = sl + x(i)
      else
        if (x(i) > hi) then
          sh = sh + x(i)
        else
          sm = sm + x(i)
        end if
      end if
    end do
    """,
)

_kernel(
    "gather",
    """
    ! Indirect addressing (SPICE-style gather): unknown dependences
    real a
    real ind(1000), x(1000), y(1000)
    do i = 1, 1000
      y(i) = y(i) + a * x(ind(i))
    end do
    """,
)

_kernel(
    "scatter",
    """
    ! Indirect store: conservative memory recurrence
    real w(1000), ind(1000), v(1000)
    do i = 1, 500
      w(ind(i)) = w(ind(i)) + v(i)
    end do
    """,
)

_kernel(
    "stencil3",
    """
    ! Three-point stencil, read-only neighbourhood
    real c0, c1, c2
    real u(1000), v(1000)
    do i = 2, 999
      v(i) = c0 * u(i - 1) + c1 * u(i) + c2 * u(i + 1)
    end do
    """,
)

_kernel(
    "wave_update",
    """
    ! In-place wave update: loop-carried through memory, distance 1
    real c
    real u(1000)
    do i = 2, 999
      u(i) = u(i) + c * (u(i - 1) - u(i))
    end do
    """,
)

_kernel(
    "horner",
    """
    ! Polynomial evaluation per element (long dependence chain, no
    ! recurrence across iterations)
    real c0, c1, c2, c3
    real x(1000), p(1000)
    do i = 1, 1000
      p(i) = ((c3 * x(i) + c2) * x(i) + c1) * x(i) + c0
    end do
    """,
)

_kernel(
    "matmul_inner",
    """
    ! Inner (k) loop of dense matrix multiply: a fixed-address
    ! accumulate through memory (the scalar-replacement opportunity a
    ! smarter front end would take; here it exercises the memory
    ! recurrence path).
    real r, q
    real a(64, 64), b(64, 64), c(64, 64)
    do k = 1, 64
      c(r, q) = c(r, q) + a(r, k) * b(k, q)
    end do
    """,
)

_kernel(
    "stencil5_2d",
    """
    ! Five-point 2-D stencil along one row (read-only neighbourhood)
    real c0, c1
    real u(100, 100), v(100, 100)
    do i = 2, 99
      v(i, 5) = c0 * u(i, 5) + c1 * (u(i - 1, 5) + u(i + 1, 5) + u(i, 4) + u(i, 6))
    end do
    """,
)

_kernel(
    "row_sweep",
    """
    ! Gauss-Seidel-style in-place row sweep: recurrence along the row
    real w
    real a(100, 100)
    do j = 2, 99
      a(7, j) = w * (a(7, j - 1) + a(7, j + 1))
    end do
    """,
)

_kernel(
    "red_black",
    """
    ! Red sweep of a red-black relaxation: stride 2 makes the i-1/i+1
    ! neighbour reads independent of the writes (different colour).
    real w
    real u(1000)
    do i = 3, 997, 2
      u(i) = w * (u(i - 1) + u(i + 1))
    end do
    """,
)

_kernel(
    "rms",
    """
    ! Root-mean-square style accumulation with sqrt output
    real s
    real x(1000), r(1000)
    do i = 1, 1000
      s = s + x(i) * x(i)
      r(i) = sqrt(s)
    end do
    """,
)

_kernel(
    "fir8",
    """
    ! 8-tap FIR filter: read-only window, wide multiply-accumulate tree
    real c0, c1, c2, c3, c4, c5, c6, c7
    real x(1000), y(1000)
    do i = 8, 999
      y(i) = c0 * x(i) + c1 * x(i - 1) + c2 * x(i - 2) + c3 * x(i - 3) + c4 * x(i - 4) + c5 * x(i - 5) + c6 * x(i - 6) + c7 * x(i - 7)
    end do
    """,
)

_kernel(
    "iir_biquad",
    """
    ! Direct-form-I biquad IIR filter: output recurrence through memory
    ! at distances 1 and 2, plus a read-only input window.
    real b0, b1, b2, a1, a2
    real x(1000), y(1000)
    do i = 3, 999
      y(i) = b0 * x(i) + b1 * x(i - 1) + b2 * x(i - 2) - a1 * y(i - 1) - a2 * y(i - 2)
    end do
    """,
)

_kernel(
    "banded_matvec",
    """
    ! Pentadiagonal (banded) matrix-vector product: five diagonals,
    ! read-only neighbourhood, resource bound.
    real d0(1000), d1(1000), d2(1000), d3(1000), d4(1000)
    real x(1000), y(1000)
    do i = 3, 997
      y(i) = d0(i) * x(i - 2) + d1(i) * x(i - 1) + d2(i) * x(i) + d3(i) * x(i + 1) + d4(i) * x(i + 2)
    end do
    """,
)

_kernel(
    "liv9_integrate",
    """
    ! Livermore kernel 9 fragment: integrate predictors — one long
    ! coefficient fan-in per point, no loop-carried recurrence.
    real dm, c0, c1, c2, c3, c4
    real px(1000), z0(1000), z1(1000), z2(1000), z3(1000), z4(1000)
    do i = 1, 1000
      px(i) = px(i) + dm * (c0 * z0(i) + c1 * z1(i) + c2 * z2(i) + c3 * z3(i) + c4 * z4(i))
    end do
    """,
)

_kernel(
    "liv10_diff",
    """
    ! Livermore kernel 10 fragment: difference predictors — a chain of
    ! scalar temporaries makes a deep intra-iteration dependence chain
    ! (and conservative scalar output dependences across iterations).
    real ar
    real px(1000), dm1(1000), dm2(1000), dm3(1000)
    real t1, t2, t3
    do i = 1, 1000
      t1 = ar - px(i)
      t2 = t1 - dm1(i)
      t3 = t2 - dm2(i)
      dm1(i) = t1
      dm2(i) = t2
      dm3(i) = t3
    end do
    """,
)

_kernel(
    "running_max",
    """
    ! Running maximum: an order-statistic recurrence through the max
    ! intrinsic, with the prefix written out per element.
    real m
    real x(1000), y(1000)
    do i = 1, 1000
      m = max(m, x(i))
      y(i) = m
    end do
    """,
)

_kernel(
    "abs_error_sum",
    """
    ! L1-error reduction: s = s + |x - y| (abs feeding an accumulator)
    real s
    real x(1000), y(1000)
    do i = 1, 1000
      s = s + abs(x(i) - y(i))
    end do
    """,
)

_kernel(
    "hypot",
    """
    ! Pointwise vector magnitude: sqrt-unit pressure, no recurrence
    real x(1000), y(1000), r(1000)
    do i = 1, 1000
      r(i) = sqrt(x(i) * x(i) + y(i) * y(i))
    end do
    """,
)

_kernel(
    "tridiag_backsub",
    """
    ! Tri-diagonal back substitution: the loop runs backward, so the
    ! x(i+1) read is a loop-carried recurrence at distance 1.
    real b(1000), y(1000), x(1000)
    do i = 998, 2, -1
      x(i) = y(i) - b(i) * x(i + 1)
    end do
    """,
)

_kernel(
    "gather_reduce",
    """
    ! Indirect gather feeding a reduction: unknown-address load inside
    ! a scalar accumulation recurrence.
    real s
    real w(1000), ind(1000)
    do i = 1, 1000
      s = s + w(ind(i))
    end do
    """,
)


def kernel_names() -> list[str]:
    """All bundled kernel names, definition order."""
    return list(KERNEL_SOURCES)


def kernel_source(name: str) -> str:
    """Source text of the named kernel."""
    try:
        return KERNEL_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNEL_SOURCES)}"
        ) from None
