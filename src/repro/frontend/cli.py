"""``hrms-compile`` — the front end as a command-line compiler driver.

Compiles a loop-language source file (or a bundled kernel) and emits any
of the pipeline's artefacts::

    hrms-compile loop.f90-ish                      # summary + schedule
    hrms-compile --kernel daxpy --emit dot         # Graphviz DOT
    hrms-compile loop.txt --emit lifetimes         # Figure-2b chart
    hrms-compile loop.txt --emit kernel            # MVE-unrolled kernel
    hrms-compile loop.txt --emit rotating          # rotating-file kernel
    hrms-compile loop.txt --scheduler topdown --machine govindarajan

The default machine/profile pair is the paper's Section 4.2
configuration; ``--machine govindarajan`` selects Section 4.1's.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.frontend.kernels import kernel_names, kernel_source
from repro.frontend.pipeline import compile_source
from repro.frontend.profile import (
    govindarajan_profile,
    perfect_club_profile,
)
from repro.machine.configs import (
    govindarajan_machine,
    perfect_club_machine,
)
from repro.mii.analysis import compute_mii
from repro.schedule.buffers import buffer_requirements
from repro.schedule.codegen import (
    generate_rotating_kernel,
    generate_unrolled_kernel,
)
from repro.schedule.maxlive import max_live
from repro.schedule.verify import verify_schedule
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.viz import graph_to_dot, lifetime_chart, schedule_table

EMITS = ("summary", "schedule", "lifetimes", "dot", "kernel", "rotating")

_MACHINES = {
    "perfect": (perfect_club_machine, perfect_club_profile),
    "govindarajan": (govindarajan_machine, govindarajan_profile),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-compile",
        description="Compile loop-language source and emit artefacts.",
    )
    source_group = parser.add_mutually_exclusive_group(required=True)
    source_group.add_argument(
        "path", nargs="?", help="loop-language source file"
    )
    source_group.add_argument(
        "--kernel",
        choices=kernel_names(),
        help="compile a bundled kernel instead of a file",
    )
    parser.add_argument(
        "--emit",
        choices=EMITS,
        default="summary",
        help="artefact to print (default: summary)",
    )
    parser.add_argument(
        "--scheduler",
        choices=available_schedulers(),
        default="hrms",
        help="scheduling method; 'portfolio' races the registry and "
             "keeps the policy winner",
    )
    from repro.portfolio.policies import policy_names

    parser.add_argument(
        "--policy",
        choices=policy_names(),
        default=None,
        help="portfolio selection policy (--scheduler portfolio only)",
    )
    parser.add_argument(
        "--machine",
        choices=sorted(_MACHINES),
        default="perfect",
        help="machine + latency profile (default: perfect)",
    )
    parser.add_argument(
        "--trips", type=int, default=None,
        help="override the loop trip count",
    )
    args = parser.parse_args(argv)
    if args.policy is not None and args.scheduler != "portfolio":
        parser.error("--policy only applies with --scheduler portfolio")

    if args.kernel:
        source = kernel_source(args.kernel)
        name = args.kernel
    else:
        path = Path(args.path)
        if not path.exists():
            print(f"hrms-compile: no such file: {path}", file=sys.stderr)
            return 2
        source = path.read_text()
        name = path.stem

    machine_factory, profile_factory = _MACHINES[args.machine]
    machine = machine_factory()

    try:
        loop = compile_source(
            source, name=name, profile=profile_factory(), trips=args.trips
        )
        if args.emit == "dot":
            print(graph_to_dot(loop.graph), end="")
            return 0
        analysis = compute_mii(loop.graph, machine)
        kwargs = {"policy": args.policy} if args.policy is not None else {}
        scheduler = make_scheduler(args.scheduler, **kwargs)
        schedule = scheduler.schedule(loop.graph, machine, analysis)
        verify_schedule(schedule)
    except ReproError as error:
        print(f"hrms-compile: {error}", file=sys.stderr)
        return 1

    if args.emit == "summary":
        print(
            f"{name}: {len(loop.graph)} ops, "
            f"{loop.graph.edge_count()} edges, "
            f"{loop.invariants} invariants, {loop.iterations} iterations"
        )
        print(
            f"MII = {analysis.mii} "
            f"(res {analysis.resmii}, rec {analysis.recmii}); "
            f"{args.scheduler} II = {schedule.ii}, "
            f"MaxLive = {max_live(schedule)}, "
            f"buffers = {buffer_requirements(schedule)}"
        )
        race = getattr(scheduler, "last_result", None)
        if race is not None:
            scoreboard = ", ".join(
                f"{o.name} {o.status}"
                + (f" (II {o.score.ii}, ML {o.score.maxlive})" if o.score else "")
                for o in race.outcomes
            )
            print(
                f"portfolio winner = {race.winner} "
                f"(policy {race.policy}): {scoreboard}"
            )
    elif args.emit == "schedule":
        print(schedule_table(schedule))
    elif args.emit == "lifetimes":
        print(lifetime_chart(schedule))
    elif args.emit == "kernel":
        print(generate_unrolled_kernel(schedule).render())
    elif args.emit == "rotating":
        print(generate_rotating_kernel(schedule).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
