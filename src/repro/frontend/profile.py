"""Lowering profiles: how language operations map onto machine opclasses.

A profile pairs each abstract operation kind the language can express with
the functional-unit class and latency it takes on a target machine.  The
two presets mirror the paper's two studies (Sections 4.1 and 4.2); custom
machines can define their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ops import FADD, FDIV, FMUL, FSQRT, MEM


@dataclass(frozen=True)
class OpSpec:
    """Opclass and latency for one abstract operation kind."""

    opclass: str
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(
                f"latency must be >= 1, got {self.latency} "
                f"for class {self.opclass!r}"
            )


@dataclass(frozen=True)
class LoweringProfile:
    """Operation-kind → (opclass, latency) table used by the lowering pass.

    ``compare``, ``logic`` and ``select`` are the predication operations
    introduced by IF-conversion; the paper's FP-only machine models run
    them on the adder class.
    """

    name: str
    load: OpSpec
    store: OpSpec
    add: OpSpec
    mul: OpSpec
    div: OpSpec
    sqrt: OpSpec
    compare: OpSpec
    logic: OpSpec
    select: OpSpec


def govindarajan_profile() -> LoweringProfile:
    """Section 4.1's latencies: add/sub/store 1, mul/load 2, div 17.

    The Table-1 machine has no square-root unit, so ``sqrt`` maps to the
    divider.
    """
    return LoweringProfile(
        name="govindarajan",
        load=OpSpec(MEM, 2),
        store=OpSpec(MEM, 1),
        add=OpSpec(FADD, 1),
        mul=OpSpec(FMUL, 2),
        div=OpSpec(FDIV, 17),
        sqrt=OpSpec(FDIV, 17),
        compare=OpSpec(FADD, 1),
        logic=OpSpec(FADD, 1),
        select=OpSpec(FADD, 1),
    )


def perfect_club_profile() -> LoweringProfile:
    """Section 4.2's latencies: store 1, load 2, add/mul 4, div 17, sqrt 30."""
    return LoweringProfile(
        name="perfect-club",
        load=OpSpec(MEM, 2),
        store=OpSpec(MEM, 1),
        add=OpSpec(FADD, 4),
        mul=OpSpec(FMUL, 4),
        div=OpSpec(FDIV, 17),
        sqrt=OpSpec(FSQRT, 30),
        compare=OpSpec(FADD, 4),
        logic=OpSpec(FADD, 1),
        select=OpSpec(FADD, 1),
    )
