"""The front-end driver: source text → schedulable :class:`Loop`.

This is the public entry point of :mod:`repro.frontend`::

    from repro.frontend import compile_source

    loop = compile_source('''
        real a
        real x(1000), y(1000)
        do i = 1, 1000
          y(i) = y(i) + a * x(i)
        end do
    ''', name="daxpy")

    schedule = HRMSScheduler().schedule(loop.graph, machine)

The pipeline stages — lex, parse, semantic analysis, IF-conversion,
dependence analysis, lowering — are each importable on their own for
testing and for tools that want intermediate results.
"""

from __future__ import annotations

from repro.frontend.lowering import LoweredLoop, lower_program
from repro.frontend.nodes import Program
from repro.frontend.parser import parse_program
from repro.frontend.profile import (
    LoweringProfile,
    govindarajan_profile,
    perfect_club_profile,
)
from repro.workloads.loops import Loop

#: Trip count assumed when the loop bounds are not literal.
DEFAULT_TRIPS = 100


def profile_by_name(name: str | None) -> LoweringProfile:
    """Resolve a lowering profile from a wire-safe name.

    The scheduling service accepts compile-from-source jobs whose JSON
    body names the profile; ``None`` (or an omitted field) means the
    Perfect-Club default that :func:`compile_source` already assumes.
    """
    from repro.errors import FrontendError

    if name is None:
        return perfect_club_profile()
    profiles = {
        "perfect_club": perfect_club_profile,
        "perfect-club": perfect_club_profile,
        "govindarajan": govindarajan_profile,
    }
    try:
        return profiles[name]()
    except KeyError:
        raise FrontendError(
            f"unknown lowering profile {name!r}; "
            f"available: {', '.join(sorted(set(profiles)))}"
        ) from None


def compile_to_lowered(
    source: str,
    name: str = "loop",
    profile: LoweringProfile | None = None,
) -> LoweredLoop:
    """Compile *source* and return the lowered form (graph + metadata)."""
    profile = profile or perfect_club_profile()
    program = parse_program(source)
    return lower_program(program, profile, source=source, name=name)


def compile_source(
    source: str,
    name: str = "loop",
    profile: LoweringProfile | None = None,
    trips: int | None = None,
) -> Loop:
    """Compile *source* into a :class:`~repro.workloads.loops.Loop`.

    *trips* overrides the trip count extracted from literal loop bounds
    (and is required knowledge for the dynamic experiments when the bounds
    are symbolic — :data:`DEFAULT_TRIPS` is assumed otherwise).
    """
    lowered = compile_to_lowered(source, name=name, profile=profile)
    iterations = trips or lowered.trip_count or DEFAULT_TRIPS
    return Loop(
        graph=lowered.graph,
        iterations=iterations,
        invariants=lowered.invariants,
        source=f"frontend:{name}",
    )


def compile_program(
    program: Program,
    name: str = "loop",
    profile: LoweringProfile | None = None,
    trips: int | None = None,
) -> Loop:
    """Like :func:`compile_source` for an already-parsed :class:`Program`."""
    profile = profile or perfect_club_profile()
    lowered = lower_program(program, profile, name=name)
    iterations = trips or lowered.trip_count or DEFAULT_TRIPS
    return Loop(
        graph=lowered.graph,
        iterations=iterations,
        invariants=lowered.invariants,
        source=f"frontend:{name}",
    )


__all__ = [
    "DEFAULT_TRIPS",
    "compile_source",
    "compile_to_lowered",
    "compile_program",
    "govindarajan_profile",
    "perfect_club_profile",
    "profile_by_name",
]
