"""Lexer for the loop language.

The language is line-oriented (statements end at a newline, like Fortran),
so newlines are significant tokens.  Comments run from ``!`` to the end of
the line.  Numbers may be integers or simple decimals (``1``, ``0.5``,
``2.``); identifiers are ``[A-Za-z_][A-Za-z0-9_]*`` and are
case-sensitive.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.source import Location, format_diagnostic
from repro.frontend.tokens import KEYWORDS, OPERATORS, Token, TokenKind


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens; raises :class:`LexError` on bad input.

    Consecutive newlines collapse into one NEWLINE token and a trailing
    NEWLINE is guaranteed before EOF, which simplifies the parser's
    end-of-statement handling.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    text = source

    def location() -> Location:
        return Location(line, column)

    def push_newline() -> None:
        if tokens and tokens[-1].kind is TokenKind.NEWLINE:
            return
        tokens.append(Token(TokenKind.NEWLINE, "\n", location()))

    while index < len(text):
        char = text[index]
        if char == "\n":
            push_newline()
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "!":
            while index < len(text) and text[index] != "\n":
                index += 1
                column += 1
            continue
        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < len(text) and (
                text[index].isalnum() or text[index] == "_"
            ):
                index += 1
                column += 1
            word = text[start:index]
            kind = (
                TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            )
            tokens.append(Token(kind, word, Location(line, start_column)))
            continue
        if char.isdigit() or (
            char == "."
            and index + 1 < len(text)
            and text[index + 1].isdigit()
        ):
            start = index
            start_column = column
            seen_dot = False
            while index < len(text) and (
                text[index].isdigit() or (text[index] == "." and not seen_dot)
            ):
                if text[index] == ".":
                    seen_dot = True
                index += 1
                column += 1
            tokens.append(
                Token(
                    TokenKind.NUMBER,
                    text[start:index],
                    Location(line, start_column),
                )
            )
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", location()))
            index += 1
            column += 1
            continue
        if char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", location()))
            index += 1
            column += 1
            continue
        if char == ",":
            tokens.append(Token(TokenKind.COMMA, ",", location()))
            index += 1
            column += 1
            continue
        operator = _match_operator(text, index)
        if operator is not None:
            tokens.append(Token(TokenKind.OPERATOR, operator, location()))
            index += len(operator)
            column += len(operator)
            continue
        raise LexError(
            format_diagnostic(
                source, location(), f"unexpected character {char!r}"
            )
        )

    push_newline()
    tokens.append(Token(TokenKind.EOF, "", location()))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    """The longest operator starting at *index*, or ``None``."""
    for symbol in OPERATORS:
        if text.startswith(symbol, index):
            return symbol
    return None
