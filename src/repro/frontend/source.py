"""Source locations and diagnostic formatting for the loop language.

Every token and AST node carries a :class:`Location` so that lexer, parser
and semantic errors can point at the offending source line with a caret,
the way a real compiler front end does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """A (line, column) position in a source string; both are 1-based."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: Location used for nodes synthesised by compiler passes (no source text).
SYNTHETIC = Location(0, 0)


def format_diagnostic(source: str, location: Location, message: str) -> str:
    """Render *message* with the source line and a caret under the column.

    Locations outside the source (e.g. :data:`SYNTHETIC`) degrade to the
    bare message.
    """
    lines = source.splitlines()
    if not 1 <= location.line <= len(lines):
        return message
    text = lines[location.line - 1]
    caret_column = max(1, min(location.column, len(text) + 1))
    caret = " " * (caret_column - 1) + "^"
    return (
        f"{message}\n"
        f"  line {location.line}: {text}\n"
        f"  {' ' * len(f'line {location.line}:')}{caret}"
    )
