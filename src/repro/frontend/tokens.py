"""Token definitions for the loop language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.source import Location


class TokenKind(enum.Enum):
    """Lexical categories of the loop language."""

    IDENT = "identifier"
    NUMBER = "number"
    KEYWORD = "keyword"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    NEWLINE = "newline"
    EOF = "end of input"


#: Reserved words; identifiers may not use them.
KEYWORDS = frozenset(
    {
        "real",
        "do",
        "end",
        "if",
        "then",
        "else",
        "and",
        "or",
        "not",
    }
)

#: Multi-character operators, longest first so the lexer is greedy.
OPERATORS = (
    "<=",
    ">=",
    "==",
    "/=",  # Fortran-style not-equal ('!' opens a comment)
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "=",
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source location."""

    kind: TokenKind
    text: str
    location: Location

    def is_keyword(self, word: str) -> bool:
        """``True`` when this token is the keyword *word*."""
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_operator(self, symbol: str) -> bool:
        """``True`` when this token is the operator *symbol*."""
        return self.kind is TokenKind.OPERATOR and self.text == symbol

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value} {self.text!r} at {self.location}"
