"""Recursive-descent parser for the loop language.

Grammar (newline-terminated statements, ``!`` comments)::

    program   := decl* doloop
    decl      := "real" declitem ("," declitem)*
    declitem  := IDENT [ "(" NUMBER ")" ]        -- extent => array
    doloop    := "do" IDENT "=" expr "," expr NL stmt* "end" ["do"]
    stmt      := assign | ifstmt
    assign    := lvalue "=" expr NL
    lvalue    := IDENT [ "(" expr ")" ]
    ifstmt    := "if" "(" cond ")" "then" NL stmt*
                 [ "else" NL stmt* ] "end" ["if"] NL
    cond      := andcond ( "or" andcond )*
    andcond   := notcond ( "and" notcond )*
    notcond   := "not" notcond | "(" cond ")" | compare
    compare   := expr RELOP expr
    expr      := term ( ("+"|"-") term )*
    term      := factor ( ("*"|"/") factor )*
    factor    := "-" factor | primary
    primary   := NUMBER | IDENT [ "(" args ")" ] | "(" expr ")"

An ``IDENT(...)`` primary is an intrinsic call when the name is one of
:data:`~repro.frontend.nodes.INTRINSICS`, otherwise an array reference;
the semantic pass later checks that array references name declared
arrays.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParseError
from repro.frontend.lexer import tokenize
from repro.frontend.nodes import (
    INTRINSICS,
    ArrayDecl,
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Cond,
    DoLoop,
    Expr,
    IfStmt,
    NotOp,
    Num,
    Program,
    ScalarDecl,
    Stmt,
    UnaryOp,
    VarRef,
)
from repro.frontend.source import format_diagnostic
from repro.frontend.tokens import Token, TokenKind

#: Relational operators accepted in conditions (``/=`` is not-equal).
RELOPS = frozenset({"<", "<=", ">", ">=", "==", "/="})


def parse_program(source: str) -> Program:
    """Parse *source* into a :class:`Program`."""
    return _Parser(source).parse_program()


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # Cursor primitives
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._current
        return ParseError(
            format_diagnostic(self._source, token.location, message)
        )

    def _expect_operator(self, symbol: str) -> Token:
        if not self._current.is_operator(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_kind(self, kind: TokenKind) -> Token:
        if self._current.kind is not kind:
            raise self._error(f"expected {kind.value}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word!r}")
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._current.kind is TokenKind.NEWLINE:
            self._advance()

    def _end_statement(self) -> None:
        if self._current.kind is TokenKind.EOF:
            return
        if self._current.kind is not TokenKind.NEWLINE:
            raise self._error("expected end of statement")
        self._skip_newlines()

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        scalars: list[ScalarDecl] = []
        arrays: list[ArrayDecl] = []
        self._skip_newlines()
        while self._current.is_keyword("real"):
            scalar_decl, array_decl = self._parse_decl()
            if scalar_decl.names:
                scalars.append(scalar_decl)
            if array_decl.names:
                arrays.append(array_decl)
        if not self._current.is_keyword("do"):
            raise self._error("expected a 'do' loop")
        loop = self._parse_doloop()
        self._skip_newlines()
        if self._current.kind is not TokenKind.EOF:
            raise self._error("unexpected text after the loop")
        return Program(tuple(scalars), tuple(arrays), loop)

    def _parse_decl(self) -> tuple[ScalarDecl, ArrayDecl]:
        location = self._expect_keyword("real").location
        scalar_names: list[str] = []
        array_names: list[str] = []
        array_shapes: list[tuple[int, ...]] = []
        while True:
            name = self._expect_kind(TokenKind.IDENT)
            if self._current.kind is TokenKind.LPAREN:
                self._advance()
                extents = [self._parse_extent()]
                while self._current.kind is TokenKind.COMMA:
                    self._advance()
                    extents.append(self._parse_extent())
                self._expect_kind(TokenKind.RPAREN)
                array_names.append(name.text)
                array_shapes.append(tuple(extents))
            else:
                scalar_names.append(name.text)
            if self._current.kind is not TokenKind.COMMA:
                break
            self._advance()
        self._end_statement()
        return (
            ScalarDecl(tuple(scalar_names), location),
            ArrayDecl(tuple(array_names), tuple(array_shapes), location),
        )

    def _parse_extent(self) -> int:
        size = self._expect_kind(TokenKind.NUMBER)
        extent = Fraction(size.text)
        if extent.denominator != 1 or extent < 1:
            raise self._error(
                "array extent must be a positive integer", size
            )
        return int(extent)

    def _parse_doloop(self) -> DoLoop:
        location = self._expect_keyword("do").location
        var = self._expect_kind(TokenKind.IDENT).text
        self._expect_operator("=")
        lower = self._parse_expr()
        self._expect_kind(TokenKind.COMMA)
        upper = self._parse_expr()
        step = 1
        if self._current.kind is TokenKind.COMMA:
            self._advance()
            step = self._parse_step()
        self._end_statement()
        body = self._parse_stmts()
        self._expect_keyword("end")
        if self._current.is_keyword("do"):
            self._advance()
        self._end_statement()
        return DoLoop(var, lower, upper, tuple(body), step, location)

    def _parse_step(self) -> int:
        """A loop step: a nonzero integer literal, optionally negated."""
        negate = False
        if self._current.is_operator("-"):
            self._advance()
            negate = True
        token = self._expect_kind(TokenKind.NUMBER)
        value = Fraction(token.text)
        if value.denominator != 1 or value == 0:
            raise self._error(
                "loop step must be a nonzero integer literal", token
            )
        step = int(value)
        return -step if negate else step

    def _parse_stmts(self) -> list[Stmt]:
        stmts: list[Stmt] = []
        self._skip_newlines()
        while not self._current.is_keyword("end") and not self._current.is_keyword("else"):
            if self._current.kind is TokenKind.EOF:
                raise self._error("unterminated block: expected 'end'")
            stmts.append(self._parse_stmt())
            self._skip_newlines()
        return stmts

    def _parse_stmt(self) -> Stmt:
        if self._current.is_keyword("if"):
            return self._parse_if()
        return self._parse_assign()

    def _parse_assign(self) -> Assign:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise self._error("expected a statement")
        self._advance()
        target: VarRef | ArrayRef
        if self._current.kind is TokenKind.LPAREN:
            self._advance()
            subscripts = self._parse_subscripts()
            target = ArrayRef(token.text, subscripts, token.location)
        else:
            target = VarRef(token.text, token.location)
        self._expect_operator("=")
        value = self._parse_expr()
        self._end_statement()
        return Assign(target, value, token.location)

    def _parse_if(self) -> IfStmt:
        location = self._expect_keyword("if").location
        self._expect_kind(TokenKind.LPAREN)
        cond = self._parse_cond()
        self._expect_kind(TokenKind.RPAREN)
        self._expect_keyword("then")
        self._end_statement()
        then_body = self._parse_stmts()
        else_body: list[Stmt] = []
        if self._current.is_keyword("else"):
            self._advance()
            self._end_statement()
            else_body = self._parse_stmts()
        self._expect_keyword("end")
        if self._current.is_keyword("if"):
            self._advance()
        self._end_statement()
        return IfStmt(cond, tuple(then_body), tuple(else_body), location)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _parse_cond(self) -> Cond:
        cond = self._parse_and_cond()
        while self._current.is_keyword("or"):
            location = self._advance().location
            rhs = self._parse_and_cond()
            cond = BoolOp("or", cond, rhs, location)
        return cond

    def _parse_and_cond(self) -> Cond:
        cond = self._parse_not_cond()
        while self._current.is_keyword("and"):
            location = self._advance().location
            rhs = self._parse_not_cond()
            cond = BoolOp("and", cond, rhs, location)
        return cond

    def _parse_not_cond(self) -> Cond:
        if self._current.is_keyword("not"):
            location = self._advance().location
            return NotOp(self._parse_not_cond(), location)
        if self._current.kind is TokenKind.LPAREN and self._is_paren_cond():
            self._advance()
            cond = self._parse_cond()
            self._expect_kind(TokenKind.RPAREN)
            return cond
        return self._parse_compare()

    def _is_paren_cond(self) -> bool:
        """Disambiguate ``(cond)`` from a parenthesised arithmetic operand.

        Scan forward from the current ``(`` to its matching ``)``; if a
        relational operator or boolean keyword appears at depth >= 1 the
        parenthesis opens a condition.
        """
        depth = 0
        for token in self._tokens[self._index:]:
            if token.kind is TokenKind.LPAREN:
                depth += 1
            elif token.kind is TokenKind.RPAREN:
                depth -= 1
                if depth == 0:
                    return False
            elif depth >= 1:
                if token.kind is TokenKind.OPERATOR and token.text in RELOPS:
                    return True
                if token.kind is TokenKind.KEYWORD and token.text in (
                    "and",
                    "or",
                    "not",
                ):
                    return True
            if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
                return False
        return False

    def _parse_compare(self) -> Compare:
        lhs = self._parse_expr()
        token = self._current
        if token.kind is not TokenKind.OPERATOR or token.text not in RELOPS:
            raise self._error("expected a relational operator")
        self._advance()
        rhs = self._parse_expr()
        return Compare(token.text, lhs, rhs, token.location)

    # ------------------------------------------------------------------
    # Arithmetic expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        expr = self._parse_term()
        while self._current.is_operator("+") or self._current.is_operator("-"):
            token = self._advance()
            rhs = self._parse_term()
            expr = BinOp(token.text, expr, rhs, token.location)
        return expr

    def _parse_term(self) -> Expr:
        expr = self._parse_factor()
        while self._current.is_operator("*") or self._current.is_operator("/"):
            token = self._advance()
            rhs = self._parse_factor()
            expr = BinOp(token.text, expr, rhs, token.location)
        return expr

    def _parse_factor(self) -> Expr:
        if self._current.is_operator("-"):
            token = self._advance()
            return UnaryOp("-", self._parse_factor(), token.location)
        if self._current.is_operator("+"):
            self._advance()
            return self._parse_factor()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Num(Fraction(token.text), token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect_kind(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._current.kind is not TokenKind.LPAREN:
                return VarRef(token.text, token.location)
            self._advance()
            if token.text in INTRINSICS:
                args = [self._parse_expr()]
                while self._current.kind is TokenKind.COMMA:
                    self._advance()
                    args.append(self._parse_expr())
                self._expect_kind(TokenKind.RPAREN)
                arity = INTRINSICS[token.text]
                if len(args) != arity:
                    raise self._error(
                        f"{token.text} takes {arity} argument"
                        f"{'s' if arity != 1 else ''}, got {len(args)}",
                        token,
                    )
                return Call(token.text, tuple(args), token.location)
            subscripts = self._parse_subscripts()
            return ArrayRef(token.text, subscripts, token.location)
        raise self._error("expected an expression")

    def _parse_subscripts(self) -> tuple[Expr, ...]:
        """Comma-separated subscript list; the ``(`` is already consumed."""
        subscripts = [self._parse_expr()]
        while self._current.kind is TokenKind.COMMA:
            self._advance()
            subscripts.append(self._parse_expr())
        self._expect_kind(TokenKind.RPAREN)
        return tuple(subscripts)
