"""Semantic analysis for the loop language.

Checks the rules the grammar cannot express and classifies every scalar
the way the paper's register model needs:

* **loop variants** — scalars assigned somewhere in the body; their values
  flow iteration to iteration (a read before the first in-iteration write
  is a loop-carried use of the previous iteration's final value);
* **loop invariants** — scalars read but never assigned; each occupies one
  register for the whole execution (Section 2 of the paper) and is counted
  by :class:`~repro.workloads.loops.Loop`.

The pass also extracts the loop trip count when the bounds are literal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.frontend.nodes import (
    ArrayRef,
    Assign,
    Call,
    DoLoop,
    IfStmt,
    Num,
    Program,
    VarRef,
    walk_cond_exprs,
    walk_expr,
    walk_stmts,
)
from repro.frontend.source import Location, format_diagnostic


@dataclass(frozen=True)
class SemanticInfo:
    """Facts the later passes need, computed once."""

    #: Scalars assigned in the body, first-assignment order.
    variant_scalars: tuple[str, ...]
    #: Scalars read but never assigned, first-read order.
    invariant_scalars: tuple[str, ...]
    #: Declared array names.
    arrays: tuple[str, ...]
    #: Loop trip count when both bounds are integer literals, else ``None``.
    trip_count: int | None
    #: The loop induction variable.
    loop_var: str
    #: The loop stride (``do i = lo, hi, step``); nonzero.
    step: int = 1


def analyze(program: Program, source: str = "") -> SemanticInfo:
    """Validate *program*; raises :class:`SemanticError` on violations."""
    checker = _Checker(program, source)
    return checker.run()


class _Checker:
    def __init__(self, program: Program, source: str) -> None:
        self._program = program
        self._source = source
        self._scalars = set(program.scalar_names())
        self._arrays = set(program.array_names())
        self._ranks = {
            name: len(shape)
            for name, shape in program.array_shapes().items()
        }

    def _error(self, message: str, location: Location) -> SemanticError:
        return SemanticError(
            format_diagnostic(self._source, location, message)
        )

    # ------------------------------------------------------------------
    def run(self) -> SemanticInfo:
        program = self._program
        loop = program.loop
        self._check_declarations_disjoint()
        if loop.var in self._scalars or loop.var in self._arrays:
            raise self._error(
                f"loop variable {loop.var!r} shadows a declaration",
                loop.location,
            )
        for bound in (loop.lower, loop.upper):
            for expr in walk_expr(bound):
                if isinstance(expr, ArrayRef):
                    raise self._error(
                        "loop bounds must not reference arrays",
                        expr.location,
                    )
                if isinstance(expr, VarRef) and expr.name == loop.var:
                    raise self._error(
                        "loop bounds must not use the loop variable",
                        expr.location,
                    )

        assigned: list[str] = []
        reads: list[str] = []
        self._visit_stmts(loop, walk_stmts(loop.body), assigned, reads)

        variant = tuple(dict.fromkeys(assigned))
        invariant = tuple(
            name
            for name in dict.fromkeys(reads)
            if name not in variant and name != loop.var
        )
        return SemanticInfo(
            variant_scalars=variant,
            invariant_scalars=invariant,
            arrays=tuple(self._program.array_names()),
            trip_count=_trip_count(loop),
            loop_var=loop.var,
            step=loop.step,
        )

    def _check_declarations_disjoint(self) -> None:
        seen: set[str] = set()
        for decl in self._program.scalars + self._program.arrays:
            for name in decl.names:
                if name in seen:
                    raise self._error(
                        f"{name!r} declared more than once", decl.location
                    )
                seen.add(name)

    # ------------------------------------------------------------------
    def _visit_stmts(self, loop: DoLoop, stmts, assigned, reads) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                self._visit_assign(loop, stmt, assigned, reads)
            elif isinstance(stmt, IfStmt):
                for expr in walk_cond_exprs(stmt.cond):
                    self._visit_expr_node(loop, expr, reads)

    def _visit_assign(self, loop: DoLoop, stmt: Assign, assigned, reads):
        target = stmt.target
        if isinstance(target, VarRef):
            if target.name == loop.var:
                raise self._error(
                    "the loop variable must not be assigned",
                    target.location,
                )
            if target.name in self._arrays:
                raise self._error(
                    f"array {target.name!r} assigned without a subscript",
                    target.location,
                )
            if target.name not in self._scalars:
                raise self._error(
                    f"undeclared scalar {target.name!r}", target.location
                )
            assigned.append(target.name)
        else:
            self._check_array_ref(target)
            for subscript in target.subscripts:
                for expr in walk_expr(subscript):
                    self._visit_expr_node(loop, expr, reads)
        for expr in walk_expr(stmt.value):
            self._visit_expr_node(loop, expr, reads)

    def _visit_expr_node(self, loop: DoLoop, expr, reads) -> None:
        if isinstance(expr, VarRef):
            name = expr.name
            if name == loop.var:
                return
            if name in self._arrays:
                raise self._error(
                    f"array {name!r} used without a subscript",
                    expr.location,
                )
            if name not in self._scalars:
                raise self._error(
                    f"undeclared scalar {name!r}", expr.location
                )
            reads.append(name)
        elif isinstance(expr, ArrayRef):
            self._check_array_ref(expr)
        elif isinstance(expr, Call):
            # Arity was checked by the parser; nothing further here.
            pass

    def _check_array_ref(self, ref) -> None:
        if ref.name not in self._arrays:
            raise self._error(
                f"undeclared array {ref.name!r}", ref.location
            )
        declared = self._ranks[ref.name]
        if ref.rank != declared:
            raise self._error(
                f"array {ref.name!r} has rank {declared}, "
                f"referenced with {ref.rank} subscript"
                f"{'s' if ref.rank != 1 else ''}",
                ref.location,
            )


def _trip_count(loop: DoLoop) -> int | None:
    """``floor((upper - lower) / step) + 1`` for integer-literal bounds."""
    if not isinstance(loop.lower, Num) or not isinstance(loop.upper, Num):
        return None
    lower, upper = loop.lower.value, loop.upper.value
    if lower.denominator != 1 or upper.denominator != 1:
        return None
    trips = (int(upper) - int(lower)) // loop.step + 1
    return trips if trips >= 1 else None
