"""Array dependence tests for the lowering pass.

Memory references are collected in lowering order; each carries the
affine form of every subscript (``None`` per dimension when that
subscript resists analysis — indirect accesses like ``a(ind(i))``).
Pairs touching the same array with at least one write are tested with
the classic per-dimension **SIV** framework:

* a dimension with matching affine shape (equal loop-variable
  coefficient and symbolic part) either *constrains* the dependence
  distance (``d = (c_early - c_late) / coef`` when ``coef ≠ 0``), is
  *unconstraining* (``coef = 0`` with equal constants — the same plane
  every iteration), or *disproves* the dependence (``coef = 0`` with
  different constants, or a non-integer / inconsistent distance);
* a dimension with mismatched shapes or an unanalysable subscript makes
  the pair **conservative**: a distance-0 edge in program order plus a
  distance-1 edge in the reverse direction — the standard "unknown
  dependence" pair that keeps every execution order legal at the cost
  of a memory recurrence.

A dependence exists only when *all* constrained dimensions agree on one
integer distance.  All resulting edges are
:class:`~repro.graph.edges.DependenceKind.MEMORY`: they constrain the
schedule but carry no register value.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.frontend.affine import AffineForm
from repro.graph.edges import DependenceKind, Edge


@dataclass(frozen=True)
class MemoryRef:
    """One array access made by the loop body."""

    array: str
    #: Per-dimension affine forms; ``None`` entries are unanalysable.
    dims: tuple[AffineForm | None, ...]
    is_write: bool
    node: str
    order: int


def dependence_edges(refs: list[MemoryRef]) -> list[Edge]:
    """All memory-ordering edges implied by *refs*.

    References are assumed to be listed in program (lowering) order;
    ``order`` breaks ties for same-iteration direction.
    """
    edges: list[Edge] = []
    for i, first in enumerate(refs):
        if first.is_write and _writes_fixed_address(first):
            # A store to a loop-invariant address must stay ordered with
            # its own next-iteration instance.
            edges.append(
                Edge(first.node, first.node, 1, DependenceKind.MEMORY)
            )
        for second in refs[i + 1:]:
            if first.array != second.array:
                continue
            if not first.is_write and not second.is_write:
                continue
            if first.node == second.node:
                continue
            edges.extend(_pair_edges(first, second))
    return edges


def _writes_fixed_address(ref: MemoryRef) -> bool:
    return all(
        dim is not None and dim.coef == 0 for dim in ref.dims
    )


def _pair_edges(early: MemoryRef, late: MemoryRef) -> list[Edge]:
    """Edges between one earlier and one later reference (program order)."""
    if len(early.dims) != len(late.dims):
        # Rank mismatch should not pass semantics; treat conservatively.
        return _conservative_pair(early, late)

    # Per-dimension analysis: collect the distance each constrained
    # dimension demands; bail to conservative on unanalysable dims.
    constrained: list[Fraction] = []
    for early_dim, late_dim in zip(early.dims, late.dims):
        if early_dim is None or late_dim is None:
            return _conservative_pair(early, late)
        shift = early_dim.minus_const(late_dim)
        if shift is None:
            # Different coefficients or symbolic parts: the access
            # patterns interleave in a way the SIV test cannot bound.
            return _conservative_pair(early, late)
        if early_dim.coef == 0:
            if shift != 0:
                return []  # disjoint fixed planes: independent
            continue  # same plane every iteration: unconstraining
        constrained.append(shift / early_dim.coef)

    if not constrained:
        # Same fixed element every iteration.
        return [
            Edge(early.node, late.node, 0, DependenceKind.MEMORY),
            Edge(late.node, early.node, 1, DependenceKind.MEMORY),
        ]

    distance = constrained[0]
    if any(other != distance for other in constrained[1:]):
        return []  # dimensions disagree: no common iteration pair
    if distance.denominator != 1:
        return []  # non-integer distance: accesses interleave disjointly

    edges: list[Edge] = []
    forward = int(distance)
    if forward >= 0:
        edges.append(
            Edge(early.node, late.node, forward, DependenceKind.MEMORY)
        )
    backward = -forward
    if backward >= 1:
        edges.append(
            Edge(late.node, early.node, backward, DependenceKind.MEMORY)
        )
    return edges


def _conservative_pair(early: MemoryRef, late: MemoryRef) -> list[Edge]:
    return [
        Edge(early.node, late.node, 0, DependenceKind.MEMORY),
        Edge(late.node, early.node, 1, DependenceKind.MEMORY),
    ]
