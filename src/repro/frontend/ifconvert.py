"""IF-conversion: control dependences become data dependences.

The paper schedules single-basic-block loop bodies only; loops with
conditionals were "converted to single basic block loops using
IF-conversion" (Section 4.2, citing Allen/Kennedy/Warren).  This pass
flattens the statement tree into a straight-line sequence of
:class:`GuardedAssign` — each assignment annotated with the predicate
(condition conjunction) under which it executes:

* a then-branch statement is guarded by the if's condition;
* an else-branch statement by its negation;
* nested ifs conjoin their guards (``and``).

Lowering later turns each distinct guard into compare/logic operations and
each guarded *scalar* assignment into a ``select`` between the new and the
old value; guarded *stores* become stores control-dependent on their
predicate.  Loads and arithmetic hoist out of their branch and execute
speculatively, the classic if-conversion cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.nodes import (
    ArrayRef,
    Assign,
    BoolOp,
    Cond,
    DoLoop,
    IfStmt,
    NotOp,
    VarRef,
)


@dataclass(frozen=True)
class GuardedAssign:
    """An assignment plus the predicate under which it takes effect.

    ``guard is None`` means the statement is unconditional.
    """

    target: "VarRef | ArrayRef"
    value: object
    guard: Cond | None

    @property
    def is_store(self) -> bool:
        """``True`` when the target is an array element."""
        return isinstance(self.target, ArrayRef)


def if_convert(loop: DoLoop) -> list[GuardedAssign]:
    """Flatten *loop*'s body into guarded straight-line assignments."""
    flat: list[GuardedAssign] = []
    _convert(loop.body, None, flat)
    return flat


def _convert(stmts, guard: Cond | None, out: list[GuardedAssign]) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            out.append(GuardedAssign(stmt.target, stmt.value, guard))
        elif isinstance(stmt, IfStmt):
            then_guard = _conjoin(guard, stmt.cond)
            else_guard = _conjoin(guard, NotOp(stmt.cond))
            _convert(stmt.then_body, then_guard, out)
            _convert(stmt.else_body, else_guard, out)
        else:  # pragma: no cover - parser emits only Assign/IfStmt
            raise TypeError(f"unknown statement: {stmt!r}")


def _conjoin(outer: Cond | None, inner: Cond) -> Cond:
    if outer is None:
        return inner
    return BoolOp("and", outer, inner)


def count_predicates(flat: list[GuardedAssign]) -> int:
    """Number of distinct guards (useful for diagnostics and tests)."""
    return len({repr(g.guard) for g in flat if g.guard is not None})
