"""A miniature loop-language compiler front end.

The paper's evaluation obtained dependence graphs from Fortran DO loops
with the ICTINEO compiler and IF-converted conditional bodies into single
basic blocks (Section 4.2).  This package is the equivalent substrate: a
small Fortran-flavoured loop language, compiled through the classic
stages —

========================  ===============================================
:mod:`~repro.frontend.lexer`       tokens (line-oriented, ``!`` comments)
:mod:`~repro.frontend.parser`      recursive descent → AST
:mod:`~repro.frontend.semantics`   declaration checks, variant/invariant
                                   scalar classification, trip counts
:mod:`~repro.frontend.ifconvert`   control → data dependences (guards)
:mod:`~repro.frontend.affine`      affine subscript analysis
:mod:`~repro.frontend.dependence`  SIV memory-dependence tests
:mod:`~repro.frontend.lowering`    DDG construction (loads/stores/selects,
                                   CSE, invariant hoisting)
========================  ===============================================

— producing :class:`~repro.workloads.loops.Loop` objects any scheduler in
the library accepts.  See :data:`repro.frontend.kernels.KERNEL_SOURCES`
for ready-made classic kernels.
"""

from repro.frontend.kernels import KERNEL_SOURCES, kernel_names, kernel_source
from repro.frontend.lowering import LoweredLoop, lower_program
from repro.frontend.nodes import Program
from repro.frontend.parser import parse_program
from repro.frontend.pipeline import (
    DEFAULT_TRIPS,
    compile_program,
    compile_source,
    compile_to_lowered,
)
from repro.frontend.profile import (
    LoweringProfile,
    OpSpec,
    govindarajan_profile,
    perfect_club_profile,
)

__all__ = [
    "KERNEL_SOURCES",
    "DEFAULT_TRIPS",
    "LoweredLoop",
    "LoweringProfile",
    "OpSpec",
    "Program",
    "compile_program",
    "compile_source",
    "compile_to_lowered",
    "govindarajan_profile",
    "kernel_names",
    "kernel_source",
    "lower_program",
    "parse_program",
    "perfect_club_profile",
]
