"""Abstract syntax tree of the loop language.

The language describes a single innermost loop over declared scalars and
one-dimensional arrays — the shape of program the paper's ICTINEO front
end fed to the scheduler::

    real a
    real x(1000), y(1000)
    do i = 1, 1000
      if (x(i) > 0) then
        y(i) = y(i) + a * x(i)
      else
        y(i) = y(i) - x(i)
      end if
    end do

Expression nodes are plain frozen dataclasses; passes walk them with
``isinstance`` dispatch, which keeps each pass's logic in one readable
function instead of a visitor-class hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.frontend.source import SYNTHETIC, Location

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A numeric literal."""

    value: Fraction
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return str(float(self.value))


@dataclass(frozen=True)
class VarRef:
    """A scalar (or loop variable) reference."""

    name: str
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """An array element reference ``name(sub1, sub2, ...)``.

    One subscript per dimension; most kernels are 1-D but matrix codes
    (the Perfect Club's dominant shape) use two or more.
    """

    name: str
    subscripts: tuple["Expr", ...]
    location: Location = SYNTHETIC

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinOp:
    """An arithmetic binary operation: ``+ - * /``."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus (``op`` is always ``"-"``)."""

    op: str
    operand: "Expr"
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call:
    """An intrinsic call: ``sqrt``, ``abs``, ``min`` or ``max``."""

    func: str
    args: tuple["Expr", ...]
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Compare:
    """A relational test ``lhs op rhs`` (``< <= > >= == /=``)."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class BoolOp:
    """A logical connective over conditions (``and`` / ``or``)."""

    op: str
    lhs: "Cond"
    rhs: "Cond"
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class NotOp:
    """Logical negation of a condition."""

    operand: "Cond"
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"(not {self.operand})"


Expr = Union[Num, VarRef, ArrayRef, BinOp, UnaryOp, Call]
Cond = Union[Compare, BoolOp, NotOp]

#: Intrinsic functions the language understands, with their arities.
INTRINSICS = {"sqrt": 1, "abs": 1, "min": 2, "max": 2}

# ----------------------------------------------------------------------
# Statements and program structure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``target = value``; target is a scalar or array element."""

    target: Union[VarRef, ArrayRef]
    value: Expr
    location: Location = SYNTHETIC

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass(frozen=True)
class IfStmt:
    """``if (cond) then ... [else ...] end if``."""

    cond: Cond
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()
    location: Location = SYNTHETIC


Stmt = Union[Assign, IfStmt]


@dataclass(frozen=True)
class ScalarDecl:
    """``real a, b`` — scalar declarations."""

    names: tuple[str, ...]
    location: Location = SYNTHETIC


@dataclass(frozen=True)
class ArrayDecl:
    """``real x(100), a(10, 10)`` — array declarations with extents.

    ``shapes[i]`` is the extent tuple of ``names[i]``; its length is the
    array's rank.
    """

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    location: Location = SYNTHETIC


@dataclass(frozen=True)
class DoLoop:
    """``do var = lower, upper [, step]`` with a straight-line-or-if body.

    ``step`` defaults to 1 and must be a nonzero integer literal: the
    dependence analysis rewrites subscripts into iteration space
    (``i = lower + step * j``), which needs the stride at compile time.
    """

    var: str
    lower: Expr
    upper: Expr
    body: tuple[Stmt, ...]
    step: int = 1
    location: Location = SYNTHETIC


@dataclass(frozen=True)
class Program:
    """A compilation unit: declarations followed by one do-loop."""

    scalars: tuple[ScalarDecl, ...]
    arrays: tuple[ArrayDecl, ...]
    loop: DoLoop

    def scalar_names(self) -> tuple[str, ...]:
        """All declared scalar names, declaration order."""
        return tuple(
            name for decl in self.scalars for name in decl.names
        )

    def array_names(self) -> tuple[str, ...]:
        """All declared array names, declaration order."""
        return tuple(name for decl in self.arrays for name in decl.names)

    def array_shapes(self) -> dict[str, tuple[int, ...]]:
        """Declared extent tuple of every array (rank = tuple length)."""
        return {
            name: shape
            for decl in self.arrays
            for name, shape in zip(decl.names, decl.shapes)
        }


def walk_expr(expr: Expr):
    """Yield *expr* and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ArrayRef):
        for subscript in expr.subscripts:
            yield from walk_expr(subscript)


def walk_cond_exprs(cond: Cond):
    """Yield every arithmetic expression appearing inside *cond*."""
    if isinstance(cond, Compare):
        yield from walk_expr(cond.lhs)
        yield from walk_expr(cond.rhs)
    elif isinstance(cond, BoolOp):
        yield from walk_cond_exprs(cond.lhs)
        yield from walk_cond_exprs(cond.rhs)
    elif isinstance(cond, NotOp):
        yield from walk_cond_exprs(cond.operand)


def walk_stmts(stmts) -> "list[Stmt]":
    """Flatten a statement tree, pre-order (if-bodies included)."""
    out: list[Stmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, IfStmt):
            out.extend(walk_stmts(stmt.then_body))
            out.extend(walk_stmts(stmt.else_body))
    return out
