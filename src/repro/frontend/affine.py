"""Affine analysis of array subscripts.

The dependence tests of :mod:`repro.frontend.dependence` need each
subscript in the canonical form ``coef * i + const + syms`` where ``i`` is
the loop variable, ``const`` is a rational constant and ``syms`` is a bag
of loop-invariant scalar names with rational coefficients (e.g. the ``k``
of ``x(i + k)``).  Subscripts that do not fit the form — indirect accesses
like ``x(ind(i))``, products of variants, … — analyse to ``None`` and the
dependence tests fall back to conservative edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.frontend.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    Num,
    UnaryOp,
    VarRef,
)


@dataclass(frozen=True)
class AffineForm:
    """``coef * loopvar + const + sum(sym_coefs[s] * s)``."""

    coef: Fraction
    const: Fraction
    sym_coefs: tuple[tuple[str, Fraction], ...] = ()

    @property
    def symbolic_part(self) -> tuple[tuple[str, Fraction], ...]:
        """The invariant-symbol terms, canonically sorted."""
        return self.sym_coefs

    def minus_const(self, other: "AffineForm") -> Fraction | None:
        """``self.const - other.const`` when the two forms differ only in
        their constant; ``None`` otherwise."""
        if self.coef != other.coef:
            return None
        if self.sym_coefs != other.sym_coefs:
            return None
        return self.const - other.const


def analyze_affine(
    expr: Expr,
    loop_var: str,
    invariants: frozenset[str],
) -> AffineForm | None:
    """Put *expr* into affine form, or return ``None`` if it has none.

    *invariants* is the set of scalar names whose value does not change
    inside the loop; they may appear linearly.  Any other variable, array
    reference or intrinsic call makes the expression non-affine.
    """
    terms = _collect(expr, loop_var, invariants)
    if terms is None:
        return None
    coef, const, syms = terms
    canonical = tuple(
        sorted((name, value) for name, value in syms.items() if value != 0)
    )
    return AffineForm(coef, const, canonical)


def _collect(
    expr: Expr,
    loop_var: str,
    invariants: frozenset[str],
) -> tuple[Fraction, Fraction, dict[str, Fraction]] | None:
    """Return ``(coef, const, sym_coefs)`` or ``None``."""
    if isinstance(expr, Num):
        return Fraction(0), expr.value, {}
    if isinstance(expr, VarRef):
        if expr.name == loop_var:
            return Fraction(1), Fraction(0), {}
        if expr.name in invariants:
            return Fraction(0), Fraction(0), {expr.name: Fraction(1)}
        return None
    if isinstance(expr, UnaryOp):
        inner = _collect(expr.operand, loop_var, invariants)
        if inner is None:
            return None
        coef, const, syms = inner
        return -coef, -const, {name: -v for name, v in syms.items()}
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            lhs = _collect(expr.lhs, loop_var, invariants)
            rhs = _collect(expr.rhs, loop_var, invariants)
            if lhs is None or rhs is None:
                return None
            sign = 1 if expr.op == "+" else -1
            syms = dict(lhs[2])
            for name, value in rhs[2].items():
                syms[name] = syms.get(name, Fraction(0)) + sign * value
            return (
                lhs[0] + sign * rhs[0],
                lhs[1] + sign * rhs[1],
                syms,
            )
        if expr.op == "*":
            lhs = _collect(expr.lhs, loop_var, invariants)
            rhs = _collect(expr.rhs, loop_var, invariants)
            if lhs is None or rhs is None:
                return None
            # One side must be a pure constant for the product to stay
            # affine.
            for const_side, other in ((lhs, rhs), (rhs, lhs)):
                coef, const, syms = const_side
                if coef == 0 and not syms:
                    scale = const
                    return (
                        other[0] * scale,
                        other[1] * scale,
                        {n: v * scale for n, v in other[2].items()},
                    )
            return None
        if expr.op == "/":
            lhs = _collect(expr.lhs, loop_var, invariants)
            rhs = _collect(expr.rhs, loop_var, invariants)
            if lhs is None or rhs is None:
                return None
            coef, const, syms = rhs
            if coef != 0 or syms or const == 0:
                return None
            scale = const
            return (
                lhs[0] / scale,
                lhs[1] / scale,
                {n: v / scale for n, v in lhs[2].items()},
            )
        return None
    if isinstance(expr, (ArrayRef, Call)):
        return None
    raise TypeError(f"unknown expression node: {expr!r}")
