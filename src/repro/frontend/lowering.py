"""Lowering: guarded straight-line statements → dependence graph.

This is the code generator of the mini front end.  It walks the
IF-converted body once, in program order, maintaining the current value of
every variant scalar, and emits one DDG operation per machine-level
action:

* array reads become loads (with local CSE: a second read of the same
  address in the same iteration reuses the first load until a store to
  that array intervenes);
* array writes become stores (no loop variant — ``produces_value=False``);
* arithmetic becomes adder/multiplier/divider/sqrt operations per the
  :class:`~repro.frontend.profile.LoweringProfile`;
* conditions become compare/logic operations and guarded scalar
  assignments become ``select`` operations (IF-conversion's data-flow
  form); guarded stores get a control edge from their predicate;
* expressions built only from constants and loop invariants are *hoisted*:
  they cost one invariant register and no in-loop operation, like a real
  preheader.

Scalar data flow follows the paper's model: a read after an in-iteration
write uses that value (distance-0 edge); a read **before** any write uses
the previous iteration's final value (distance-1 edge from the final
definition — this is what turns reductions like ``s = s + x(i)`` into
recurrence circuits).  Array data flow is delegated to
:mod:`repro.frontend.dependence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.frontend.affine import AffineForm, analyze_affine
from repro.frontend.dependence import MemoryRef, dependence_edges
from repro.frontend.ifconvert import GuardedAssign, if_convert
from repro.frontend.nodes import (
    ArrayRef,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Cond,
    Expr,
    NotOp,
    Num,
    Program,
    UnaryOp,
    VarRef,
)
from repro.frontend.profile import LoweringProfile, OpSpec
from repro.frontend.semantics import SemanticInfo, analyze
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation

#: Value keys in this set never occupy a register (immediates).
_FREE_KINDS = frozenset({"const"})


@dataclass(frozen=True)
class Value:
    """The result of lowering an expression.

    ``node`` names the DDG operation producing the value, or is ``None``
    for values with no in-loop producer: literals (``key[0] == "const"``),
    loop invariants and hoisted invariant expressions (``"inv"`` /
    ``"hoist"``), and reads of a variant scalar before its first write in
    the iteration (``"carried"`` — the producer is the *previous*
    iteration's final definition, resolved at the end of lowering).
    """

    node: str | None
    key: tuple

    @property
    def kind(self) -> str:
        return self.key[0]


@dataclass
class LoweredLoop:
    """The DDG plus the register-model metadata lowering discovered."""

    graph: DependenceGraph
    #: Distinct loop-invariant values consumed by the body (registers).
    invariants: int
    #: Trip count from literal loop bounds, else ``None``.
    trip_count: int | None
    info: SemanticInfo
    refs: list[MemoryRef] = field(default_factory=list)


def lower_program(
    program: Program,
    profile: LoweringProfile,
    source: str = "",
    name: str = "loop",
) -> LoweredLoop:
    """Lower *program* (already parsed) to a dependence graph."""
    info = analyze(program, source)
    flat = if_convert(program.loop)
    if not flat:
        raise SemanticError("loop body must contain at least one statement")
    lowerer = _Lowerer(program, info, profile, name)
    return lowerer.run(flat)


class _Lowerer:
    def __init__(
        self,
        program: Program,
        info: SemanticInfo,
        profile: LoweringProfile,
        name: str,
    ) -> None:
        self._profile = profile
        self._graph = DependenceGraph(name)
        self._info = info
        self._invariant_names = frozenset(info.invariant_scalars)
        self._counter = 0
        #: Current in-iteration Value of each variant scalar.
        self._env: dict[str, Value | None] = {
            s: None for s in info.variant_scalars
        }
        #: (scalar, consumer node) pairs awaiting the final definition.
        self._carried_uses: list[tuple[str, str]] = []
        #: Structural-key → Value cache (local value numbering).
        self._cse: dict[tuple, Value] = {}
        #: (array, subscript key) → load Value; invalidated by stores.
        self._load_cache: dict[tuple, Value] = {}
        #: Invariant keys actually consumed by operations.
        self._used_invariants: set[tuple] = set()
        self._refs: list[MemoryRef] = []

    # ------------------------------------------------------------------
    def run(self, flat: list[GuardedAssign]) -> LoweredLoop:
        for stmt in flat:
            self._lower_statement(stmt)
        self._resolve_carried_uses()
        for edge in dependence_edges(self._refs):
            self._graph.add_edge(edge)
        if not len(self._graph):
            raise SemanticError(
                "loop body lowers to no operations: every statement is a "
                "loop-invariant scalar assignment (nothing to schedule)"
            )
        self._graph.validate()
        return LoweredLoop(
            graph=self._graph,
            invariants=len(self._used_invariants),
            trip_count=self._info.trip_count,
            info=self._info,
            refs=self._refs,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_statement(self, stmt: GuardedAssign) -> None:
        value = self._lower_expr(stmt.value)
        predicate = (
            self._lower_cond(stmt.guard) if stmt.guard is not None else None
        )
        if isinstance(stmt.target, ArrayRef):
            self._lower_store(stmt.target, value, predicate)
        else:
            self._lower_scalar_assign(stmt.target.name, value, predicate)

    def _lower_scalar_assign(
        self, name: str, value: Value, predicate: Value | None
    ) -> None:
        if predicate is None:
            self._env[name] = value
            return
        # Guarded write: select(new, old, predicate).  The old value may be
        # the previous iteration's final definition (carried).
        old = self._env[name]
        if old is None:
            old = Value(None, ("carried", name))
        operands = [value, old]
        if predicate.node is not None or predicate.kind != "const":
            operands.append(predicate)
        select = self._emit("sel", self._profile.select, operands)
        self._env[name] = select

    def _lower_store(
        self, target: ArrayRef, value: Value, predicate: Value | None
    ) -> None:
        dims, index_values, _ = self._analyze_subscripts(target.subscripts)
        store = self._emit(
            f"st_{target.name}",
            self._profile.store,
            [value, *index_values],
            produces_value=False,
        )
        if predicate is not None and predicate.node is not None:
            self._graph.add_edge(
                Edge(predicate.node, store.node, 0, DependenceKind.CONTROL)
            )
        self._record_ref(target.name, dims, True, store.node)
        self._invalidate_loads(target.name)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: Expr) -> Value:
        if isinstance(expr, Num):
            return Value(None, ("const", str(expr.value)))
        if isinstance(expr, VarRef):
            return self._lower_varref(expr)
        if isinstance(expr, ArrayRef):
            return self._lower_load(expr)
        if isinstance(expr, UnaryOp):
            operand = self._lower_operand_list([expr.operand])
            return self._combine("neg", self._profile.add, operand)
        if isinstance(expr, BinOp):
            operands = self._lower_operand_list([expr.lhs, expr.rhs])
            prefix, spec = self._binop_spec(expr.op)
            return self._combine(prefix, spec, operands, tag=expr.op)
        if isinstance(expr, Call):
            operands = self._lower_operand_list(list(expr.args))
            if expr.func == "sqrt":
                return self._combine("sqrt", self._profile.sqrt, operands)
            return self._combine(expr.func, self._profile.add, operands)
        raise TypeError(f"unknown expression node: {expr!r}")

    def _lower_operand_list(self, exprs: list[Expr]) -> list[Value]:
        return [self._lower_expr(e) for e in exprs]

    def _binop_spec(self, op: str) -> tuple[str, OpSpec]:
        profile = self._profile
        if op == "+":
            return "add", profile.add
        if op == "-":
            return "sub", profile.add
        if op == "*":
            return "mul", profile.mul
        if op == "/":
            return "div", profile.div
        raise ValueError(f"unknown binary operator {op!r}")

    def _lower_varref(self, expr: VarRef) -> Value:
        name = expr.name
        if name == self._info.loop_var:
            # The induction variable lives in an integer register and is
            # produced by free address arithmetic in this machine model.
            return Value(None, ("const", "@loopvar"))
        if name in self._invariant_names:
            return Value(None, ("inv", name))
        current = self._env.get(name)
        if current is None:
            return Value(None, ("carried", name))
        return current

    def _lower_load(self, expr: ArrayRef) -> Value:
        dims, index_values, address_key = self._analyze_subscripts(
            expr.subscripts
        )
        cache_key = (expr.name, address_key)
        cached = self._load_cache.get(cache_key)
        if cached is not None:
            return cached
        load = self._emit(f"ld_{expr.name}", self._profile.load, index_values)
        self._record_ref(expr.name, dims, False, load.node)
        self._load_cache[cache_key] = load
        return load

    def _analyze_subscripts(
        self, subscripts: tuple[Expr, ...]
    ) -> tuple[tuple[AffineForm | None, ...], list[Value], tuple]:
        """Affine form per dimension, address-computing Values, CSE key.

        Affine subscripts (the common case) cost nothing: address
        arithmetic is folded into the memory operation.  Non-affine
        subscripts (indirect addressing) lower the index expression and
        feed its value into the access.  The returned key identifies the
        address structurally (affine form or index-value key per
        dimension) for load CSE.
        """
        dims: list[AffineForm | None] = []
        index_values: list[Value] = []
        key_parts: list[object] = []
        for subscript in subscripts:
            affine = analyze_affine(
                subscript, self._info.loop_var, self._invariant_names
            )
            if affine is not None:
                affine = self._to_iteration_space(affine)
                dims.append(affine)
                key_parts.append(affine)
            else:
                dims.append(None)
                value = self._lower_expr(subscript)
                index_values.append(value)
                key_parts.append(value.key)
        return tuple(dims), index_values, tuple(key_parts)

    def _to_iteration_space(self, affine: AffineForm) -> AffineForm:
        """Rewrite a subscript from induction-variable to iteration space.

        With ``do i = lower, upper, step`` the variable is
        ``i = lower + step * j`` for iteration ``j``, so a subscript
        ``c*i + k`` becomes ``(c*step)*j + (k + c*lower)``.  The
        ``c*lower`` shift is identical for subscripts with equal ``c``
        (the only ones the SIV test compares), so only the coefficient
        scaling matters for dependence distances and it is applied here.
        """
        step = self._info.step
        if step == 1:
            return affine
        return AffineForm(
            affine.coef * step, affine.const, affine.sym_coefs
        )

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _lower_cond(self, cond: Cond) -> Value:
        if isinstance(cond, Compare):
            operands = self._lower_operand_list([cond.lhs, cond.rhs])
            return self._combine(
                "cmp", self._profile.compare, operands, tag=cond.op
            )
        if isinstance(cond, BoolOp):
            operands = [self._lower_cond(cond.lhs), self._lower_cond(cond.rhs)]
            return self._combine(
                cond.op, self._profile.logic, operands, tag=cond.op
            )
        if isinstance(cond, NotOp):
            operand = self._lower_cond(cond.operand)
            return self._combine("not", self._profile.logic, [operand])
        raise TypeError(f"unknown condition node: {cond!r}")

    # ------------------------------------------------------------------
    # Node emission and hoisting
    # ------------------------------------------------------------------
    def _combine(
        self,
        prefix: str,
        spec: OpSpec,
        operands: list[Value],
        tag: str = "",
    ) -> Value:
        """Emit an operation over *operands*, hoisting invariant results.

        When no operand is produced in the loop (all constants or
        invariants), the whole expression is loop-invariant: it is hoisted
        to the (implicit) preheader and becomes one invariant register —
        or folds away entirely when every operand is a literal.
        """
        key = (prefix, tag, *(v.key for v in operands))
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        loop_dependent = any(
            v.node is not None or v.kind == "carried" for v in operands
        )
        if not loop_dependent:
            if all(v.kind in _FREE_KINDS for v in operands):
                value = Value(None, ("const", key))
            else:
                value = Value(None, ("hoist", key))
            self._cse[key] = value
            return value
        value = self._emit(prefix, spec, operands)
        self._cse[key] = value
        return value

    def _emit(
        self,
        prefix: str,
        spec: OpSpec,
        operands: list[Value],
        produces_value: bool = True,
    ) -> Value:
        """Add one operation with register edges from its operands."""
        self._counter += 1
        name = f"{prefix}_{self._counter}"
        self._graph.add_operation(
            Operation(
                name=name,
                latency=spec.latency,
                opclass=spec.opclass,
                produces_value=produces_value,
            )
        )
        for operand in operands:
            if operand.node is not None:
                self._graph.add_edge(
                    Edge(operand.node, name, 0, DependenceKind.REGISTER)
                )
            elif operand.kind == "carried":
                self._carried_uses.append((operand.key[1], name))
            elif operand.kind in ("inv", "hoist"):
                self._used_invariants.add(operand.key)
        return Value(name, ("node", name))

    def _record_ref(
        self,
        array: str,
        dims: tuple[AffineForm | None, ...],
        is_write: bool,
        node: str,
    ) -> None:
        self._refs.append(
            MemoryRef(array, dims, is_write, node, len(self._refs))
        )

    def _invalidate_loads(self, array: str) -> None:
        self._load_cache = {
            key: value
            for key, value in self._load_cache.items()
            if key[0] != array
        }

    def _resolve_carried_uses(self) -> None:
        """Connect reads-before-write to the previous iteration's value.

        A scalar's final definition may itself be a carried value (scalar
        copies like ``t = s`` executed before ``s`` is redefined — the
        idiom of second-order recurrences).  Each copy hop adds one
        iteration of distance; a cycle of copies (``t = s; s = t``) means
        the scalars permute their preheader values forever, i.e. the
        consumer reads a loop invariant.
        """
        for scalar, consumer in self._carried_uses:
            distance = 1
            visited = {scalar}
            final = self._env.get(scalar)
            while final is not None and final.kind == "carried":
                source = final.key[1]
                if source in visited:
                    self._used_invariants.add(
                        ("copy-cycle", tuple(sorted(visited)))
                    )
                    final = None
                    break
                visited.add(source)
                distance += 1
                final = self._env.get(source)
            if final is None:
                continue
            if final.node is not None:
                self._graph.add_edge(
                    Edge(
                        final.node, consumer, distance, DependenceKind.REGISTER
                    )
                )
            elif final.kind in ("inv", "hoist"):
                # The scalar is re-assigned the same invariant value every
                # iteration; the carried use needs that register.
                self._used_invariants.add(final.key)
