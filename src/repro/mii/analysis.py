"""Combined MII analysis.

One call computes ResMII, RecMII, the elementary circuits and the grouped
recurrence subgraphs; the scheduler and the pre-ordering phase both consume
the same :class:`MIIResult` so circuits are enumerated exactly once per
loop, matching the paper's observation that recurrence identification is a
small fraction of scheduling time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.circuits import Circuit, elementary_circuits
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.mii.recmii import compute_recmii
from repro.mii.recurrences import RecurrenceSubgraph, find_recurrence_subgraphs
from repro.mii.resmii import compute_resmii


@dataclass
class MIIResult:
    """Everything the schedulers need to know about lower bounds."""

    resmii: int
    recmii: int
    circuits: list[Circuit]
    subgraphs: list[RecurrenceSubgraph]

    @property
    def mii(self) -> int:
        """The minimum initiation interval."""
        return max(self.resmii, self.recmii)

    @property
    def recurrence_constrained(self) -> bool:
        """``True`` when recurrences (not resources) set the MII."""
        return self.recmii > self.resmii


def compute_mii(graph: DependenceGraph, machine: MachineModel) -> MIIResult:
    """Full lower-bound analysis for *graph* on *machine*."""
    circuits = elementary_circuits(graph)
    return MIIResult(
        resmii=compute_resmii(graph, machine),
        recmii=compute_recmii(graph, circuits),
        circuits=circuits,
        subgraphs=find_recurrence_subgraphs(graph, circuits),
    )
