"""Recurrence subgraphs (Section 3.2).

Recurrence circuits that share the same set of *backward edges* (the
loop-carried edges that close them) are merged into a single **recurrence
subgraph** — Figure 8b's two circuits, for example, become the one subgraph
{A, B, C, D, E}.  Circuits with distinct backward-edge sets stay separate
subgraphs even when they share nodes (Figures 8c/8d).

After grouping, the node lists are *simplified*: a node appearing in
several subgraphs is kept only in the most restrictive one (largest
RecMII — the first in the priority list), mirroring the paper's
simplification step.  Trivial circuits (self-dependences) constrain RecMII
but are dropped from the pre-ordering input, as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.circuits import Circuit, elementary_circuits
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import Edge
from repro.mii.recmii import circuit_recmii


@dataclass
class RecurrenceSubgraph:
    """A maximal set of circuits sharing one backward-edge set."""

    backward_edge_keys: frozenset[tuple[str, str, int, str]]
    nodes: list[str]
    circuits: list[Circuit] = field(default_factory=list)
    recmii: int = 1
    #: Node list after cross-subgraph simplification; what the ordering
    #: phase actually consumes.  Populated by
    #: :func:`simplify_subgraph_node_lists`.
    ordering_nodes: list[str] = field(default_factory=list)

    @property
    def is_trivial(self) -> bool:
        """Self-dependence of a single operation."""
        return len(self.nodes) == 1

    def backward_edges(self, graph: DependenceGraph) -> list[Edge]:
        """Materialise the backward edges from their keys."""
        found = []
        for edge in graph.edges():
            if edge.key in self.backward_edge_keys:
                found.append(edge)
        return found


def find_recurrence_subgraphs(
    graph: DependenceGraph,
    circuits: list[Circuit] | None = None,
) -> list[RecurrenceSubgraph]:
    """Group circuits into subgraphs and sort by decreasing RecMII.

    Ties are broken by the program-order position of each subgraph's
    earliest node, keeping the priority list deterministic.
    """
    if circuits is None:
        circuits = elementary_circuits(graph)
    position = {name: i for i, name in enumerate(graph.node_names())}

    by_backward: dict[frozenset, RecurrenceSubgraph] = {}
    for circuit in circuits:
        key = circuit.backward_edges()
        subgraph = by_backward.get(key)
        if subgraph is None:
            subgraph = RecurrenceSubgraph(
                backward_edge_keys=key, nodes=[], circuits=[]
            )
            by_backward[key] = subgraph
        subgraph.circuits.append(circuit)
        for name in circuit.nodes:
            if name not in subgraph.nodes:
                subgraph.nodes.append(name)

    subgraphs = list(by_backward.values())
    for subgraph in subgraphs:
        subgraph.nodes.sort(key=position.__getitem__)
        subgraph.recmii = max(
            circuit_recmii(graph, circuit) for circuit in subgraph.circuits
        )
    subgraphs.sort(
        key=lambda s: (-s.recmii, position[s.nodes[0]])
    )
    simplify_subgraph_node_lists(subgraphs)
    return subgraphs


def simplify_subgraph_node_lists(
    subgraphs: list[RecurrenceSubgraph],
) -> None:
    """Remove redundant nodes: keep each node only in its first subgraph.

    *subgraphs* must already be sorted by decreasing RecMII; the result is
    stored in each subgraph's ``ordering_nodes``.

    Trivial circuits (self-dependences) impose no pre-ordering constraint —
    the scheduler already guarantees ``II >= RecMII`` — so they neither
    claim their node nor receive an ordering list (Section 3.2).
    """
    claimed: set[str] = set()
    for subgraph in subgraphs:
        if subgraph.is_trivial:
            subgraph.ordering_nodes = []
            continue
        subgraph.ordering_nodes = [
            name for name in subgraph.nodes if name not in claimed
        ]
        claimed.update(subgraph.nodes)


def all_backward_edge_keys(
    subgraphs: list[RecurrenceSubgraph],
) -> set[tuple[str, str, int, str]]:
    """Union of backward-edge keys over all subgraphs.

    The pre-ordering phase removes exactly these edges to obtain an acyclic
    working graph (Section 3.2: "all the backward edges causing recurrences
    have been removed").
    """
    keys: set[tuple[str, str, int, str]] = set()
    for subgraph in subgraphs:
        keys.update(subgraph.backward_edge_keys)
    return keys
