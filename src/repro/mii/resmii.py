"""Resource-constrained minimum initiation interval (ResMII).

Each unit class contributes ``ceil(busy_cycles / unit_count)`` where an
operation keeps a pipelined unit busy for one cycle and an unpipelined unit
busy for its full latency.  Additionally, an unpipelined unit cannot accept
a new operation every II cycles when a single execution outlasts the II, so
ResMII is at least the longest unpipelined reservation.
"""

from __future__ import annotations

import math

from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel


def compute_resmii(graph: DependenceGraph, machine: MachineModel) -> int:
    """Lower bound on II imposed by the machine's functional units."""
    busy: dict[str, int] = {}
    longest_unpipelined = 0
    for op in graph.operations():
        unit = machine.class_for(op)
        span = machine.reservation_cycles(op)
        busy[unit.name] = busy.get(unit.name, 0) + span
        if not unit.pipelined:
            longest_unpipelined = max(longest_unpipelined, span)
    resmii = 1
    for unit in machine.unit_classes():
        cycles = busy.get(unit.name, 0)
        if cycles:
            resmii = max(resmii, math.ceil(cycles / unit.count))
    return max(resmii, longest_unpipelined, 1)
