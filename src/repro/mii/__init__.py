"""Minimum initiation interval (MII) analysis.

``MII = max(ResMII, RecMII)`` where ResMII is the resource bound and RecMII
the recurrence bound (Section 2 of the paper; see Dehnert & Towle and Rau
for the classic derivations).  Recurrence circuits are identified here as a
by-product of RecMII, exactly as the paper does, and grouped into
*recurrence subgraphs* for the pre-ordering phase.
"""

from repro.mii.analysis import MIIResult, compute_mii
from repro.mii.recmii import circuit_recmii, compute_recmii
from repro.mii.recurrences import (
    RecurrenceSubgraph,
    find_recurrence_subgraphs,
    simplify_subgraph_node_lists,
)
from repro.mii.resmii import compute_resmii

__all__ = [
    "MIIResult",
    "RecurrenceSubgraph",
    "circuit_recmii",
    "compute_mii",
    "compute_recmii",
    "compute_resmii",
    "find_recurrence_subgraphs",
    "simplify_subgraph_node_lists",
]
