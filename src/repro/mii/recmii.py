"""Recurrence-constrained minimum initiation interval (RecMII).

A recurrence circuit from an operation to an instance of itself ``omega``
iterations later must not be stretched beyond ``omega * II`` cycles
(Section 3), hence every circuit ``c`` imposes
``II >= ceil(latency_sum(c) / distance_sum(c))`` and RecMII is the maximum
over all elementary circuits.
"""

from __future__ import annotations

import math

from repro.errors import ZeroDistanceCycleError
from repro.graph.circuits import Circuit, elementary_circuits
from repro.graph.ddg import DependenceGraph


def circuit_recmii(graph: DependenceGraph, circuit: Circuit) -> int:
    """The II lower bound a single circuit imposes."""
    latency_sum = circuit.latency_sum(graph)
    distance_sum = circuit.total_distance()
    if distance_sum == 0:
        raise ZeroDistanceCycleError(
            f"circuit through {circuit.nodes[0]!r} has zero total distance"
        )
    return math.ceil(latency_sum / distance_sum)


def compute_recmii(
    graph: DependenceGraph,
    circuits: list[Circuit] | None = None,
) -> int:
    """Lower bound on II imposed by loop-carried dependences.

    ``circuits`` may be supplied to reuse a prior enumeration (the
    pre-ordering phase needs the circuits anyway).
    """
    if circuits is None:
        circuits = elementary_circuits(graph)
    recmii = 1
    for circuit in circuits:
        recmii = max(recmii, circuit_recmii(graph, circuit))
    return recmii
