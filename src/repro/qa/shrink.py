"""Greedy delta-debugging of failing fuzz cases.

A campaign failure arrives as a generated graph of up to dozens of
operations; the committed reproducer should be the handful that
actually matter.  The shrinker repeatedly tries structure-removing
edits — drop an operation (with its incident edges), drop a single
edge — and keeps an edit whenever the caller's predicate says the
*same* oracle still fails on the smaller graph.  The loop runs to a
fixpoint (no single removal reproduces the failure any more) under a
predicate-evaluation budget, so a pathological case cannot stall a
campaign.

The predicate owns re-running the scheduler and the oracle; the
shrinker only proposes structurally valid candidates (every candidate
passes ``DependenceGraph.validate`` and keeps at least one operation).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.graph.ddg import DependenceGraph


def _without_operation(
    graph: DependenceGraph, name: str
) -> DependenceGraph | None:
    keep = [op for op in graph.node_names() if op != name]
    if not keep:
        return None
    return graph.subgraph(keep, name=graph.name)


def _without_edge(graph: DependenceGraph, index: int) -> DependenceGraph:
    clone = graph.copy()
    clone.remove_edge(graph.edges()[index])
    return clone


def _still_fails(
    candidate: DependenceGraph,
    predicate: Callable[[DependenceGraph], bool],
) -> bool:
    try:
        candidate.validate()
        return bool(predicate(candidate))
    except ReproError:
        # A candidate that fails *differently* (unschedulable, invalid
        # graph) is not a reproduction of the original bug.
        return False


def shrink_list(
    items: list,
    predicate: Callable[[list], bool],
    *,
    max_evaluations: int = 64,
) -> list:
    """Greedy delta-debugging over a flat list of opaque items.

    The list-shaped sibling of :func:`shrink_case`: repeatedly drop one
    item and keep the drop whenever ``predicate(smaller)`` still holds,
    to a fixpoint under the evaluation budget.  Used by the chaos
    campaign to minimize a failing :class:`~repro.service.faults
    .FaultPlan`'s rule set — but the items can be anything.  Returns
    the input (as a fresh list) when it does not reproduce at all.
    An empty result is meaningful: the failure needs none of the items.
    """
    current = list(items)
    if not predicate(current):
        return current
    budget = max_evaluations
    progress = True
    while progress and budget > 0:
        progress = False
        for index in range(len(current) - 1, -1, -1):
            if budget <= 0:
                break
            candidate = current[:index] + current[index + 1:]
            budget -= 1
            if predicate(candidate):
                current = candidate
                progress = True
    return current


def shrink_case(
    graph: DependenceGraph,
    predicate: Callable[[DependenceGraph], bool],
    *,
    max_evaluations: int = 400,
) -> DependenceGraph:
    """Minimize *graph* while ``predicate(graph)`` stays true.

    *predicate* must return ``True`` exactly when the candidate still
    exhibits the original failure (same oracle).  Returns the smallest
    graph found — *graph* itself if nothing could be removed.  The
    input graph is never mutated.
    """
    if not predicate(graph):
        # Non-reproducing input: nothing to shrink against.
        return graph
    budget = max_evaluations
    current = graph
    progress = True
    while progress and budget > 0:
        progress = False
        # Pass 1: operations, most-recently-added first — generated
        # graphs grow forward, so late ops are the most likely ballast.
        for name in reversed(current.node_names()):
            if budget <= 0:
                break
            candidate = _without_operation(current, name)
            if candidate is None:
                continue
            budget -= 1
            if _still_fails(candidate, predicate):
                current = candidate
                progress = True
        # Pass 2: individual edges (recurrence closers, redundant deps).
        index = 0
        while index < current.edge_count() and budget > 0:
            candidate = _without_edge(current, index)
            budget -= 1
            if _still_fails(candidate, predicate):
                current = candidate
                progress = True
            else:
                index += 1
    return current
