"""Seeded chaos campaign against the scheduling service.

Where :mod:`repro.qa.campaign` fuzzes the *schedulers* with generated
graphs, this module fuzzes the *service* with generated faults: each
seed deterministically derives a :class:`~repro.service.faults
.FaultPlan` (store I/O errors, torn envelope writes, scheduler
latency and exceptions, worker kills, pickle failures, slow/failed
HTTP handlers, a force-opened circuit breaker), runs a small job mix
against a live service under that plan, and then audits the wreckage
against the resilience invariants:

* **No job lost or stuck** — every accepted job settles (done, failed
  or timeout) within the settle budget.
* **No corrupt or degraded artifact served as canonical** — every
  artifact a done job points at either integrity-verifies and passes
  the QA oracle battery, or is quarantined and reads as a miss; no
  stored envelope anywhere carries ``degraded: true``.
* **Metrics agree with the injected faults** — the ``faults_injected``
  gauge matches the injector's own count, settle counters add up to
  submissions, observed worker kills imply observed respawns, and a
  fault-free control seed leaves no quarantine or degradation behind.

Scenario mix: most seeds run the in-process thread backend (fast,
exercises store/executor/breaker faults); a periodic seed runs over a
live HTTP server (exercises handler faults and the client's retry
budget); another periodic seed runs the process-pool backend
(exercises worker kills, pickle failures, and supervision).

Everything is a pure function of ``(config, seed)``, so a violation is
reproducible from its seed alone, and a failing plan is minimized with
:func:`repro.qa.shrink.shrink_list` — re-running the seed with ever
fewer rules armed until no single rule can be dropped.
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field

from repro.errors import ReproError, ServiceError
from repro.graph.ddg import DependenceGraph
from repro.graph.serialization import graph_to_dict
from repro.qa.profiles import profile_by_name
from repro.service import faults
from repro.service.faults import FaultPlan, FaultRule

#: Points armed on in-process (thread backend) seeds.
THREAD_POOL_POINTS = (
    "store.get.io",
    "store.put.io",
    "store.put.torn",
    "executor.latency",
    "executor.error",
    "chaos.breaker.trip",
)

#: Extra points armed on live-HTTP seeds (thread backend underneath).
HTTP_POOL_POINTS = THREAD_POOL_POINTS + ("api.latency", "api.error")

#: Points armed on process-backend seeds.  Worker processes never see
#: the parent's injector, so only the parent-side hooks (the dispatcher
#: proxy) are meaningful here.
PROCESS_POOL_POINTS = ("procpool.kill", "procpool.pickle")

#: Scheduler mix cycled across a seed's jobs — the portfolio entry is
#: what the breaker/degradation path bites on.
JOB_SCHEDULERS = ("hrms", "topdown", "portfolio", "hrms")


@dataclass(frozen=True)
class ChaosConfig:
    """What one chaos campaign sweeps."""

    seeds: int = 50
    seed_base: int = 0
    #: Jobs submitted per seed.
    jobs_per_seed: int = 4
    #: Machine every job schedules against (generic: accepts any graph).
    machine: str = "generic4"
    #: Every Nth seed runs the process-pool backend (0 disables).
    process_stride: int = 10
    #: Every Nth seed runs over a live HTTP server (0 disables).
    http_stride: int = 7
    #: Wall-clock budget; checked between seeds (None = seeds only).
    max_seconds: float | None = None
    #: How long one seed's jobs may take to settle before the
    #: no-job-lost-or-stuck invariant is declared violated.
    settle_timeout: float = 120.0
    #: Minimize a failing seed's fault plan by re-running it.
    shrink: bool = True
    #: Re-run budget for one plan shrink.
    shrink_budget: int = 6


@dataclass
class ChaosViolation:
    """One invariant violation, reproducible from its coordinates."""

    seed: int
    scenario: str
    invariant: str
    message: str
    #: The (possibly shrunk) fault plan that reproduces the violation.
    plan: dict = field(default_factory=dict)

    def describe(self) -> str:
        armed = ", ".join(
            rule["point"] for rule in self.plan.get("rules", ())
        ) or "no faults"
        return (
            f"seed={self.seed} [{self.scenario}] {self.invariant}: "
            f"{self.message} (armed: {armed})"
        )


@dataclass
class ChaosReport:
    """What one chaos campaign observed."""

    seeds: int = 0
    jobs: int = 0
    settled: dict[str, int] = field(default_factory=dict)
    #: Aggregate fault fires per injection point across every seed.
    faults_fired: dict[str, int] = field(default_factory=dict)
    scenarios: dict[str, int] = field(default_factory=dict)
    #: Submissions the injected HTTP faults turned away (500s on POST).
    rejected_submissions: int = 0
    violations: list[ChaosViolation] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = (
            "ok" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        )
        fired = sum(self.faults_fired.values())
        states = ", ".join(
            f"{count} {name}" for name, count in sorted(self.settled.items())
        ) or "none settled"
        return (
            f"{self.seeds} seed(s), {self.jobs} job(s) ({states}), "
            f"{fired} fault(s) injected across "
            f"{len(self.faults_fired)} point(s) in "
            f"{self.wall_seconds:.1f}s: {status}"
        )


def scenario_for(index: int, config: ChaosConfig) -> str:
    """Which scenario the *index*-th seed of a campaign runs."""
    if (
        config.process_stride
        and index % config.process_stride == config.process_stride - 1
    ):
        return "process"
    if (
        config.http_stride
        and index % config.http_stride == config.http_stride - 1
    ):
        return "http"
    return "thread"


def plan_for(seed: int, scenario: str) -> FaultPlan:
    """The deterministic fault plan a (seed, scenario) pair arms.

    Roughly one seed in four arms nothing — those are the control runs
    the clean-side-effects invariant checks.
    """
    pool = {
        "thread": THREAD_POOL_POINTS,
        "http": HTTP_POOL_POINTS,
        "process": PROCESS_POOL_POINTS,
    }[scenario]
    rng = random.Random(f"hrms-chaos-plan-{scenario}-{seed}")
    count = rng.randint(0, min(3, len(pool)))
    rules = []
    for point in sorted(rng.sample(list(pool), count)):
        # One kill per seed: each costs a pool respawn (~a second).
        max_fires = 1 if point == "procpool.kill" else rng.randint(1, 3)
        rules.append(
            FaultRule(
                point,
                probability=rng.choice((0.25, 0.5, 1.0)),
                max_fires=max_fires,
                delay_s=0.2 if point.endswith("latency") else 0.0,
            )
        )
    return FaultPlan(seed=seed, rules=tuple(rules))


def _jobs_for(
    seed: int, config: ChaosConfig, plan: FaultPlan
) -> list[tuple[dict, DependenceGraph]]:
    """The request mix one seed submits, with each request's graph."""
    rng = random.Random(f"hrms-chaos-jobs-{seed}")
    tiny = profile_by_name("tiny")
    baseline = profile_by_name("baseline")
    latency_armed = any(
        rule.point == "executor.latency" for rule in plan.rules
    )
    requests = []
    for j in range(config.jobs_per_seed):
        profile = tiny if j % 2 else baseline
        graph = profile.build(seed * 1000 + j, prefix="chaos")
        request = {
            "kind": "schedule",
            "graph": graph_to_dict(graph),
            "machine": config.machine,
            "scheduler": JOB_SCHEDULERS[j % len(JOB_SCHEDULERS)],
        }
        if j == config.jobs_per_seed - 1 and latency_armed:
            # A tight deadline under injected latency: this job should
            # settle in the *timeout* status — which is still settled,
            # so the no-lost-jobs invariant covers the deadline path.
            request["timeout"] = 0.05
        elif rng.random() < 0.25:
            request["timeout"] = 30.0
        requests.append((request, graph))
    return requests


def _parse_gauge(metrics_text: str, name: str) -> float | None:
    for line in metrics_text.splitlines():
        parts = line.rsplit(" ", 1)
        if len(parts) == 2 and parts[0] == name:
            try:
                return float(parts[1])
            except ValueError:
                return None
    return None


def _wait_settled(jobs, deadline: float) -> bool:
    from repro.service.jobs import JobStatus

    while any(job.status not in JobStatus.SETTLED for job in jobs):
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.01)
    return True


def _audit(
    service,
    jobs,
    graphs: dict[str, DependenceGraph],
    fired: dict[str, int],
    metrics_gauge: float | None,
    seed: int,
    scenario: str,
    plan: FaultPlan,
) -> list[ChaosViolation]:
    """Run every post-mortem invariant check against a settled seed.

    Called with the injector already deactivated, so store reads here
    are clean — a corrupt envelope quarantines, it cannot be served.
    """
    from repro.qa.oracles import verify_artifact_payload
    from repro.service.jobs import JobStatus

    plan_dict = plan.to_dict()

    def violation(invariant: str, message: str) -> ChaosViolation:
        return ChaosViolation(
            seed=seed,
            scenario=scenario,
            invariant=invariant,
            message=message,
            plan=plan_dict,
        )

    found: list[ChaosViolation] = []

    # 1. No job lost or stuck.
    for job in jobs:
        if job.status not in JobStatus.SETTLED:
            found.append(
                violation(
                    "job-stuck",
                    f"job {job.id} still {job.status!r} after the "
                    "settle budget",
                )
            )

    # 2a. Done artifacts verify (or are honestly gone — a torn write
    # quarantines on read, which is a miss, never corrupt data).
    for job in jobs:
        if job.status != JobStatus.DONE or job.kind != "schedule":
            continue
        key = job.result["artifact"]
        envelope = service.store.get(key)
        if envelope is None:
            continue
        if job.result.get("degraded") and envelope["kind"] == "portfolio":
            found.append(
                violation(
                    "degraded-canonical",
                    f"degraded job {job.id} points at a portfolio "
                    f"envelope {key[:12]}…",
                )
            )
            continue
        payload = (
            envelope["payload"]["schedule"]
            if envelope["kind"] == "portfolio"
            else envelope["payload"]
        )
        report = verify_artifact_payload(payload, graphs[job.id])
        if not report["ok"]:
            bad = [c["oracle"] for c in report["checks"] if not c["ok"]]
            found.append(
                violation(
                    "artifact-oracle",
                    f"artifact {key[:12]}… of job {job.id} fails "
                    f"oracle(s) {', '.join(bad)}",
                )
            )

    # 2b. Nothing stored anywhere is marked degraded.
    for key in service.store.iter_keys():
        envelope = service.store.get(key)
        if envelope is not None and envelope["payload"].get("degraded"):
            found.append(
                violation(
                    "degraded-canonical",
                    f"stored envelope {key[:12]}… carries degraded=true",
                )
            )

    # 3. Counter consistency.
    metrics = service.metrics
    submitted = metrics.counter("jobs_submitted")
    settled = (
        metrics.counter("jobs_done")
        + metrics.counter("jobs_failed")
        + metrics.counter("jobs_timeout")
    )
    if submitted != settled:
        found.append(
            violation(
                "counter-consistency",
                f"{submitted} submitted but {settled} settled",
            )
        )
    if metrics_gauge is not None and metrics_gauge != sum(fired.values()):
        found.append(
            violation(
                "counter-consistency",
                f"faults_injected gauge says {metrics_gauge:g} but the "
                f"injector fired {sum(fired.values())}",
            )
        )
    if fired.get("procpool.kill"):
        # A killed worker must be observed as a respawn; the supervisor
        # sweeps every 0.5s, so give it a moment.
        deadline = time.monotonic() + 5.0
        while (
            metrics.counter("worker_respawns") < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        if metrics.counter("worker_respawns") < 1:
            found.append(
                violation(
                    "kill-unobserved",
                    f"{fired['procpool.kill']} worker kill(s) fired "
                    "but no respawn was recorded",
                )
            )
    if not any(fired.values()):
        # Control seed: a fault-free run must leave no scar tissue.
        scars = []
        if metrics.counter("portfolios_degraded"):
            scars.append("degraded portfolio answers")
        if service.store.stats().quarantined:
            scars.append("quarantined envelopes")
        if scars:
            found.append(
                violation(
                    "clean-run-side-effects",
                    f"no fault fired, yet: {', '.join(scars)}",
                )
            )
    return found


@dataclass
class _SeedOutcome:
    jobs: int = 0
    settled: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    rejected: int = 0
    violations: list[ChaosViolation] = field(default_factory=list)


def _run_seed(
    seed: int, scenario: str, plan: FaultPlan, config: ChaosConfig
) -> _SeedOutcome:
    """One seed end-to-end: build the service, submit the mix under the
    plan's injector, settle, audit."""
    from repro.service.api import SchedulingService, ServiceServer
    from repro.service.procpool import ExecutorConfig

    outcome = _SeedOutcome()
    requests = _jobs_for(seed, config, plan)
    exec_config = ExecutorConfig(
        backend="process" if scenario == "process" else "thread",
        workers=2,
        # Tight backoff keeps the campaign's transient retries fast.
        retry_base_delay=0.01,
        retry_max_delay=0.1,
    )
    with tempfile.TemporaryDirectory(prefix="hrms-chaos-") as tmp:
        if scenario == "http":
            server = ServiceServer(tmp, config=exec_config).start()
            service = server.service
        else:
            server = None
            service = SchedulingService(tmp, config=exec_config).start()
        try:
            graphs: dict[str, DependenceGraph] = {}
            jobs = []
            with faults.injected(plan) as injector:
                if injector.should_fire("chaos.breaker.trip"):
                    service.executor.breaker.force_open()
                if server is not None:
                    from repro.service.client import ServiceClient

                    # Retries must outlast the worst armed max_fires (3)
                    # so polling always gets through; injected 500s on
                    # submission are shed work, not lost work.
                    client = ServiceClient(
                        server.url, retries=4, retry_backoff=0.02
                    )
                    for request, graph in requests:
                        try:
                            job_id = client.submit(request)
                        except ServiceError:
                            outcome.rejected += 1
                            continue
                        job = service.job(job_id)
                        jobs.append(job)
                        graphs[job.id] = graph
                else:
                    client = None
                    for request, graph in requests:
                        job = service.submit(request)
                        jobs.append(job)
                        graphs[job.id] = graph
                settled_in_time = _wait_settled(
                    jobs, time.monotonic() + config.settle_timeout
                )
                if client is not None and settled_in_time:
                    # Exercise the HTTP read path under fire too.
                    for job in jobs:
                        record = client.job(job.id)
                        assert record["id"] == job.id
                    gauge = _parse_gauge(
                        client.metrics(), "hrms_faults_injected"
                    )
                else:
                    gauge = _parse_gauge(
                        service.metrics_text(), "hrms_faults_injected"
                    )
                outcome.fired = injector.fired()
            outcome.jobs = len(jobs)
            for job in jobs:
                outcome.settled[job.status] = (
                    outcome.settled.get(job.status, 0) + 1
                )
            outcome.violations = _audit(
                service, jobs, graphs, outcome.fired, gauge,
                seed, scenario, plan,
            )
        finally:
            if server is not None:
                server.stop(abort=True)
            else:
                service.stop(abort=True)
    return outcome


def _shrink_plan(
    seed: int,
    scenario: str,
    plan: FaultPlan,
    invariant: str,
    config: ChaosConfig,
) -> FaultPlan:
    """Minimize *plan* while re-running the seed still violates
    *invariant* — each predicate evaluation is a full seed replay."""
    from repro.qa.shrink import shrink_list

    def still_violates(rules: list[FaultRule]) -> bool:
        candidate = FaultPlan(seed=plan.seed, rules=tuple(rules))
        try:
            replay = _run_seed(seed, scenario, candidate, config)
        except ReproError:
            return False
        return any(v.invariant == invariant for v in replay.violations)

    minimal = shrink_list(
        list(plan.rules),
        still_violates,
        max_evaluations=config.shrink_budget,
    )
    return FaultPlan(seed=plan.seed, rules=tuple(minimal))


def run_chaos(
    config: ChaosConfig | None = None,
    *,
    log=None,
) -> ChaosReport:
    """Run one chaos campaign; violations come back collected (and
    their plans shrunk), never raised mid-campaign."""
    config = config or ChaosConfig()
    say = log or (lambda message: None)
    report = ChaosReport()
    began = time.perf_counter()
    for index in range(config.seeds):
        if (
            config.max_seconds is not None
            and time.perf_counter() - began >= config.max_seconds
        ):
            say(f"wall budget spent after {report.seeds} seed(s)")
            break
        seed = config.seed_base + index
        scenario = scenario_for(index, config)
        plan = plan_for(seed, scenario)
        outcome = _run_seed(seed, scenario, plan, config)
        report.seeds += 1
        report.jobs += outcome.jobs
        report.rejected_submissions += outcome.rejected
        report.scenarios[scenario] = report.scenarios.get(scenario, 0) + 1
        for status, count in outcome.settled.items():
            report.settled[status] = report.settled.get(status, 0) + count
        for point, count in outcome.fired.items():
            if count:
                report.faults_fired[point] = (
                    report.faults_fired.get(point, 0) + count
                )
        if outcome.violations:
            first = outcome.violations[0]
            if config.shrink and plan.rules:
                shrunk = _shrink_plan(
                    seed, scenario, plan, first.invariant, config
                )
                for entry in outcome.violations:
                    entry.plan = shrunk.to_dict()
            report.violations.extend(outcome.violations)
            for entry in outcome.violations:
                say(f"VIOLATION {entry.describe()}")
        else:
            fired = sum(outcome.fired.values())
            say(
                f"seed {seed} [{scenario}] {outcome.jobs} job(s), "
                f"{fired} fault(s) fired: ok"
            )
    report.wall_seconds = time.perf_counter() - began
    return report


def main(argv: list[str] | None = None) -> int:
    """Console entry point: ``hrms-chaos``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="hrms-chaos",
        description="Seeded fault-injection campaign against the "
        "scheduling service: inject store/executor/worker/HTTP faults "
        "and audit the resilience invariants (no job lost or stuck, no "
        "corrupt or degraded artifact served as canonical, metrics "
        "consistent with the injected faults).",
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of seeded scenarios (default: %(default)s)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="jobs submitted per seed (default: %(default)s)",
    )
    parser.add_argument(
        "--seconds", type=float, default=None,
        help="wall-clock budget; the sweep stops between seeds once "
             "spent (default: seeds only)",
    )
    parser.add_argument(
        "--process-stride", type=int, default=10,
        help="every Nth seed runs the process backend with worker "
             "kills (default: %(default)s; 0 disables)",
    )
    parser.add_argument(
        "--http-stride", type=int, default=7,
        help="every Nth seed runs over a live HTTP server "
             "(default: %(default)s; 0 disables)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without minimizing their fault plans",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds wants a positive count, got {args.seeds}")
    if args.jobs < 1:
        parser.error(f"--jobs wants a positive count, got {args.jobs}")

    config = ChaosConfig(
        seeds=args.seeds,
        seed_base=args.seed_base,
        jobs_per_seed=args.jobs,
        process_stride=max(0, args.process_stride),
        http_stride=max(0, args.http_stride),
        max_seconds=args.seconds,
        shrink=not args.no_shrink,
    )
    try:
        report = run_chaos(
            config, log=lambda message: print(f"hrms-chaos: {message}")
        )
    except ReproError as exc:
        print(f"hrms-chaos: {exc}", file=sys.stderr)
        return 1
    print(f"hrms-chaos: {report.summary()}")
    for entry in report.violations:
        print(f"hrms-chaos: VIOLATION {entry.describe()}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
