"""The reproducer corpus: minimized bug cases as JSON, replayed forever.

Every bug the fuzzing campaign ever surfaced is committed under
``tests/corpus/`` as one self-contained JSON envelope; the corpus-replay
test loads each file, re-runs the scenario it describes, and asserts the
oracle that once failed now passes (or, for ``verifier`` entries, that
the verifier now *rejects* what it once silently accepted).  The corpus
is append-only — an entry is the permanent regression test for its bug.

Three entry kinds::

    {"kind": "schedule", "scheduler": …, "machine": …, "graph": …,
     "oracle": …}
        Schedule the graph with the named scheduler and re-assert the
        full per-schedule oracle battery.  Without a ``scheduler`` key
        (a cross-scheduler failure: mii-agreement, portfolio), every
        registered heuristic runs and the MII-agreement oracle is
        re-asserted across them.

    {"kind": "generator", "seed": …, "n_ops": …, "digest": …}
        Rebuild the seeded random DDG and assert its size is exact and
        its structural fingerprint unchanged.

    {"kind": "verifier", "machine": …, "graph": …, "ii": …,
     "start": …, "expect_error": …}
        Build the (deliberately broken) schedule and assert
        ``verify_schedule`` rejects it with a message matching
        ``expect_error``.

Envelopes also carry ``description`` and ``provenance`` (seed, profile,
campaign) so a future reader knows where the case came from without
archaeology.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.errors import ReproError, ScheduleVerificationError
from repro.graph.ddg import DependenceGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.machine.configs import machine_from_config
from repro.machine.machine import MachineModel

CORPUS_SCHEMA = 1
CORPUS_KIND = "hrms-qa-reproducer"

#: The directory the shipped corpus lives in, relative to the repo root.
CORPUS_DIRNAME = "tests/corpus"


def make_reproducer(
    *,
    kind: str,
    oracle: str,
    description: str,
    graph: DependenceGraph | None = None,
    machine: MachineModel | None = None,
    scheduler: str | None = None,
    provenance: dict | None = None,
    **extra: Any,
) -> dict:
    """Assemble one corpus envelope (plain JSON-shaped dict)."""
    envelope: dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "format": CORPUS_KIND,
        "kind": kind,
        "oracle": oracle,
        "description": description,
    }
    if graph is not None:
        envelope["graph"] = graph_to_dict(graph)
    if machine is not None:
        envelope["machine"] = machine.to_dict()
    if scheduler is not None:
        envelope["scheduler"] = scheduler
    if provenance:
        envelope["provenance"] = provenance
    envelope.update(extra)
    return envelope


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-") or "case"


def save_reproducer(directory: str | Path, envelope: dict) -> Path:
    """Write *envelope* under *directory* with a content-derived name.

    The filename folds in the oracle and a digest of the envelope, so
    re-saving the same reproducer is idempotent and distinct bugs never
    collide.
    """
    import hashlib

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    canonical = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    name = f"qa-{_slug(envelope.get('oracle', 'case'))}-{digest}.json"
    path = directory / name
    path.write_text(json.dumps(envelope, indent=2) + "\n", encoding="utf-8")
    return path


def load_corpus(directory: str | Path) -> list[tuple[Path, dict]]:
    """Every ``(path, envelope)`` in *directory*, sorted by filename."""
    directory = Path(directory)
    entries: list[tuple[Path, dict]] = []
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != CORPUS_KIND:
            raise ReproError(
                f"{path}: not a QA reproducer (format "
                f"{data.get('format')!r})"
            )
        if data.get("schema", 0) > CORPUS_SCHEMA:
            raise ReproError(
                f"{path}: reproducer schema {data['schema']} is newer "
                f"than this library understands ({CORPUS_SCHEMA})"
            )
        entries.append((path, data))
    return entries


def replay_entry(envelope: dict) -> None:
    """Re-run one corpus entry; raises (assertion or oracle failure)
    when the bug it pins has regressed."""
    kind = envelope.get("kind")
    if kind == "schedule":
        _replay_schedule(envelope)
    elif kind == "generator":
        _replay_generator(envelope)
    elif kind == "verifier":
        _replay_verifier(envelope)
    else:
        raise ReproError(f"unknown corpus entry kind {kind!r}")


def _replay_schedule(envelope: dict) -> None:
    from repro.mii.analysis import compute_mii
    from repro.qa.oracles import oracle_mii_agreement, run_battery
    from repro.schedulers import registry

    graph = graph_from_dict(envelope["graph"])
    machine = machine_from_config(envelope["machine"])
    analysis = compute_mii(graph, machine)
    options = dict(envelope.get("options", {}))
    named = envelope.get("scheduler")
    if named is not None:
        schedulers = [str(named)]
    else:
        # Cross-scheduler failure (mii-agreement, portfolio): replay
        # with every registered heuristic and re-assert agreement.
        schedulers = [
            name
            for name in registry.available_schedulers()
            if name not in registry.VIRTUAL_SCHEDULERS
            and name not in registry.EXACT_SCHEDULERS
        ]
    schedules = {}
    failed = []
    for name in schedulers:
        schedule = registry.make_scheduler(name, **options).schedule(
            graph, machine, analysis
        )
        schedules[name] = schedule
        failed += [r for r in run_battery(schedule, analysis) if not r.ok]
    if named is None and len(schedules) > 1:
        oracle_mii_agreement(graph, schedules)
    assert not failed, (
        f"corpus regression ({envelope['description']}): "
        + "; ".join(f"[{r.oracle}] {r.detail}" for r in failed)
    )


def _replay_generator(envelope: dict) -> None:
    import random

    from repro.engine import fingerprint_digest
    from repro.workloads.synthetic import random_ddg

    seed = envelope["seed"]
    n_ops = int(envelope["n_ops"])
    graph = random_ddg(random.Random(seed), n_ops)
    graph.validate()
    assert len(graph) == n_ops, (
        f"corpus regression ({envelope['description']}): requested "
        f"{n_ops} operations, generator emitted {len(graph)}"
    )
    expected = envelope.get("digest")
    if expected:
        actual = fingerprint_digest(graph)
        assert actual == expected, (
            f"corpus regression ({envelope['description']}): seed "
            f"{seed!r} no longer reproduces digest {expected[:12]}… "
            f"(got {actual[:12]}…)"
        )


def _replay_verifier(envelope: dict) -> None:
    from repro.schedule.schedule import Schedule
    from repro.schedule.verify import verify_schedule

    graph = graph_from_dict(envelope["graph"])
    machine = machine_from_config(envelope["machine"])
    schedule = Schedule.__new__(Schedule)
    # Bypass the constructor: these entries pin *verifier* behaviour on
    # states the constructor would already reject or normalise away
    # (that silent overlap was the original bug).
    schedule.graph = graph
    schedule.machine = machine
    schedule.ii = int(envelope["ii"])
    schedule.start = {
        str(name): cycle for name, cycle in envelope["start"].items()
    }
    from repro.schedule.schedule import ScheduleStats

    schedule.stats = ScheduleStats()
    try:
        verify_schedule(schedule)
    except ScheduleVerificationError as exc:
        pattern = envelope.get("expect_error")
        assert pattern is None or re.search(pattern, str(exc)), (
            f"corpus regression ({envelope['description']}): verifier "
            f"rejected for the wrong reason: {exc}"
        )
    else:
        raise AssertionError(
            f"corpus regression ({envelope['description']}): "
            "verify_schedule accepted a schedule it must reject"
        )
