"""The differential fuzzing campaign driver.

One campaign is a deterministic sweep: for each seed, a diversity
profile (round-robin) generates a graph; the graph runs through every
compatible (machine × scheduler) combination from the canonical machine
catalog and the scheduler registry; each schedule faces the per-schedule
oracle battery; per (graph, machine) the scheduler set faces the
MII-agreement oracle and a portfolio race over the already-computed
schedules; and an optional parity phase pushes a sample of cases through
live thread- and process-backend services, demanding bit-identical
artifacts.  Failures are collected (never raised mid-campaign) and
shrunk into minimized reproducer envelopes ready for ``tests/corpus/``.

Budgets: ``seeds`` bounds the sweep; ``max_seconds`` stops between cases
when the wall budget is spent, whichever comes first.  Everything is a
pure function of the config, so a failing case can be replayed from its
(profile, seed) coordinates alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ReproError, SolverTimeoutError
from repro.graph.ddg import DependenceGraph
from repro.machine.configs import canonical_machines
from repro.machine.machine import MachineModel
from repro.mii.analysis import compute_mii
from repro.qa.oracles import (
    OracleFailure,
    oracle_mii_agreement,
    run_battery,
)
from repro.qa.profiles import FuzzProfile, fuzz_profiles, profile_by_name
from repro.schedule.schedule import Schedule
from repro.schedulers import registry

#: Op-count ceiling for racing the exact (MILP) schedulers in a
#: campaign; far below the portfolio's 24 so a 200-seed sweep stays
#: interactive even with `include_exact`.
EXACT_FUZZ_OP_LIMIT = 8

#: MILP time limit per exact attempt inside a campaign (seconds).
#: OptReg in particular rides its limit on recurrence-saturated graphs,
#: so this bounds the whole sweep's tail latency.
EXACT_FUZZ_TIME_LIMIT = 3.0


@dataclass(frozen=True)
class CampaignConfig:
    """What one fuzzing campaign sweeps."""

    seeds: int = 50
    seed_base: int = 0
    #: Profile names (default: every registered profile, round-robin).
    profiles: tuple[str, ...] | None = None
    #: Machine names from the canonical catalog (default: all).
    machines: tuple[str, ...] | None = None
    #: Concrete scheduler names (default: every registered non-exact,
    #: non-virtual scheduler).
    schedulers: tuple[str, ...] | None = None
    #: Race the MILP-backed schedulers on graphs small enough for them.
    include_exact: bool = True
    #: Run the exact schedulers on every Nth eligible case only (they
    #: cost seconds where the heuristics cost milliseconds).
    exact_stride: int = 2
    #: Race the portfolio over the schedules already computed per case.
    include_portfolio: bool = True
    #: Wall-clock budget; checked between cases (None = seeds only).
    max_seconds: float | None = None
    #: How many (graph, machine) cases the backend-parity phase replays
    #: through live thread/process services (0 disables the phase).
    parity_cases: int = 0
    #: Shrink failing cases into minimized reproducers.
    shrink: bool = True


@dataclass
class CampaignFailure:
    """One oracle failure, with everything needed to reproduce it."""

    profile: str
    seed: int
    machine: str
    scheduler: str
    oracle: str
    message: str
    #: Serialized minimized graph (the shrunk reproducer when shrinking
    #: ran, the original generated graph otherwise).
    graph: dict
    original_ops: int
    minimized_ops: int

    def describe(self) -> str:
        return (
            f"{self.profile}/seed={self.seed} on {self.machine} via "
            f"{self.scheduler}: [{self.oracle}] {self.message} "
            f"({self.original_ops} ops -> {self.minimized_ops} minimized)"
        )


@dataclass
class CampaignReport:
    """What one campaign observed."""

    cases: int = 0
    schedules: int = 0
    checks: int = 0
    skipped: int = 0
    failures: list[CampaignFailure] = field(default_factory=list)
    parity_checked: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"{self.cases} case(s), {self.schedules} schedule(s), "
            f"{self.checks} oracle check(s), {self.skipped} skipped, "
            f"{self.parity_checked} parity-checked in "
            f"{self.wall_seconds:.1f}s: {status}"
        )


def _machine_supports(machine: MachineModel, graph: DependenceGraph) -> bool:
    """Can *machine* execute every opclass in *graph*?"""
    if machine.is_generic:
        return True
    classes = {unit.name for unit in machine.unit_classes()}
    return all(op.opclass in classes for op in graph.operations())


def _resolve_schedulers(config: CampaignConfig) -> list[str]:
    if config.schedulers is not None:
        known = registry.available_schedulers()
        for name in config.schedulers:
            if name not in known:
                raise ReproError(
                    f"unknown scheduler {name!r}; available: "
                    f"{', '.join(known)}"
                )
        return list(config.schedulers)
    return [
        name
        for name in registry.available_schedulers()
        if name not in registry.VIRTUAL_SCHEDULERS
        and name not in registry.EXACT_SCHEDULERS
    ]


def _resolve_profiles(config: CampaignConfig) -> list[FuzzProfile]:
    if config.profiles is None:
        return list(fuzz_profiles())
    return [profile_by_name(name) for name in config.profiles]


def _resolve_machines(config: CampaignConfig) -> dict[str, MachineModel]:
    catalog = canonical_machines()
    if config.machines is None:
        return catalog
    resolved: dict[str, MachineModel] = {}
    for name in config.machines:
        if name not in catalog:
            raise ReproError(
                f"unknown machine {name!r}; available: "
                f"{', '.join(sorted(catalog))}"
            )
        resolved[name] = catalog[name]
    return resolved


def _make_scheduler(name: str):
    if name in registry.EXACT_SCHEDULERS:
        return registry.make_scheduler(
            name, time_limit=EXACT_FUZZ_TIME_LIMIT
        )
    return registry.make_scheduler(name)


def _schedule_once(
    name: str, graph: DependenceGraph, machine: MachineModel, analysis
) -> Schedule:
    return _make_scheduler(name).schedule(graph, machine, analysis)


def _shrink_failure(
    graph: DependenceGraph,
    machine: MachineModel,
    scheduler: str,
    oracle: str,
) -> DependenceGraph:
    """Minimize *graph* while *scheduler* still fails *oracle* on it."""
    from repro.qa.shrink import shrink_case

    def still_fails(candidate: DependenceGraph) -> bool:
        return _case_fails(candidate, machine, scheduler, oracle)

    # MILP evaluations cost seconds apiece where heuristics cost
    # milliseconds; a tighter budget keeps exact-scheduler shrinks from
    # dominating the campaign's wall time.
    budget = 60 if scheduler in registry.EXACT_SCHEDULERS else 400
    return shrink_case(graph, still_fails, max_evaluations=budget)


def _case_fails(
    graph: DependenceGraph,
    machine: MachineModel,
    scheduler: str,
    oracle: str,
) -> bool:
    try:
        analysis = compute_mii(graph, machine)
        schedule = _schedule_once(scheduler, graph, machine, analysis)
    except SolverTimeoutError:
        return False  # budget ran out: not a reproduction of the bug
    except ReproError:
        return oracle == "schedules"
    if oracle == "schedules":
        return False
    reports = run_battery(schedule, analysis)
    return any(r.oracle == oracle and not r.ok for r in reports)


def run_campaign(
    config: CampaignConfig | None = None,
    *,
    log=None,
) -> CampaignReport:
    """Run one fuzzing campaign; never raises on oracle failures —
    they come back collected (and shrunk) on the report."""
    config = config or CampaignConfig()
    say = log or (lambda message: None)
    profiles = _resolve_profiles(config)
    machines = _resolve_machines(config)
    schedulers = _resolve_schedulers(config)
    report = CampaignReport()
    began = time.perf_counter()
    parity_sample: list[tuple[DependenceGraph, str]] = []

    def out_of_time() -> bool:
        return (
            config.max_seconds is not None
            and time.perf_counter() - began >= config.max_seconds
        )

    def record_failure(
        profile: FuzzProfile,
        seed: int,
        machine_name: str,
        scheduler: str,
        oracle: str,
        message: str,
        graph: DependenceGraph,
    ) -> None:
        minimized = graph
        if config.shrink:
            minimized = _shrink_failure(
                graph, machines[machine_name], scheduler, oracle
            )
        from repro.graph.serialization import graph_to_dict

        failure = CampaignFailure(
            profile=profile.name,
            seed=seed,
            machine=machine_name,
            scheduler=scheduler,
            oracle=oracle,
            message=message,
            graph=graph_to_dict(minimized),
            original_ops=len(graph),
            minimized_ops=len(minimized),
        )
        report.failures.append(failure)
        say(f"FAIL {failure.describe()}")

    for index in range(config.seeds):
        if out_of_time():
            say(f"wall budget spent after {report.cases} case(s)")
            break
        seed = config.seed_base + index
        profile = profiles[index % len(profiles)]
        graph = profile.build(seed)
        report.cases += 1
        for machine_name, machine in machines.items():
            if not _machine_supports(machine, graph):
                report.skipped += 1
                continue
            analysis = compute_mii(graph, machine)
            names = list(schedulers)
            if (
                config.include_exact
                and len(graph) <= EXACT_FUZZ_OP_LIMIT
                and index % max(1, config.exact_stride) == 0
            ):
                names += [
                    name
                    for name in registry.EXACT_SCHEDULERS
                    if name in registry.available_schedulers()
                    and name not in names
                ]
            schedules: dict[str, Schedule] = {}
            for name in names:
                try:
                    schedule = _schedule_once(name, graph, machine, analysis)
                except SolverTimeoutError:
                    # MILP budget exhausted with no incumbent:
                    # inconclusive, not an oracle failure.
                    report.skipped += 1
                    continue
                except ReproError as exc:
                    report.checks += 1
                    record_failure(
                        profile, seed, machine_name, name,
                        "schedules",
                        f"scheduler raised {type(exc).__name__}: {exc}",
                        graph,
                    )
                    continue
                report.schedules += 1
                schedules[name] = schedule
                reports = run_battery(schedule, analysis)
                report.checks += len(reports)
                for oracle_report in reports:
                    if not oracle_report.ok:
                        record_failure(
                            profile, seed, machine_name, name,
                            oracle_report.oracle, oracle_report.detail,
                            graph,
                        )
            if len(schedules) > 1:
                report.checks += 1
                try:
                    oracle_mii_agreement(graph, schedules)
                except OracleFailure as exc:
                    record_failure(
                        profile, seed, machine_name, "*",
                        exc.oracle, exc.detail, graph,
                    )
            if config.include_portfolio and len(schedules) > 1:
                report.checks += 1
                failure = _check_portfolio(graph, machine, schedules)
                if failure is not None:
                    record_failure(
                        profile, seed, machine_name, "portfolio",
                        failure[0], failure[1], graph,
                    )
            if len(parity_sample) < config.parity_cases:
                parity_sample.append((graph, machine_name))

    if parity_sample and not out_of_time():
        say(f"parity phase: {len(parity_sample)} case(s) x 2 backends")
        checked, parity_failures = _check_backend_parity(parity_sample)
        report.parity_checked = checked
        report.checks += checked
        for machine_name, graph, message in parity_failures:
            from repro.graph.serialization import graph_to_dict

            report.failures.append(
                CampaignFailure(
                    profile="parity",
                    seed=-1,
                    machine=machine_name,
                    scheduler="*",
                    oracle="backend-parity",
                    message=message,
                    graph=graph_to_dict(graph),
                    original_ops=len(graph),
                    minimized_ops=len(graph),
                )
            )
    report.wall_seconds = time.perf_counter() - began
    return report


def _check_portfolio(
    graph: DependenceGraph,
    machine: MachineModel,
    schedules: dict[str, Schedule],
) -> tuple[str, str] | None:
    """Race the portfolio over precomputed members; the winner must be
    a member's schedule and beat no member on the primary objective."""
    from repro.portfolio import race_portfolio

    members = tuple(
        name
        for name in schedules
        if name not in registry.EXACT_SCHEDULERS
    )
    if len(members) < 2:
        return None
    try:
        result = race_portfolio(
            graph, machine, members=members, precomputed=schedules
        )
    except ReproError as exc:
        return (
            "portfolio",
            f"race over precomputed members raised "
            f"{type(exc).__name__}: {exc}",
        )
    best_ii = min(schedules[name].ii for name in members)
    if result.schedule.ii > best_ii:
        return (
            "portfolio",
            f"lexicographic winner {result.winner!r} has II "
            f"{result.schedule.ii}, but member II {best_ii} was available",
        )
    return None


def _check_backend_parity(
    sample: list[tuple[DependenceGraph, str]],
) -> tuple[int, list[tuple[str, DependenceGraph, str]]]:
    """Run *sample* through a thread- and a process-backend service and
    demand bit-identical artifacts (wall-clock fields excepted)."""
    import tempfile

    from repro.graph.serialization import graph_to_dict
    from repro.service import ExecutorConfig, SchedulingService

    # "integrity" digests the whole envelope — wall-clock fields
    # included — so it varies run to run exactly like "seconds".
    varying = ("seconds", "integrity")

    def scrub(value):
        if isinstance(value, dict):
            return {
                key: scrub(item)
                for key, item in value.items()
                if key not in varying
            }
        if isinstance(value, list):
            return [scrub(item) for item in value]
        return value

    requests = [
        {
            "kind": "schedule",
            "graph": graph_to_dict(graph),
            "machine": machine_name,
        }
        for graph, machine_name in sample
    ]

    def run(backend: str) -> list[dict | None]:
        envelopes: list[dict | None] = []
        with tempfile.TemporaryDirectory(prefix="hrms-qa-") as tmp:
            service = SchedulingService(
                tmp, config=ExecutorConfig(backend=backend, workers=2)
            ).start()
            try:
                jobs = [service.submit(request) for request in requests]
                deadline = time.monotonic() + 300
                while any(
                    job.status not in ("done", "failed") for job in jobs
                ):
                    if time.monotonic() > deadline:
                        raise ReproError(
                            f"backend-parity: {backend} backend timed out"
                        )
                    time.sleep(0.005)
                for job in jobs:
                    if job.status != "done":
                        envelopes.append(None)
                    else:
                        envelopes.append(
                            service.store.get(job.result["artifact"])
                        )
            finally:
                service.stop()
        return envelopes

    thread_envelopes = run("thread")
    process_envelopes = run("process")
    failures: list[tuple[str, DependenceGraph, str]] = []
    for (graph, machine_name), a, b in zip(
        sample, thread_envelopes, process_envelopes
    ):
        if a is None or b is None:
            failures.append(
                (
                    machine_name,
                    graph,
                    f"{graph.name}: job failed on the "
                    f"{'thread' if a is None else 'process'} backend",
                )
            )
        elif scrub(a) != scrub(b):
            failures.append(
                (
                    machine_name,
                    graph,
                    f"{graph.name}: thread and process backends produced "
                    f"different artifacts for the same request",
                )
            )
    return len(sample), failures
