"""Diversity profiles for the fuzzing campaign's graph population.

Hand-picked workloads cluster in the comfortable middle of the loop
space; the profiles here deliberately pull toward the edges where
scheduler bugs hide: recurrence-saturated bodies (RecMII-bound, deep
backward edges), wide embarrassingly-parallel bodies (resource-bound,
huge same-row pressure), unpipelined-heavy mixes (multi-row circular-arc
reservations), and degenerate tiny graphs (single operation, lone
self-recurrence, two-op chains) that exercise every ``max(…, 1)`` and
empty-window corner at once.

Each profile owns its size range and how a graph is built; everything is
a pure function of ``(profile, seed)`` so a campaign case can be named,
replayed and shrunk from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import FADD, FDIV, FMUL, FSQRT, MEM, Operation
from repro.workloads.synthetic import GeneratorProfile, random_ddg


@dataclass(frozen=True)
class FuzzProfile:
    """One diversity profile: a name, a size range, and a builder."""

    name: str
    min_ops: int
    max_ops: int
    #: ``builder(rng, n_ops, name) -> DependenceGraph``
    builder: Callable[[random.Random, int, str], DependenceGraph]

    def build(self, seed: int, *, prefix: str = "qa") -> DependenceGraph:
        """The graph this profile generates for *seed* (deterministic)."""
        rng = random.Random(f"{prefix}-{self.name}-{seed}")
        n_ops = rng.randint(self.min_ops, self.max_ops)
        name = f"{prefix}-{self.name}-{seed}"
        graph = self.builder(rng, n_ops, name)
        graph.validate()
        return graph


def _generator(profile: GeneratorProfile):
    def build(rng: random.Random, n_ops: int, name: str) -> DependenceGraph:
        return random_ddg(rng, n_ops, name=name, profile=profile)

    return build


def _build_tiny(rng: random.Random, n_ops: int, name: str) -> DependenceGraph:
    """Degenerate graphs the generator cannot produce: 1–3 operations,
    including a lone op, a lone self-recurrence, and a 2-op cycle."""
    graph = DependenceGraph(name)
    shape = rng.randrange(4)
    if n_ops == 1 or shape == 0:
        op = Operation("solo", rng.choice((1, 2, 4, 17)), FADD)
        graph.add_operation(op)
        if rng.random() < 0.5:
            # accumulator: x = x + …, distance-1 self-dependence
            graph.add_edge(Edge("solo", "solo", 1, DependenceKind.REGISTER))
        return graph
    if shape == 1:
        # Two-op loop-carried cycle: a -> b (0), b -> a (>=1).
        graph.add_operation(Operation("a", rng.choice((1, 4)), FADD))
        graph.add_operation(Operation("b", rng.choice((1, 4)), FMUL))
        graph.add_edge(Edge("a", "b", 0, DependenceKind.REGISTER))
        graph.add_edge(
            Edge("b", "a", rng.randint(1, 3), DependenceKind.REGISTER)
        )
        return graph
    if shape == 2:
        # Load feeding a store: no value chain beyond memory traffic.
        graph.add_operation(Operation("ld", 2, MEM))
        graph.add_operation(
            Operation("st", 1, MEM, produces_value=False)
        )
        graph.add_edge(Edge("ld", "st", 0, DependenceKind.REGISTER))
        return graph
    return random_ddg(rng, max(2, n_ops), name=name)


#: Tight recurrences: every loop carries several deep backward edges, so
#: RecMII dominates and the schedulers' recurrence machinery is always
#: on the critical path.
_TIGHT = GeneratorProfile(
    recurrence_probability=1.0,
    max_extra_recurrences=4,
    operand_window=3,
    two_operand_probability=0.85,
    distances=[(1, 0.6), (2, 0.25), (3, 0.1), (4, 0.05)],
)

#: Wide parallel bodies: zero recurrences, shallow chains, load-heavy —
#: pure resource pressure with maximal same-row competition.
_WIDE = GeneratorProfile(
    recurrence_probability=0.0,
    load_fraction=0.45,
    store_fraction=0.18,
    two_operand_probability=0.35,
    operand_window=24,
)

#: Unpipelined-heavy: divides and square roots dominate, so multi-row
#: circular-arc reservations (the hard case of the MRT and the
#: verifier's exact packer) are the norm rather than the exception.
_UNPIPELINED = GeneratorProfile(
    compute_mix=[
        (FDIV, 17, 0.45),
        (FSQRT, 30, 0.25),
        (FADD, 4, 0.20),
        (FMUL, 4, 0.10),
    ],
    recurrence_probability=0.4,
)


def _build_kernel(rng: random.Random, n_ops: int, name: str) -> DependenceGraph:
    """A *real* loop body: one bundled front-end kernel, compiled.

    The synthetic generator explores the statistical edges of the loop
    space; this profile anchors the campaign to the structured shapes
    real code actually produces (reductions, stencils, IIR recurrences,
    indirect accesses) by drawing from
    :data:`repro.frontend.kernels.KERNEL_SOURCES` under a
    deterministically chosen lowering profile.
    """
    from repro.frontend.kernels import kernel_names, kernel_source
    from repro.frontend.pipeline import compile_source, profile_by_name

    kernel = rng.choice(kernel_names())
    lowering = rng.choice(("perfect_club", "govindarajan"))
    loop = compile_source(
        kernel_source(kernel),
        name=kernel,
        profile=profile_by_name(lowering),
    )
    graph = loop.graph
    # Rename to the campaign's case name so reproducers stay traceable
    # to their (profile, seed) origin like every other profile's graphs.
    graph.name = f"{name}-{kernel}-{lowering}"
    return graph


def fuzz_profiles() -> tuple[FuzzProfile, ...]:
    """Every diversity profile, in the round-robin order campaigns use."""
    return (
        FuzzProfile("baseline", 4, 48, _generator(GeneratorProfile())),
        FuzzProfile("tight-recurrence", 4, 28, _generator(_TIGHT)),
        FuzzProfile("wide-parallel", 8, 64, _generator(_WIDE)),
        FuzzProfile("unpipelined-heavy", 4, 24, _generator(_UNPIPELINED)),
        FuzzProfile("tiny", 1, 4, _build_tiny),
        FuzzProfile("kernels", 3, 26, _build_kernel),
    )


def profile_names() -> list[str]:
    """Names of every registered fuzz profile."""
    return [profile.name for profile in fuzz_profiles()]


def profile_by_name(name: str) -> FuzzProfile:
    """Look up one profile; raises ``ValueError`` on unknown names."""
    for profile in fuzz_profiles():
        if profile.name == name:
            return profile
    raise ValueError(
        f"unknown fuzz profile {name!r}; available: "
        f"{', '.join(profile_names())}"
    )
