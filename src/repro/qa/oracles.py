"""The oracle battery: every independent way the library can judge a
schedule, run together.

Each oracle is a small function that raises :class:`OracleFailure`
(naming itself) when its invariant is violated:

``legal``
    :func:`repro.schedule.verify.verify_schedule` — completeness,
    dependences, exact resource packing.
``ii-bounds``
    The achieved II must be at least the MII lower bound and no worse
    than the driver's sequential-fallback upper bound; the schedule's
    recorded MII bookkeeping must match an independent recomputation.
``sim-reads``
    Cycle-accurate replay: every register read must happen at or after
    its producing instance completes.
``sim-maxlive``
    The replay's steady-state peak live count must equal the
    closed-form MaxLive (the paper's register-pressure metric); any gap
    means either the analytics or the simulator lies.
``mii-agreement``
    Schedulers disagree about *schedules*, never about lower bounds:
    every scheduler run on the same (graph, machine) must report the
    identical ResMII/RecMII/MII.
``backend-parity``
    The thread and process service backends must produce bit-identical
    artifacts for identical requests (checked at campaign level, where
    a live service pair exists).

``run_battery`` executes the per-schedule oracles and returns one
:class:`OracleReport` per oracle — collecting *all* failures instead of
stopping at the first, because a shrink loop needs to know which
specific oracle to hold constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.session import session_for
from repro.errors import ReproError, ScheduleVerificationError
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.mii.analysis import MIIResult
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule
from repro.schedule.verify import verify_schedule
from repro.sim.simulator import simulate


class OracleFailure(ReproError):
    """One oracle's invariant was violated by one schedule."""

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.detail = message


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one oracle on one schedule."""

    oracle: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "ok": self.ok, "detail": self.detail}


def ii_upper_bound(graph: DependenceGraph, mii: int) -> int:
    """The II every driver is guaranteed to reach — the same
    :func:`~repro.schedulers.base.default_ii_limit` the driver's II
    search and the sequential fallback use, so the oracle can never
    drift from the implementation."""
    from repro.schedulers.base import default_ii_limit

    return default_ii_limit(graph, mii)


def oracle_legal(schedule: Schedule) -> None:
    """``legal``: the algebraic verifier accepts the schedule."""
    try:
        verify_schedule(schedule)
    except ScheduleVerificationError as exc:
        raise OracleFailure("legal", str(exc)) from exc


def oracle_ii_bounds(schedule: Schedule, analysis: MIIResult) -> None:
    """``ii-bounds``: MII <= II <= sequential upper bound, and the
    schedule's recorded bounds match an independent recomputation."""
    mii = analysis.mii
    upper = ii_upper_bound(schedule.graph, mii)
    if schedule.ii < mii:
        raise OracleFailure(
            "ii-bounds",
            f"{schedule.graph.name}: II {schedule.ii} beats the MII lower "
            f"bound {mii} (ResMII {analysis.resmii}, RecMII "
            f"{analysis.recmii}) — the schedule or the bound is wrong",
        )
    if schedule.ii > upper:
        raise OracleFailure(
            "ii-bounds",
            f"{schedule.graph.name}: II {schedule.ii} exceeds the "
            f"sequential fallback bound {upper}",
        )
    stats = schedule.stats
    if stats.mii and stats.mii != mii:
        raise OracleFailure(
            "ii-bounds",
            f"{schedule.graph.name}: schedule reports MII {stats.mii}, "
            f"independent analysis says {mii}",
        )


def oracle_simulation(schedule: Schedule) -> None:
    """``sim-reads`` + ``sim-maxlive``: replay the schedule and compare
    the observed steady state against the closed-form analytics."""
    try:
        report = simulate(schedule, check_reads=True)
    except ScheduleVerificationError as exc:
        raise OracleFailure("sim-reads", str(exc)) from exc
    expected = max_live(schedule)
    if report.peak_live_steady != expected:
        raise OracleFailure(
            "sim-maxlive",
            f"{schedule.graph.name}: simulator saw steady-state peak "
            f"{report.peak_live_steady} live values over window "
            f"{report.steady_window}, closed-form MaxLive is {expected}",
        )


def oracle_mii_agreement(
    graph: DependenceGraph, schedules: dict[str, Schedule]
) -> None:
    """``mii-agreement``: every scheduler reported the same lower bounds."""
    bounds: dict[tuple[int, int, int], list[str]] = {}
    for name, schedule in schedules.items():
        stats = schedule.stats
        key = (stats.resmii, stats.recmii, stats.mii)
        bounds.setdefault(key, []).append(name)
    if len(bounds) > 1:
        described = "; ".join(
            f"{'/'.join(sorted(names))}: ResMII={key[0]} RecMII={key[1]} "
            f"MII={key[2]}"
            for key, names in sorted(bounds.items())
        )
        raise OracleFailure(
            "mii-agreement",
            f"{graph.name}: schedulers disagree on lower bounds — "
            f"{described}",
        )


#: Oracle names in battery order (backend-parity runs at campaign
#: level, mii-agreement across a scheduler set — both outside
#: :func:`run_battery`).
BATTERY = ("legal", "ii-bounds", "sim-reads", "sim-maxlive")


def run_battery(
    schedule: Schedule, analysis: MIIResult | None = None
) -> list[OracleReport]:
    """Run every per-schedule oracle; one report per oracle."""
    if analysis is None:
        # Batteries over schedules of the same loop × machine (fuzz
        # campaigns, verify endpoints) share one MII analysis through
        # the process-wide session cache.
        analysis = session_for(schedule.graph, schedule.machine).analysis
    reports: list[OracleReport] = []
    for oracle, check in (
        ("legal", lambda: oracle_legal(schedule)),
        ("ii-bounds", lambda: oracle_ii_bounds(schedule, analysis)),
    ):
        try:
            check()
        except OracleFailure as exc:
            reports.append(OracleReport(oracle, False, exc.detail))
        else:
            reports.append(OracleReport(oracle, True))
    try:
        oracle_simulation(schedule)
    except OracleFailure as exc:
        if exc.oracle == "sim-reads":
            # sim-maxlive was never evaluated: the replay aborted.
            reports.append(OracleReport("sim-reads", False, exc.detail))
        else:
            reports.append(OracleReport("sim-reads", True))
            reports.append(OracleReport("sim-maxlive", False, exc.detail))
    else:
        reports.append(OracleReport("sim-reads", True))
        reports.append(OracleReport("sim-maxlive", True))
    return reports


def verify_artifact_payload(
    payload: dict,
    graph: DependenceGraph,
    machine: MachineModel | None = None,
) -> dict:
    """Re-verify a stored schedule artifact payload against *graph*.

    The backbone of ``POST /v1/verify``: rebuilds the
    :class:`Schedule` (digest-checked against the supplied graph),
    runs the per-schedule oracle battery, and reports every check.
    Raises :class:`~repro.errors.JobError` via
    :func:`~repro.service.executor.schedule_from_payload` when the
    graph does not match the artifact.
    """
    from repro.service.executor import schedule_from_payload

    schedule = schedule_from_payload(payload, graph, machine)
    analysis = session_for(schedule.graph, schedule.machine).analysis
    reports = run_battery(schedule, analysis)
    return {
        "ok": all(report.ok for report in reports),
        "graph": schedule.graph.name,
        "scheduler": schedule.stats.scheduler,
        "ii": schedule.ii,
        "mii": analysis.mii,
        "checks": [report.to_dict() for report in reports],
    }
