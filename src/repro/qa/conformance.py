"""Golden kernel conformance suite.

The fuzzing campaign (:mod:`repro.qa.campaign`) exercises the scheduler
catalog on *synthetic* populations; this module locks scheduler quality
on the **real** loop bodies the paper's evaluation rests on.  Every
kernel in :data:`repro.frontend.kernels.KERNEL_SOURCES` is compiled
through the front end, submitted through the service's store/executor
path (the same ``POST /v1/jobs`` → ``POST /v1/verify`` flow an external
client would use) across the full registered scheduler catalog × the
canonical machine configurations, faces the QA oracle battery, and is
diffed against committed goldens recording per-(kernel, machine,
scheduler) expected II, MII bounds, MaxLive and the compiled kernel's
DDG fingerprint digest.

This is the compiler-style "golden output" regression discipline: a
schedule quality change anywhere in the matrix — a new II, a different
MaxLive, a kernel that stops compiling to the same graph — names the
exact cell that moved and by how much.  Intentional improvements are
re-blessed with ``hrms-conformance --bless``; everything else is a
regression.

Determinism notes: goldens record only schedule *identity* (II, MII
bookkeeping, MaxLive, digests), never wall time; the exact (MILP)
schedulers run without a time limit on small kernels only, so their
cells are optimal — and therefore deterministic — rather than
budget-dependent.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.frontend.kernels import KERNEL_SOURCES, kernel_source
from repro.machine.configs import canonical_machines
from repro.schedulers import registry

#: Golden file schema version.
GOLDEN_SCHEMA = 1

#: ``kind`` stamped into every golden envelope.
GOLDEN_KIND = "hrms-conformance-golden"

#: Where the committed goldens live, relative to the repo root.
GOLDEN_DIRNAME = "tests/goldens/conformance"

#: Largest kernel (operation count) the exact MILP schedulers run on.
#: Small enough that an *unlimited* solve finishes in seconds — exact
#: cells must be optimal, not time-limit-dependent, to stay golden.
EXACT_OP_LIMIT = 10

#: Largest MII the exact schedulers accept.  The MILP time horizon
#: scales with II, not just operation count: a 6-op kernel with an
#: unpipelined sqrt (MII 30) runs the register-optimal formulation into
#: its time limit, and a timed-out incumbent is not a golden.
EXACT_MII_LIMIT = 12

#: Lowering profile per canonical machine: the Govindarajan study uses
#: its own latency table, everything else lowers with the Perfect-Club
#: profile (the front end's default).
MACHINE_PROFILES = {
    "generic4": "perfect_club",
    "govindarajan": "govindarajan",
    "perfect-club": "perfect_club",
}

#: The per-cell quantities a golden records (schedule identity only —
#: no wall-clock fields).
CELL_FIELDS = ("ii", "mii", "resmii", "recmii", "maxlive")


@dataclass(frozen=True)
class ConformanceConfig:
    """What one conformance run sweeps."""

    #: Kernel names (default: the whole bundled library).
    kernels: tuple[str, ...] | None = None
    #: Canonical machine names (default: all).
    machines: tuple[str, ...] | None = None
    #: Concrete scheduler names (default: every registered heuristic).
    schedulers: tuple[str, ...] | None = None
    #: Race the virtual portfolio over the registered heuristics.
    include_portfolio: bool = True
    #: Run the exact (MILP) schedulers on kernels small enough for an
    #: unlimited — hence deterministic — solve.
    include_exact: bool = True
    exact_op_limit: int = EXACT_OP_LIMIT
    exact_mii_limit: int = EXACT_MII_LIMIT
    #: Service worker threads executing the matrix.
    workers: int = 4
    #: Store directory (``None`` = throwaway temporary store).
    store_root: str | None = None


@dataclass
class ConformanceCell:
    """One (kernel, machine, scheduler) coordinate of the matrix."""

    kernel: str
    machine: str
    scheduler: str
    status: str  # "ok" | "skipped" | "failed"
    ii: int | None = None
    mii: int | None = None
    resmii: int | None = None
    recmii: int | None = None
    maxlive: int | None = None
    #: DDG fingerprint digest of the compiled kernel (per the machine's
    #: lowering profile).
    digest: str | None = None
    artifact: str | None = None
    detail: str = ""

    @property
    def coordinate(self) -> str:
        return f"{self.kernel} @ {self.machine} / {self.scheduler}"

    def golden_values(self) -> dict:
        return {name: getattr(self, name) for name in CELL_FIELDS}


@dataclass
class ConformanceResult:
    """Everything one conformance run observed."""

    cells: list[ConformanceCell] = field(default_factory=list)
    #: What the run actually swept — the differ only compares golden
    #: cells inside this envelope, so a deliberately partial run (say
    #: ``--no-exact`` in a fast CI tier) is not "missing" cells.
    machines_swept: tuple[str, ...] = ()
    schedulers_swept: tuple[str, ...] = ()
    #: Oracle failures and scheduler errors ("x failed: why").
    failures: list[str] = field(default_factory=list)
    #: (kernel, profile) → compiled-graph fingerprint digest.
    digests: dict[str, dict[str, str]] = field(default_factory=dict)
    #: (kernel, profile) → compiled-graph operation count.
    ops: dict[str, dict[str, int]] = field(default_factory=dict)
    oracle_checks: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def count(self, status: str) -> int:
        return sum(1 for cell in self.cells if cell.status == status)

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"{self.count('ok')} cell(s) ok, {self.count('skipped')} "
            f"skipped, {self.count('failed')} failed, "
            f"{self.oracle_checks} oracle check(s) in "
            f"{self.wall_seconds:.1f}s: {status}"
        )

    def kernels(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.kernel, None)
        return list(seen)


def resolve_kernels(names: tuple[str, ...] | None) -> list[str]:
    """The kernels a config sweeps, library order."""
    if names is None:
        return list(KERNEL_SOURCES)
    for name in names:
        if name not in KERNEL_SOURCES:
            raise ReproError(
                f"unknown kernel {name!r}; available: "
                f"{', '.join(KERNEL_SOURCES)}"
            )
    return list(names)


def resolve_machines(names: tuple[str, ...] | None) -> list[str]:
    """The canonical machine names a config sweeps."""
    catalog = canonical_machines()
    if names is None:
        return list(catalog)
    for name in names:
        if name not in catalog:
            raise ReproError(
                f"unknown machine {name!r}; available: "
                f"{', '.join(catalog)}"
            )
    return list(names)


def resolve_schedulers(config: ConformanceConfig) -> list[str]:
    """The concrete (non-exact, non-virtual) scheduler names swept."""
    known = registry.available_schedulers()
    if config.schedulers is not None:
        for name in config.schedulers:
            if name not in known:
                raise ReproError(
                    f"unknown scheduler {name!r}; available: "
                    f"{', '.join(known)}"
                )
        return [
            name
            for name in config.schedulers
            if name not in registry.VIRTUAL_SCHEDULERS
            and name not in registry.EXACT_SCHEDULERS
        ]
    return [
        name
        for name in known
        if name not in registry.VIRTUAL_SCHEDULERS
        and name not in registry.EXACT_SCHEDULERS
    ]


def _compile_kernels(
    kernels: list[str], profiles: list[str]
) -> dict[tuple[str, str], "object"]:
    """(kernel, profile) → compiled :class:`DependenceGraph`."""
    from repro.frontend.pipeline import compile_source, profile_by_name

    compiled = {}
    for kernel in kernels:
        for profile in profiles:
            loop = compile_source(
                kernel_source(kernel),
                name=kernel,
                profile=profile_by_name(profile),
            )
            compiled[(kernel, profile)] = loop.graph
    return compiled


def _machine_supports(machine, graph) -> bool:
    if machine.is_generic:
        return True
    classes = {unit.name for unit in machine.unit_classes()}
    return all(op.opclass in classes for op in graph.operations())


def run_conformance(
    config: ConformanceConfig | None = None, *, log=None
) -> ConformanceResult:
    """Run the kernel × machine × scheduler matrix through a live
    (in-process) scheduling service and the oracle battery.

    Every cell is a real service submission — the request carries the
    kernel's *source text*, so the executor compiles it exactly the way
    ``POST /v1/jobs`` would — and every produced artifact is re-verified
    through the service's ``POST /v1/verify`` path against a locally
    compiled graph (which also proves compilation is deterministic
    between submission and verification: the digests must match).

    Oracle failures and scheduler errors are collected on the result,
    never raised — the caller diffs the surviving cells against the
    goldens.
    """
    import tempfile

    from repro.engine.mindist import fingerprint_digest
    from repro.graph.serialization import graph_to_dict
    from repro.mii.analysis import compute_mii
    from repro.service import ExecutorConfig, SchedulingService

    config = config or ConformanceConfig()
    say = log or (lambda message: None)
    kernels = resolve_kernels(config.kernels)
    machines = resolve_machines(config.machines)
    schedulers = resolve_schedulers(config)
    catalog = canonical_machines()
    profiles = sorted({MACHINE_PROFILES[name] for name in machines})
    compiled = _compile_kernels(kernels, profiles)

    result = ConformanceResult()
    began = time.perf_counter()
    for kernel in kernels:
        result.digests[kernel] = {
            profile: fingerprint_digest(compiled[(kernel, profile)])
            for profile in profiles
        }
        result.ops[kernel] = {
            profile: len(compiled[(kernel, profile)])
            for profile in profiles
        }

    exact = (
        [
            name
            for name in registry.EXACT_SCHEDULERS
            if name in registry.available_schedulers()
        ]
        if config.include_exact
        else []
    )
    result.machines_swept = tuple(machines)
    result.schedulers_swept = tuple(
        schedulers
        + exact
        + (["portfolio"] if config.include_portfolio else [])
    )

    mii_cache: dict[tuple[str, str], int] = {}

    def mii_of(kernel: str, machine_name: str) -> int:
        key = (kernel, machine_name)
        if key not in mii_cache:
            graph = compiled[(kernel, MACHINE_PROFILES[machine_name])]
            mii_cache[key] = compute_mii(graph, catalog[machine_name]).mii
        return mii_cache[key]

    def plan_cell(kernel: str, machine_name: str, scheduler: str):
        """The request for one cell, or a skipped-cell record."""
        profile = MACHINE_PROFILES[machine_name]
        graph = compiled[(kernel, profile)]
        if not _machine_supports(catalog[machine_name], graph):
            classes = {u.name for u in catalog[machine_name].unit_classes()}
            missing = sorted(
                {
                    op.opclass
                    for op in graph.operations()
                    if op.opclass not in classes
                }
            )
            return ConformanceCell(
                kernel, machine_name, scheduler, "skipped",
                detail=f"machine has no {'/'.join(missing)} unit",
            )
        if scheduler in registry.EXACT_SCHEDULERS:
            if len(graph) > config.exact_op_limit:
                return ConformanceCell(
                    kernel, machine_name, scheduler, "skipped",
                    detail=f"{len(graph)} ops > exact-op-limit "
                    f"{config.exact_op_limit}",
                )
            mii = mii_of(kernel, machine_name)
            if mii > config.exact_mii_limit:
                return ConformanceCell(
                    kernel, machine_name, scheduler, "skipped",
                    detail=f"mii {mii} > exact-mii-limit "
                    f"{config.exact_mii_limit}",
                )
        return {
            "kind": "schedule",
            "source": kernel_source(kernel),
            "name": kernel,
            "profile": profile,
            "machine": machine_name,
            "scheduler": scheduler,
        }

    def settle(service, jobs, what: str) -> None:
        deadline = time.monotonic() + 600
        while any(
            job.status not in ("done", "failed") for job in jobs.values()
        ):
            if time.monotonic() > deadline:
                raise ReproError(f"conformance: {what} jobs timed out")
            time.sleep(0.005)

    def run_wave(service, wave) -> None:
        """Submit one wave of cells, settle it, verify every artifact."""
        jobs = {}
        for cell_coord, request in wave:
            jobs[cell_coord] = service.submit(request)
        settle(service, jobs, "matrix")
        for (kernel, machine_name, scheduler), job in jobs.items():
            cell = ConformanceCell(kernel, machine_name, scheduler, "ok")
            profile = MACHINE_PROFILES[machine_name]
            graph = compiled[(kernel, profile)]
            if job.status != "done":
                cell.status = "failed"
                cell.detail = f"job failed: {job.error}"
                result.failures.append(f"{cell.coordinate}: {cell.detail}")
                result.cells.append(cell)
                continue
            report = service.verify_artifact(
                {
                    "artifact": job.result["artifact"],
                    "graph": graph_to_dict(graph),
                }
            )
            result.oracle_checks += len(report["checks"])
            if not report["ok"]:
                cell.status = "failed"
                failed = [
                    check["oracle"]
                    for check in report["checks"]
                    if not check["ok"]
                ]
                cell.detail = f"oracle failure(s): {', '.join(failed)}"
                result.failures.append(f"{cell.coordinate}: {cell.detail}")
            envelope = service.store.get(job.result["artifact"])
            payload = envelope["payload"]
            if envelope["kind"] == "portfolio":
                payload = payload["schedule"]
            cell.ii = payload["ii"]
            cell.mii = payload["mii"]
            cell.resmii = payload["resmii"]
            cell.recmii = payload["recmii"]
            cell.maxlive = payload["maxlive"]
            cell.digest = payload["graph"]["digest"]
            cell.artifact = job.result["artifact"]
            expected = result.digests[kernel][profile]
            if cell.digest != expected:
                cell.status = "failed"
                cell.detail = (
                    f"artifact digest {cell.digest[:12]}… != locally "
                    f"compiled {expected[:12]}… (compilation is "
                    "non-deterministic!)"
                )
                result.failures.append(f"{cell.coordinate}: {cell.detail}")
            result.cells.append(cell)

    def sweep(service) -> None:
        # Two waves per matrix: concrete schedulers first so the
        # portfolio wave races over store-warmed members instead of
        # recomputing them.
        concrete_wave, portfolio_wave = [], []
        for kernel in kernels:
            for machine_name in machines:
                for scheduler in schedulers + exact:
                    planned = plan_cell(kernel, machine_name, scheduler)
                    if isinstance(planned, ConformanceCell):
                        result.cells.append(planned)
                    else:
                        concrete_wave.append(
                            ((kernel, machine_name, scheduler), planned)
                        )
                if config.include_portfolio:
                    planned = plan_cell(kernel, machine_name, "portfolio")
                    if isinstance(planned, ConformanceCell):
                        result.cells.append(planned)
                    else:
                        portfolio_wave.append(
                            ((kernel, machine_name, "portfolio"), planned)
                        )
        say(
            f"{len(kernels)} kernel(s) x {len(machines)} machine(s): "
            f"{len(concrete_wave)} concrete + {len(portfolio_wave)} "
            "portfolio cell(s)"
        )
        run_wave(service, concrete_wave)
        run_wave(service, portfolio_wave)

    service_config = ExecutorConfig(backend="thread", workers=config.workers)
    if config.store_root is not None:
        service = SchedulingService(
            config.store_root, config=service_config
        ).start()
        try:
            sweep(service)
        finally:
            service.stop()
    else:
        with tempfile.TemporaryDirectory(prefix="hrms-conformance-") as tmp:
            service = SchedulingService(tmp, config=service_config).start()
            try:
                sweep(service)
            finally:
                service.stop()

    # Deterministic report order regardless of worker interleaving.
    result.cells.sort(key=lambda c: (c.kernel, c.machine, c.scheduler))
    result.wall_seconds = time.perf_counter() - began
    return result


# ----------------------------------------------------------------------
# Goldens: bless and diff.
# ----------------------------------------------------------------------


def golden_path(goldens_dir: str | Path, kernel: str) -> Path:
    return Path(goldens_dir) / f"{kernel}.json"


def golden_document(result: ConformanceResult, kernel: str) -> dict:
    """The golden envelope for *kernel* from *result*."""
    cells: dict[str, dict[str, dict]] = {}
    for cell in result.cells:
        if cell.kernel != kernel or cell.status != "ok":
            continue
        cells.setdefault(cell.machine, {})[cell.scheduler] = (
            cell.golden_values()
        )
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": GOLDEN_KIND,
        "kernel": kernel,
        "digests": dict(sorted(result.digests[kernel].items())),
        "ops": dict(sorted(result.ops[kernel].items())),
        "cells": {
            machine: dict(sorted(cells[machine].items()))
            for machine in sorted(cells)
        },
    }


def bless(result: ConformanceResult, goldens_dir: str | Path) -> list[Path]:
    """Write one golden file per kernel in *result*; returns the paths."""
    directory = Path(goldens_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for kernel in result.kernels():
        path = golden_path(directory, kernel)
        path.write_text(
            json.dumps(golden_document(result, kernel), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def load_golden(goldens_dir: str | Path, kernel: str) -> dict | None:
    path = golden_path(goldens_dir, kernel)
    if not path.exists():
        return None
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("kind") != GOLDEN_KIND:
        raise ReproError(f"{path} is not a conformance golden")
    return document


def diff_goldens(
    result: ConformanceResult, goldens_dir: str | Path
) -> list[str]:
    """Every way *result* drifts from the committed goldens.

    Each entry names the exact cell and the delta — the triage starts
    (and usually ends) with this list.  An empty list means conformance.
    """
    drift: list[str] = []
    for kernel in result.kernels():
        golden = load_golden(goldens_dir, kernel)
        if golden is None:
            drift.append(
                f"{kernel}: no golden committed (run --bless to record one)"
            )
            continue
        for profile, digest in sorted(result.digests[kernel].items()):
            expected = golden.get("digests", {}).get(profile)
            if expected is None:
                drift.append(
                    f"{kernel}: golden has no digest for profile {profile!r}"
                )
            elif digest != expected:
                drift.append(
                    f"{kernel}: compiled digest ({profile}) changed "
                    f"{expected[:12]}… -> {digest[:12]}… "
                    "(kernel compilation drifted)"
                )
        for profile, ops in sorted(result.ops[kernel].items()):
            expected = golden.get("ops", {}).get(profile)
            if expected is not None and ops != expected:
                drift.append(
                    f"{kernel}: op count ({profile}) changed "
                    f"{expected} -> {ops}"
                )
        observed: dict[str, dict] = {}
        for cell in result.cells:
            if cell.kernel != kernel or cell.status != "ok":
                continue
            observed[f"{cell.machine}/{cell.scheduler}"] = (
                cell.golden_values()
            )
        # Only golden cells inside the run's swept envelope count as
        # expected: a deliberately partial run (machine/scheduler subset)
        # is diffed against the matching slice of the golden, while a
        # kernel that silently drops out of a *swept* coordinate is
        # still drift.
        expected_cells = {
            f"{machine}/{scheduler}": values
            for machine, row in golden.get("cells", {}).items()
            for scheduler, values in row.items()
            if machine in result.machines_swept
            and scheduler in result.schedulers_swept
        }
        for coordinate in sorted(set(expected_cells) - set(observed)):
            drift.append(
                f"{kernel} @ {coordinate}: golden cell not produced by "
                "this run (scheduler/machine dropped or newly skipped?)"
            )
        for coordinate in sorted(set(observed) - set(expected_cells)):
            drift.append(
                f"{kernel} @ {coordinate}: cell has no golden "
                "(new scheduler/machine — run --bless)"
            )
        for coordinate in sorted(set(observed) & set(expected_cells)):
            for name in CELL_FIELDS:
                new, old = observed[coordinate][name], (
                    expected_cells[coordinate].get(name)
                )
                if old is not None and new != old:
                    delta = new - old
                    drift.append(
                        f"{kernel} @ {coordinate}: {name} changed "
                        f"{old} -> {new} ({'+' if delta >= 0 else ''}"
                        f"{delta})"
                    )
    return drift


# ----------------------------------------------------------------------
# Console entry point: hrms-conformance.
# ----------------------------------------------------------------------


def _csv(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    parts = tuple(part.strip() for part in text.split(",") if part.strip())
    return parts or None


def main(argv: list[str] | None = None) -> int:
    """``hrms-conformance``: run the matrix, diff (or bless) goldens."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="hrms-conformance",
        description="Golden kernel conformance: compile every bundled "
        "kernel, schedule it across the registered scheduler catalog x "
        "the canonical machines through a live scheduling service, run "
        "the QA oracle battery on every cell, and diff against the "
        "committed goldens.",
    )
    parser.add_argument(
        "--kernels", default=None,
        help="comma-separated kernel names (default: the whole library)",
    )
    parser.add_argument(
        "--machines", default=None,
        help="comma-separated canonical machine names (default: all)",
    )
    parser.add_argument(
        "--schedulers", default=None,
        help="comma-separated scheduler names (default: every "
        "registered heuristic)",
    )
    parser.add_argument(
        "--no-portfolio", action="store_true",
        help="skip the virtual portfolio cells",
    )
    parser.add_argument(
        "--no-exact", action="store_true",
        help="skip the MILP-backed schedulers even on tiny kernels",
    )
    parser.add_argument(
        "--exact-op-limit", type=int, default=EXACT_OP_LIMIT,
        help="largest kernel the exact schedulers run on "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--exact-mii-limit", type=int, default=EXACT_MII_LIMIT,
        help="largest MII the exact schedulers accept — bigger MILPs "
        "hit their time limit and stop being deterministic "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="service worker threads (default: %(default)s)",
    )
    parser.add_argument(
        "--goldens", default=GOLDEN_DIRNAME, metavar="DIR",
        help="goldens directory (default: %(default)s)",
    )
    parser.add_argument(
        "--bless", action="store_true",
        help="regenerate the goldens from this run instead of diffing",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the cell matrix as JSON on stdout",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers wants a positive count, got {args.workers}")

    config = ConformanceConfig(
        kernels=_csv(args.kernels),
        machines=_csv(args.machines),
        schedulers=_csv(args.schedulers),
        include_portfolio=not args.no_portfolio,
        include_exact=not args.no_exact,
        exact_op_limit=args.exact_op_limit,
        exact_mii_limit=args.exact_mii_limit,
        workers=args.workers,
    )
    try:
        result = run_conformance(
            config,
            log=lambda message: print(
                f"hrms-conformance: {message}", file=sys.stderr
            ),
        )
    except ReproError as exc:
        print(f"hrms-conformance: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(
            json.dumps(
                {
                    "cells": [
                        {
                            "kernel": cell.kernel,
                            "machine": cell.machine,
                            "scheduler": cell.scheduler,
                            "status": cell.status,
                            **cell.golden_values(),
                            "detail": cell.detail,
                        }
                        for cell in result.cells
                    ],
                    "digests": result.digests,
                    "failures": result.failures,
                },
                indent=2,
            )
        )
    print(f"hrms-conformance: {result.summary()}", file=sys.stderr)
    for failure in result.failures:
        print(f"hrms-conformance: FAIL {failure}", file=sys.stderr)

    if args.bless:
        if not result.ok:
            print(
                "hrms-conformance: refusing to bless a run with oracle "
                "failures",
                file=sys.stderr,
            )
            return 1
        written = bless(result, args.goldens)
        print(
            f"hrms-conformance: blessed {len(written)} golden(s) -> "
            f"{args.goldens}",
            file=sys.stderr,
        )
        return 0

    drift = diff_goldens(result, args.goldens)
    for line in drift:
        print(f"hrms-conformance: DRIFT {line}", file=sys.stderr)
    if drift:
        print(
            f"hrms-conformance: {len(drift)} golden drift(s) — "
            "intentional changes are re-recorded with --bless",
            file=sys.stderr,
        )
    return 0 if result.ok and not drift else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
