"""Console entry point: ``hrms-fuzz``.

Run a differential fuzzing campaign from the command line::

    hrms-fuzz --seeds 200                      # 200-seed sweep, all oracles
    hrms-fuzz --seconds 30                     # wall-clock budget instead
    hrms-fuzz --seeds 50 --profiles tiny,tight-recurrence
    hrms-fuzz --seeds 20 --machines perfect-club --schedulers hrms,sms
    hrms-fuzz --seeds 100 --parity 6           # + backend-parity phase
    hrms-fuzz --seeds 50 --save /tmp/repros    # write minimized failures

Exit status is 0 when every oracle passed and 1 when any failed; each
failure prints its reproduction coordinates (profile, seed, machine,
scheduler, oracle) and — with ``--save DIR`` — lands as a minimized
JSON reproducer ready to be committed under ``tests/corpus/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.qa.campaign import CampaignConfig, run_campaign
from repro.qa.corpus import make_reproducer, save_reproducer
from repro.qa.profiles import profile_names


def _csv(text: str | None) -> tuple[str, ...] | None:
    if text is None:
        return None
    parts = tuple(part.strip() for part in text.split(",") if part.strip())
    return parts or None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-fuzz",
        description="Differential fuzzing of every registered scheduler "
        "against the oracle battery (verifier, II bounds, simulator "
        "replay, MII agreement, backend parity).",
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of seeded cases to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed (default: %(default)s; shift to explore "
             "fresh territory)",
    )
    parser.add_argument(
        "--seconds", type=float, default=None,
        help="wall-clock budget; the sweep stops between cases once "
             "spent (default: seeds only)",
    )
    parser.add_argument(
        "--profiles", default=None,
        help="comma-separated diversity profiles (default: all of "
             f"{', '.join(profile_names())})",
    )
    parser.add_argument(
        "--machines", default=None,
        help="comma-separated canonical machine names (default: all)",
    )
    parser.add_argument(
        "--schedulers", default=None,
        help="comma-separated scheduler names (default: every "
             "registered heuristic; exact methods join per --no-exact)",
    )
    parser.add_argument(
        "--no-exact", action="store_true",
        help="skip the MILP-backed schedulers even on tiny graphs",
    )
    parser.add_argument(
        "--no-portfolio", action="store_true",
        help="skip the portfolio race over precomputed members",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them",
    )
    parser.add_argument(
        "--parity", type=int, default=0, metavar="N",
        help="also replay the first N (graph, machine) cases through "
             "live thread- and process-backend services and demand "
             "bit-identical artifacts (default: %(default)s)",
    )
    parser.add_argument(
        "--save", default=None, metavar="DIR",
        help="write each failure as a minimized JSON reproducer "
             "into DIR (the tests/corpus/ format)",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds wants a positive count, got {args.seeds}")

    config = CampaignConfig(
        seeds=args.seeds,
        seed_base=args.seed_base,
        profiles=_csv(args.profiles),
        machines=_csv(args.machines),
        schedulers=_csv(args.schedulers),
        include_exact=not args.no_exact,
        include_portfolio=not args.no_portfolio,
        max_seconds=args.seconds,
        parity_cases=args.parity,
        shrink=not args.no_shrink,
    )
    try:
        report = run_campaign(
            config, log=lambda message: print(f"hrms-fuzz: {message}")
        )
    except ReproError as exc:
        print(f"hrms-fuzz: {exc}", file=sys.stderr)
        return 1

    print(f"hrms-fuzz: {report.summary()}")
    for failure in report.failures:
        print(f"hrms-fuzz: FAIL {failure.describe()}", file=sys.stderr)
    if args.save and report.failures:
        from repro.graph.serialization import graph_from_dict
        from repro.machine.configs import canonical_machines

        machines = canonical_machines()
        for failure in report.failures:
            envelope = make_reproducer(
                kind="schedule",
                oracle=failure.oracle,
                description=failure.message,
                graph=graph_from_dict(failure.graph),
                machine=machines[failure.machine],
                scheduler=(
                    None if failure.scheduler == "*" else failure.scheduler
                ),
                provenance={
                    "profile": failure.profile,
                    "seed": failure.seed,
                    "found_by": "hrms-fuzz",
                },
            )
            path = save_reproducer(args.save, envelope)
            print(f"hrms-fuzz: reproducer -> {path}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
