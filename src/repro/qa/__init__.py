"""Differential verification & fuzzing layer.

The library's correctness evidence used to be piecemeal: the algebraic
verifier (:mod:`repro.schedule.verify`), the cycle-accurate simulator
(:mod:`repro.sim`) and the seeded graph generator
(:mod:`repro.workloads.synthetic`) each existed in isolation and only
met on hand-picked workloads.  This package is the adversarial layer
that makes them meet *systematically*:

* :mod:`~repro.qa.profiles` — diversity profiles for the seeded random
  DDG generator: tight recurrences, wide parallel graphs,
  unpipelined-heavy mixes, and tiny single-op / zero-recurrence edge
  cases that hand-picked workloads never cover.
* :mod:`~repro.qa.oracles` — the oracle battery every schedule is held
  against: ``verify_schedule`` legality, II within the
  [MII, driver-upper-bound] window, simulator replay (every read legal,
  ``peak_live_steady`` equal to closed-form MaxLive), cross-scheduler
  MII agreement, and bit-identical artifacts across the thread and
  process service backends.
* :mod:`~repro.qa.campaign` — the driver: seeds × profiles × canonical
  machines × every registered scheduler, with wall-clock or seed
  budgets, failure collection and automatic shrinking.
* :mod:`~repro.qa.shrink` — greedy delta-debugging of a failing case:
  drop operations and edges while the oracle still fails, yielding the
  minimized reproducer that gets committed.
* :mod:`~repro.qa.corpus` — the JSON reproducer format under
  ``tests/corpus/`` and its replay machinery: every bug the campaign
  ever surfaced is pinned as a corpus entry the test-suite re-asserts
  forever.
* :mod:`~repro.qa.conformance` — the golden kernel conformance suite:
  every bundled front-end kernel × the registered scheduler catalog ×
  the canonical machines, run through a live scheduling service,
  oracle-checked, and diffed against committed per-cell goldens
  (expected II, MII bounds, MaxLive, DDG digests) under
  ``tests/goldens/``.

Entry points: the ``hrms-fuzz`` console script (:mod:`repro.qa.cli`),
the ``hrms-conformance`` console script (:mod:`repro.qa.conformance`),
the service's ``POST /v1/verify`` endpoint (re-verify any stored
artifact), and the ``qa`` and ``conformance`` tiers of
``scripts/perf_check.py``.
"""

from repro.qa.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.qa.conformance import (
    ConformanceConfig,
    ConformanceResult,
    bless,
    diff_goldens,
    run_conformance,
)
from repro.qa.corpus import (
    load_corpus,
    make_reproducer,
    replay_entry,
    save_reproducer,
)
from repro.qa.oracles import (
    OracleFailure,
    OracleReport,
    run_battery,
    verify_artifact_payload,
)
from repro.qa.profiles import FuzzProfile, fuzz_profiles, profile_names
from repro.qa.shrink import shrink_case

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "ConformanceConfig",
    "ConformanceResult",
    "FuzzProfile",
    "bless",
    "diff_goldens",
    "run_conformance",
    "OracleFailure",
    "OracleReport",
    "fuzz_profiles",
    "load_corpus",
    "make_reproducer",
    "profile_names",
    "replay_entry",
    "run_battery",
    "run_campaign",
    "save_reproducer",
    "shrink_case",
    "verify_artifact_payload",
]
