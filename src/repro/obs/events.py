"""Append-only, size-rotated JSONL journal of service events.

Every record is one JSON object per line with at least ``ts`` (epoch
seconds), ``type`` (dotted event name), and — when the emitting code
runs inside a trace — ``trace_id``, so events join against spans and
the journal doubles as the auditable history future learned-routing
work needs.

Rotation is by size: when ``events.jsonl`` would exceed *max_bytes*,
it is renamed to ``events.jsonl.1`` (shifting older generations up,
dropping the one past *keep*) and a fresh file is opened.  Writes are
serialized by a lock; one service process owns a journal.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections.abc import Iterator
from pathlib import Path

from repro.obs import trace

#: Default rotation threshold (bytes) for the active journal file.
MAX_BYTES = 4 * 1024 * 1024

#: Default number of rotated generations kept beside the active file.
KEEP = 4


class EventLog:
    """Thread-safe rotating JSONL event journal."""

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = MAX_BYTES,
        keep: int = KEEP,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if keep < 0:
            raise ValueError("keep must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: io.TextIOWrapper | None = self.path.open(
            "a", encoding="utf-8"
        )
        self._size = self.path.stat().st_size
        self.emitted = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    def emit(self, type_: str, **fields: object) -> None:
        """Append one event; silently drops if the log is closed."""
        record: dict = {"ts": time.time(), "type": type_}
        trace_id = trace.current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        data_len = len(line.encode("utf-8"))
        with self._lock:
            if self._handle is None:
                return
            if self._size and self._size + data_len > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._handle.flush()
            self._size += data_len
            self.emitted += 1

    def _rotate_locked(self) -> None:
        self._handle.close()
        if self.keep == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
            oldest.unlink(missing_ok=True)
            for generation in range(self.keep - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{generation}")
                if source.exists():
                    os.replace(
                        source,
                        self.path.with_name(
                            f"{self.path.name}.{generation + 1}"
                        ),
                    )
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._handle = self.path.open("a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def files(self) -> list[Path]:
        """Journal files oldest-first (rotated generations then active)."""
        generations = []
        for generation in range(self.keep, 0, -1):
            candidate = self.path.with_name(f"{self.path.name}.{generation}")
            if candidate.exists():
                generations.append(candidate)
        if self.path.exists():
            generations.append(self.path)
        return generations

    def read(self) -> Iterator[dict]:
        """Yield every surviving event oldest-first."""
        yield from read_events(self.path, keep=self.keep)


def read_events(path: str | Path, keep: int = KEEP) -> Iterator[dict]:
    """Read a journal (rotated generations included) without an EventLog.

    Malformed lines — possible if a previous process died mid-write —
    are skipped rather than fatal.
    """
    path = Path(path)
    files = []
    for generation in range(keep, 0, -1):
        candidate = path.with_name(f"{path.name}.{generation}")
        if candidate.exists():
            files.append(candidate)
    if path.exists():
        files.append(path)
    for file in files:
        with file.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
