"""A small semantic layer over artifact envelopes and the event journal.

The model follows the boring-semantic-layer design: *dimensions* and
*measures* are declared up front with the row source each one is
derived from, and a query is validated against those declarations
before any data is touched — grouping a measure by a dimension its
source does not carry is a :class:`StatsError`, not a silent empty
column.

Three row sources are materialised lazily from a store directory:

``artifacts``
    One row per stored schedule — standalone ``"schedule"`` artifacts
    plus the winning schedule of every ``"portfolio"`` envelope.
``races``
    One row per portfolio member outcome (the full scoreboard of every
    race, win/loss included), from ``"portfolio"`` envelopes.
``jobs``
    One row per ``job.settled`` record in the event journal.

Everything here is stdlib-only at import time; the artifact store is
imported lazily so ``repro.obs`` stays a leaf package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ReproError
from repro.obs.events import read_events


class StatsError(ReproError):
    """An invalid stats query (unknown name, unsatisfied dependency)."""


# ----------------------------------------------------------------------
# Declarations


@dataclass(frozen=True)
class Dimension:
    """A named grouping axis, valid on the listed row sources."""

    name: str
    sources: tuple[str, ...]
    description: str = ""


@dataclass(frozen=True)
class Measure:
    """A named aggregate derived from one row source.

    ``depends_on`` names the row fields the derivation reads; the
    loaders below must supply them, and :meth:`StatsModel.query`
    checks the wiring once per query so a refactor that drops a field
    fails loudly instead of aggregating garbage.
    """

    name: str
    source: str
    depends_on: tuple[str, ...]
    compute: Callable[[list[dict]], float | int | None] = field(repr=False)
    description: str = ""


def _mean(values: list[float]) -> float | None:
    return round(sum(values) / len(values), 6) if values else None


def _quantile(values: list[float], q: float) -> float | None:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return round(ordered[rank], 6)


def _ratio(rows: list[dict], predicate: Callable[[dict], bool]) -> float | None:
    if not rows:
        return None
    return round(sum(1 for row in rows if predicate(row)) / len(rows), 6)


def _values(rows: list[dict], key: str) -> list[float]:
    return [float(row[key]) for row in rows if row.get(key) is not None]


DIMENSIONS: dict[str, Dimension] = {
    dim.name: dim
    for dim in (
        Dimension(
            "scheduler",
            ("artifacts", "races", "jobs"),
            "scheduler name (portfolio winners report 'portfolio')",
        ),
        Dimension("machine", ("artifacts",), "machine model name"),
        Dimension(
            "op_bucket",
            ("artifacts",),
            "graph size bucket: 1-16, 17-64, 65-160, 161+",
        ),
        Dimension("graph", ("artifacts", "races"), "dependence graph name"),
        Dimension("profile", ("jobs",), "requested machine profile"),
        Dimension(
            "degraded", ("jobs",), "whether the job settled degraded"
        ),
        Dimension("status", ("races", "jobs"), "outcome status"),
        Dimension("policy", ("races",), "portfolio scoring policy"),
    )
}

MEASURES: dict[str, Measure] = {
    measure.name: measure
    for measure in (
        Measure(
            "count",
            "artifacts",
            ("ii",),
            lambda rows: len(rows),
            "stored schedules",
        ),
        Measure(
            "ii_mii_ratio",
            "artifacts",
            ("ii", "mii"),
            lambda rows: _mean(
                [
                    row["ii"] / row["mii"]
                    for row in rows
                    if row.get("mii")
                ]
            ),
            "mean achieved II / MII (1.0 = every lower bound met)",
        ),
        Measure(
            "mii_hit_rate",
            "artifacts",
            ("ii", "mii"),
            lambda rows: _ratio(
                [row for row in rows if row.get("mii")],
                lambda row: row["ii"] == row["mii"],
            ),
            "fraction of schedules achieving II == MII",
        ),
        Measure(
            "maxlive_mean",
            "artifacts",
            ("maxlive",),
            lambda rows: _mean(_values(rows, "maxlive")),
            "mean MaxLive register pressure",
        ),
        Measure(
            "maxlive_max",
            "artifacts",
            ("maxlive",),
            lambda rows: (
                max(_values(rows, "maxlive"))
                if _values(rows, "maxlive")
                else None
            ),
            "worst MaxLive register pressure",
        ),
        Measure(
            "seconds_p50",
            "artifacts",
            ("seconds",),
            lambda rows: _quantile(_values(rows, "seconds"), 0.50),
            "median scheduling wall time",
        ),
        Measure(
            "seconds_p95",
            "artifacts",
            ("seconds",),
            lambda rows: _quantile(_values(rows, "seconds"), 0.95),
            "p95 scheduling wall time",
        ),
        Measure(
            "races",
            "races",
            ("won",),
            lambda rows: len(rows),
            "portfolio member outcomes recorded",
        ),
        Measure(
            "win_rate",
            "races",
            ("won",),
            lambda rows: _ratio(rows, lambda row: bool(row["won"])),
            "fraction of races this group won",
        ),
        Measure(
            "jobs",
            "jobs",
            ("status",),
            lambda rows: len(rows),
            "settled jobs journaled",
        ),
        Measure(
            "degraded_rate",
            "jobs",
            ("degraded",),
            lambda rows: _ratio(rows, lambda row: bool(row["degraded"])),
            "fraction of settled jobs served degraded",
        ),
        Measure(
            "latency_p50",
            "jobs",
            ("latency",),
            lambda rows: _quantile(_values(rows, "latency"), 0.50),
            "median submit-to-settle latency",
        ),
        Measure(
            "latency_p95",
            "jobs",
            ("latency",),
            lambda rows: _quantile(_values(rows, "latency"), 0.95),
            "p95 submit-to-settle latency",
        ),
    )
}

DEFAULT_GROUP_BY = ("scheduler",)
DEFAULT_MEASURES = ("count", "ii_mii_ratio", "maxlive_mean", "seconds_p50")


def op_bucket(operations: int) -> str:
    """Graph-size bucket used by the ``op_bucket`` dimension."""
    if operations <= 16:
        return "1-16"
    if operations <= 64:
        return "17-64"
    if operations <= 160:
        return "65-160"
    return "161+"


# ----------------------------------------------------------------------
# Row loaders


def _schedule_row(payload: Mapping[str, Any], scheduler: str) -> dict:
    graph = payload.get("graph", {})
    operations = int(graph.get("operations", 0))
    return {
        "scheduler": scheduler,
        "machine": payload.get("machine", {}).get("name"),
        "graph": graph.get("name"),
        "op_bucket": op_bucket(operations),
        "operations": operations,
        "ii": payload.get("ii"),
        "mii": payload.get("mii"),
        "maxlive": payload.get("maxlive"),
        "seconds": payload.get("seconds"),
    }


def _race_rows(payload: Mapping[str, Any]) -> list[dict]:
    graph = payload.get("schedule", {}).get("graph", {}).get("name")
    winner = payload.get("winner")
    policy = payload.get("policy")
    rows = []
    for member in payload.get("members", ()):
        score = member.get("score") or {}
        rows.append(
            {
                "scheduler": member.get("name"),
                "graph": graph,
                "status": member.get("status"),
                "policy": policy,
                "won": member.get("name") == winner,
                "ii": score.get("ii"),
                "maxlive": score.get("maxlive"),
                "seconds": member.get("seconds"),
            }
        )
    return rows


def _job_row(record: Mapping[str, Any]) -> dict:
    return {
        "scheduler": record.get("scheduler"),
        "profile": record.get("profile"),
        "status": record.get("status"),
        "degraded": bool(record.get("degraded")),
        "attempts": record.get("attempts"),
        "latency": record.get("latency"),
    }


class StatsModel:
    """Queryable dimensions/measures over a store and event journal."""

    def __init__(
        self,
        store: Any,
        events_path: str | Path | None = None,
    ) -> None:
        if not hasattr(store, "iter_keys"):
            # Accept a directory path; the store import stays lazy so
            # ``repro.obs`` never drags the service layer in at import.
            from repro.service.store import ArtifactStore

            store = ArtifactStore(store)
        self.store = store
        self.events_path = Path(events_path) if events_path else None
        self._rows: dict[str, list[dict]] | None = None

    # -- loading -------------------------------------------------------
    def rows(self, source: str) -> list[dict]:
        """Materialised rows for *source* (loaded once, then cached)."""
        if self._rows is None:
            self._rows = self._load()
        try:
            return self._rows[source]
        except KeyError:
            raise StatsError(f"unknown row source {source!r}") from None

    def _load(self) -> dict[str, list[dict]]:
        artifacts: list[dict] = []
        races: list[dict] = []
        for key in sorted(self.store.iter_keys()):
            envelope = self.store.get(key)
            if envelope is None:  # quarantined between listing and read
                continue
            kind = envelope.get("kind")
            payload = envelope.get("payload", {})
            if kind == "schedule":
                artifacts.append(
                    _schedule_row(payload, payload.get("scheduler", ""))
                )
            elif kind == "portfolio":
                artifacts.append(
                    _schedule_row(payload.get("schedule", {}), "portfolio")
                )
                races.extend(_race_rows(payload))
        jobs = []
        if self.events_path is not None:
            for record in read_events(self.events_path):
                if record.get("type") == "job.settled":
                    jobs.append(_job_row(record))
        return {"artifacts": artifacts, "races": races, "jobs": jobs}

    # -- validation ----------------------------------------------------
    @staticmethod
    def _resolve(
        group_by: Iterable[str] | None, measures: Iterable[str] | None
    ) -> tuple[list[Dimension], list[Measure]]:
        dim_names = list(group_by) if group_by is not None else list(
            DEFAULT_GROUP_BY
        )
        measure_names = list(measures) if measures is not None else list(
            DEFAULT_MEASURES
        )
        if not measure_names:
            raise StatsError("a stats query needs at least one measure")
        dims = []
        for name in dim_names:
            if name not in DIMENSIONS:
                raise StatsError(
                    f"unknown dimension {name!r}; "
                    f"known: {', '.join(sorted(DIMENSIONS))}"
                )
            dims.append(DIMENSIONS[name])
        resolved = []
        for name in measure_names:
            if name not in MEASURES:
                raise StatsError(
                    f"unknown measure {name!r}; "
                    f"known: {', '.join(sorted(MEASURES))}"
                )
            measure = MEASURES[name]
            for dim in dims:
                if measure.source not in dim.sources:
                    raise StatsError(
                        f"measure {measure.name!r} is derived from "
                        f"{measure.source!r}, which has no dimension "
                        f"{dim.name!r} (valid on: "
                        f"{', '.join(dim.sources)})"
                    )
            resolved.append(measure)
        return dims, resolved

    def _check_dependencies(self, measure: Measure) -> None:
        """A measure's declared inputs must exist on its source rows."""
        rows = self.rows(measure.source)
        if not rows:
            return
        missing = [
            dep for dep in measure.depends_on if dep not in rows[0]
        ]
        if missing:
            raise StatsError(
                f"measure {measure.name!r} depends on "
                f"{', '.join(missing)} which source "
                f"{measure.source!r} does not provide"
            )

    # -- querying ------------------------------------------------------
    def query(
        self,
        group_by: Iterable[str] | None = None,
        measures: Iterable[str] | None = None,
    ) -> dict:
        """Group, aggregate, and return a deterministic result table.

        Returns ``{"group_by": [...], "measures": [...], "rows":
        [{dim: value, ..., measure: value, ...}, ...]}`` with rows
        sorted by dimension values (``None`` groups last).
        """
        dims, resolved = self._resolve(group_by, measures)
        for measure in resolved:
            self._check_dependencies(measure)
        groups: dict[tuple, dict] = {}
        for measure in resolved:
            buckets: dict[tuple, list[dict]] = {}
            for row in self.rows(measure.source):
                dim_key = tuple(row.get(dim.name) for dim in dims)
                buckets.setdefault(dim_key, []).append(row)
            for dim_key, bucket in buckets.items():
                out = groups.setdefault(
                    dim_key,
                    {dim.name: value for dim, value in zip(dims, dim_key)},
                )
                out[measure.name] = measure.compute(bucket)
        rows = []
        for dim_key in sorted(
            groups, key=lambda key: tuple(
                (value is None, str(value)) for value in key
            )
        ):
            out = groups[dim_key]
            for measure in resolved:  # absent-in-group measures → null
                out.setdefault(measure.name, None)
            rows.append(out)
        return {
            "group_by": [dim.name for dim in dims],
            "measures": [measure.name for measure in resolved],
            "rows": rows,
        }

    # -- report helpers ------------------------------------------------
    def pareto_fronts(self) -> dict[str, list[dict]]:
        """Per-graph Pareto-optimal ``(ii, maxlive)`` member outcomes.

        A member outcome is on its graph's front when no other ``ok``
        outcome for the same graph is at least as good on both axes
        and strictly better on one.  Returns ``{graph: [outcome
        rows]}`` with each front sorted by ``(ii, maxlive)``.
        """
        by_graph: dict[str, list[dict]] = {}
        for row in self.rows("races"):
            if (
                row.get("status") == "ok"
                and row.get("graph") is not None
                and row.get("ii") is not None
                and row.get("maxlive") is not None
            ):
                by_graph.setdefault(row["graph"], []).append(row)
        fronts: dict[str, list[dict]] = {}
        for graph, rows in sorted(by_graph.items()):
            front = [
                row
                for row in rows
                if not any(
                    (other["ii"], other["maxlive"])
                    != (row["ii"], row["maxlive"])
                    and other["ii"] <= row["ii"]
                    and other["maxlive"] <= row["maxlive"]
                    for other in rows
                )
            ]
            fronts[graph] = sorted(
                front, key=lambda row: (row["ii"], row["maxlive"], row["scheduler"] or "")
            )
        return fronts

    def describe(self) -> dict:
        """The declared semantic model (for docs and ``/v1/stats``)."""
        return {
            "dimensions": {
                dim.name: {
                    "sources": list(dim.sources),
                    "description": dim.description,
                }
                for dim in DIMENSIONS.values()
            },
            "measures": {
                measure.name: {
                    "source": measure.source,
                    "depends_on": list(measure.depends_on),
                    "description": measure.description,
                }
                for measure in MEASURES.values()
            },
        }
