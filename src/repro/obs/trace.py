"""End-to-end request tracing with zero disarmed overhead.

The design mirrors :mod:`repro.service.faults`: a module-level
:data:`ACTIVE` collector that is ``None`` when tracing is off, so every
instrumentation site in the hot path costs a single ``if`` when
disarmed.  Armed, spans are recorded into a bounded in-memory store
keyed by trace id and served at ``GET /v1/traces/<id>``.

Propagation:

- **threads** — a thread-local context stack carries the current
  ``(trace_id, span_id)``; :func:`attach` re-parents a worker thread
  (portfolio members, pool workers) onto a span started elsewhere.
- **processes** — :func:`wire_context` snapshots the current context
  into the ``{"kind", "request"}`` wire envelope; the worker attaches
  to it, and its finished spans ride back in the result envelope
  (see :mod:`repro.service.procpool`).
- **HTTP** — clients send ``X-Hrms-Trace-Id``; the service adopts it as
  the trace id for the submitted job and echoes the id in responses.

Arming is refcounted (:func:`arm` / :func:`disarm`) so overlapping
services in one process — common in tests — do not disarm each other.
The process-wide collector outlives disarming, so traces recorded while
a service ran stay retrievable after it stops.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict

#: Bounded number of finished traces the collector retains.
TRACES_KEPT = 256

#: Per-span cap on recorded point events; extras only bump a counter.
MAX_EVENTS = 512


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation inside a trace.

    Timestamps are wall-clock (``time.time()``) so spans recorded in
    worker processes line up with their parents when merged.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attrs",
        "events",
        "events_dropped",
        "_pushed",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.time()
        self.end: float | None = None
        self.attrs: dict = attrs or {}
        self.events: list[tuple[float, str, dict | None]] = []
        self.events_dropped = 0
        self._pushed = False

    def add_event(self, name: str, attrs: dict | None = None) -> None:
        """Record a point event on this span (capped at MAX_EVENTS)."""
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        self.events.append((time.time(), name, attrs))

    def to_dict(self) -> dict:
        """JSON-serialisable form served by ``GET /v1/traces/<id>``."""
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.end - self.start,
            "attrs": self.attrs,
            "events": [
                {"ts": ts, "name": name, **(attrs or {})}
                for ts, name, attrs in self.events
            ],
        }
        if self.events_dropped:
            record["events_dropped"] = self.events_dropped
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span shipped across the process-pool wire."""
        span = cls.__new__(cls)
        span.trace_id = record["trace_id"]
        span.span_id = record["span_id"]
        span.parent_id = record.get("parent_id")
        span.name = record["name"]
        span.start = record["start"]
        span.end = record.get("end")
        span.attrs = record.get("attrs") or {}
        span.events = [
            (
                event["ts"],
                event["name"],
                {k: v for k, v in event.items() if k not in ("ts", "name")}
                or None,
            )
            for event in record.get("events", ())
        ]
        span.events_dropped = record.get("events_dropped", 0)
        span._pushed = False
        return span


class TraceCollector:
    """Bounded in-memory store of finished spans, keyed by trace id."""

    def __init__(self, traces_kept: int = TRACES_KEPT) -> None:
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, list[Span]] = OrderedDict()
        self._traces_kept = traces_kept

    # -- recording -----------------------------------------------------
    def record(self, span: Span) -> None:
        """File a finished span under its trace id (bounded LRU)."""
        with self._lock:
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                bucket = self._traces[span.trace_id] = []
                while len(self._traces) > self._traces_kept:
                    self._traces.popitem(last=False)
            bucket.append(span)

    def merge(self, records: list[dict]) -> None:
        """Absorb span dicts drained from a worker process."""
        for record in records:
            self.record(Span.from_dict(record))

    # -- retrieval -----------------------------------------------------
    def trace(self, trace_id: str) -> list[dict] | None:
        """All finished spans of a trace, sorted by start time."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                return None
            spans = list(bucket)
        return [span.to_dict() for span in sorted(spans, key=lambda s: s.start)]

    def drain(self, trace_id: str) -> list[dict]:
        """Pop and return a trace's spans (worker → parent shipping)."""
        with self._lock:
            bucket = self._traces.pop(trace_id, None)
        return [span.to_dict() for span in bucket] if bucket else []

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._traces.values())


#: The armed collector, or ``None`` when tracing is off.  Hot-path
#: sites guard on this exact global, like ``faults.ACTIVE``.
ACTIVE: TraceCollector | None = None

#: Process-wide collector reused across arm/disarm cycles.
COLLECTOR = TraceCollector()

_ARM_LOCK = threading.Lock()
_ARM_COUNT = 0

_CTX = threading.local()


def arm() -> TraceCollector:
    """Enable tracing (refcounted); returns the live collector."""
    global ACTIVE, _ARM_COUNT
    with _ARM_LOCK:
        _ARM_COUNT += 1
        ACTIVE = COLLECTOR
    return COLLECTOR


def disarm() -> None:
    """Drop one arm() reference; tracing turns off at zero."""
    global ACTIVE, _ARM_COUNT
    with _ARM_LOCK:
        _ARM_COUNT = max(0, _ARM_COUNT - 1)
        if _ARM_COUNT == 0:
            ACTIVE = None


def enabled() -> bool:
    return ACTIVE is not None


# -- thread-local context ---------------------------------------------
def _stack() -> list[Span]:
    stack = getattr(_CTX, "stack", None)
    if stack is None:
        stack = _CTX.stack = []
    return stack


def current() -> tuple[str, str] | None:
    """The current ``(trace_id, span_id)``, or ``None`` outside a trace."""
    stack = getattr(_CTX, "stack", None)
    if not stack:
        return None
    top = stack[-1]
    return (top.trace_id, top.span_id)


def current_trace_id() -> str | None:
    stack = getattr(_CTX, "stack", None)
    return stack[-1].trace_id if stack else None


def add_event(name: str, attrs: dict | None = None) -> None:
    """Attach a point event to the innermost live span, if any.

    Hot-path callers must guard with ``if trace.ACTIVE is not None:``
    themselves — this function assumes tracing is armed.
    """
    stack = getattr(_CTX, "stack", None)
    if stack:
        stack[-1].add_event(name, attrs)


# -- span context managers --------------------------------------------
class _NullSpan:
    """Returned by :func:`span` when tracing is disarmed."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpan()


class _LiveSpan:
    __slots__ = ("_collector", "_name", "_attrs", "_span")

    def __init__(self, collector: TraceCollector, name: str, attrs: dict):
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span | None:
        parent = current()
        if parent is None:
            # No enclosing trace: nothing to parent onto, stay silent
            # rather than minting orphan traces for bare library calls.
            return None
        span = Span(self._name, parent[0], parent[1], self._attrs)
        span._pushed = True
        _stack().append(span)
        self._span = span
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        span = self._span
        if span is not None:
            span.end = time.time()
            if exc_type is not None:
                span.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
            stack = _stack()
            if stack and stack[-1] is span:
                stack.pop()
            self._collector.record(span)
        return False


def span(name: str, **attrs: object) -> _NullSpan | _LiveSpan:
    """Context manager opening a child span of the current context.

    Disarmed this returns a shared no-op object; armed but outside any
    trace it records nothing (spans need a root to belong to — roots
    are started explicitly with :meth:`TraceCollector` begin/end or
    :func:`attach`).
    """
    collector = ACTIVE
    if collector is None:
        return _NULL
    return _LiveSpan(collector, name, attrs)


class _Attach:
    __slots__ = ("_trace_id", "_span_id", "_anchor")

    def __init__(self, trace_id: str, span_id: str):
        self._trace_id = trace_id
        self._span_id = span_id
        self._anchor: Span | None = None

    def __enter__(self) -> None:
        anchor = Span.__new__(Span)
        anchor.trace_id = self._trace_id
        anchor.span_id = self._span_id
        anchor.parent_id = None
        anchor.name = "<attach>"
        anchor.start = time.time()
        anchor.end = None
        anchor.attrs = {}
        anchor.events = []
        anchor.events_dropped = 0
        anchor._pushed = True
        _stack().append(anchor)
        self._anchor = anchor
        return None

    def __exit__(self, *exc: object) -> bool:
        stack = _stack()
        if stack and stack[-1] is self._anchor:
            stack.pop()
        return False


def attach(trace_id: str, span_id: str) -> _NullSpan | _Attach:
    """Adopt an existing span as this thread's current context.

    The anchor frame is never recorded — it only gives :func:`span`
    calls on this thread the right parent.  No-op when disarmed.
    """
    if ACTIVE is None:
        return _NULL
    return _Attach(trace_id, span_id)


# -- detached (root / synthesized) spans ------------------------------
def begin_root(
    name: str, trace_id: str, attrs: dict | None = None
) -> Span | None:
    """Start a root span WITHOUT touching the calling thread's context.

    Used for the per-job ``request`` span: it is opened on the
    submitting thread but belongs to the job, which finishes on a
    worker thread.  Returns ``None`` when disarmed.
    """
    if ACTIVE is None:
        return None
    return Span(name, trace_id, None, attrs)


def finish(span: Span | None, **attrs: object) -> None:
    """End and record a span obtained from :func:`begin_root`."""
    collector = ACTIVE
    if span is None:
        return
    span.end = time.time()
    if attrs:
        span.attrs.update(attrs)
    # Record into the process-wide collector even if a racing disarm
    # just flipped ACTIVE off: the span was started under tracing.
    (collector or COLLECTOR).record(span)


def record_span(
    name: str,
    trace_id: str,
    parent_id: str | None,
    start: float,
    end: float,
    attrs: dict | None = None,
) -> None:
    """Record a fully-formed span from known timestamps.

    Synthesizes spans whose interval was not bracketed by code — e.g.
    ``queue.wait`` is materialised when the worker picks the job up,
    spanning submit → start.
    """
    collector = ACTIVE
    if collector is None:
        return
    span = Span(name, trace_id, parent_id, attrs)
    span.start = start
    span.end = end
    collector.record(span)


# -- cross-process propagation ----------------------------------------
def wire_context() -> dict | None:
    """The current context as a wire-envelope fragment, or ``None``."""
    if ACTIVE is None:
        return None
    context = current()
    if context is None:
        return None
    return {"id": context[0], "parent": context[1]}
