"""``hrms-report`` — offline analytics over an artifact store directory.

Renders the semantic layer of :mod:`repro.obs.stats` as console
tables: a per-scheduler quality table (win rate, II/MII ratio,
MaxLive, wall time), the per-graph Pareto fronts over ``(II,
MaxLive)``, and — with ``--group-by``/``--measures`` — any ad-hoc
query the ``/v1/stats`` endpoint would answer.  ``--json`` emits the
raw query result instead of tables, for scripting.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.obs.stats import (
    DEFAULT_MEASURES,
    DIMENSIONS,
    MEASURES,
    StatsModel,
)


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """A plain monospace table (no dependencies, stable widths)."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells), 1)
        if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def scheduler_quality(model: StatsModel) -> str:
    """The headline table: per-scheduler quality and race results."""
    quality = model.query(
        group_by=["scheduler"],
        measures=[
            "count",
            "ii_mii_ratio",
            "mii_hit_rate",
            "maxlive_mean",
            "seconds_p50",
        ],
    )
    races = model.query(group_by=["scheduler"], measures=["races", "win_rate"])
    race_by_name = {row["scheduler"]: row for row in races["rows"]}
    headers = [
        "scheduler",
        "schedules",
        "ii/mii",
        "mii hit",
        "maxlive",
        "p50 s",
        "races",
        "win rate",
    ]
    rows = []
    for row in quality["rows"]:
        race = race_by_name.pop(row["scheduler"], {})
        rows.append(
            [
                row["scheduler"],
                row["count"],
                row["ii_mii_ratio"],
                row["mii_hit_rate"],
                row["maxlive_mean"],
                row["seconds_p50"],
                race.get("races"),
                race.get("win_rate"),
            ]
        )
    for name, race in sorted(race_by_name.items()):
        # Members that raced but never produced a standalone artifact.
        rows.append(
            [name, None, None, None, None, None,
             race.get("races"), race.get("win_rate")]
        )
    return render_table(headers, rows)


def pareto_tables(model: StatsModel) -> str:
    """Per-graph ``(II, MaxLive)`` fronts plus front-appearance rates."""
    fronts = model.pareto_fronts()
    if not fronts:
        return "no portfolio races recorded"
    sections = []
    appearances: dict[str, int] = {}
    for graph, front in fronts.items():
        rows = [
            [row["scheduler"], row["ii"], row["maxlive"], row["seconds"]]
            for row in front
        ]
        for row in front:
            name = row["scheduler"]
            appearances[name] = appearances.get(name, 0) + 1
        sections.append(
            f"{graph}\n"
            + render_table(["scheduler", "ii", "maxlive", "seconds"], rows)
        )
    total = len(fronts)
    rate_rows = [
        [name, count, round(count / total, 4)]
        for name, count in sorted(
            appearances.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    sections.append(
        "front appearance rate\n"
        + render_table(["scheduler", "fronts", "rate"], rate_rows)
    )
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-report",
        description=(
            "Analytics tables over an hrms artifact store: scheduler "
            "quality, portfolio win rates, and (II, MaxLive) Pareto "
            "fronts."
        ),
    )
    parser.add_argument(
        "--store",
        required=True,
        help="artifact store directory (the hrms-serve --store path)",
    )
    parser.add_argument(
        "--events",
        default=None,
        help=(
            "event journal path (defaults to events.jsonl inside the "
            "store directory when present)"
        ),
    )
    parser.add_argument(
        "--group-by",
        default=None,
        help=(
            "comma-separated dimensions for an ad-hoc query; known: "
            + ", ".join(sorted(DIMENSIONS))
        ),
    )
    parser.add_argument(
        "--measures",
        default=None,
        help=(
            "comma-separated measures for an ad-hoc query; known: "
            + ", ".join(sorted(MEASURES))
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit raw JSON query results instead of tables",
    )
    args = parser.parse_args(argv)

    store_root = Path(args.store)
    if not store_root.is_dir():
        parser.error(f"no such store directory: {store_root}")
    events = (
        Path(args.events)
        if args.events
        else store_root / "events.jsonl"
    )
    model = StatsModel(store_root, events_path=events if events.exists() else None)

    try:
        if args.group_by is not None or args.measures is not None:
            result = model.query(
                group_by=(
                    [n for n in args.group_by.split(",") if n]
                    if args.group_by
                    else None
                ),
                measures=(
                    [n for n in args.measures.split(",") if n]
                    if args.measures
                    else list(DEFAULT_MEASURES)
                ),
            )
            if args.json:
                print(json.dumps(result, indent=2, sort_keys=True))
            else:
                headers = result["group_by"] + result["measures"]
                print(
                    render_table(
                        headers,
                        [[row.get(h) for h in headers] for row in result["rows"]],
                    )
                )
            return 0
        if args.json:
            print(
                json.dumps(
                    {
                        "quality": model.query(
                            group_by=["scheduler"],
                            measures=[
                                "count",
                                "ii_mii_ratio",
                                "mii_hit_rate",
                                "maxlive_mean",
                                "seconds_p50",
                            ],
                        ),
                        "races": model.query(
                            group_by=["scheduler"],
                            measures=["races", "win_rate"],
                        ),
                        "pareto_fronts": model.pareto_fronts(),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print("scheduler quality")
        print(scheduler_quality(model))
        print()
        print("pareto fronts (II, MaxLive)")
        print(pareto_tables(model))
        return 0
    except ReproError as exc:
        print(f"hrms-report: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
