"""Observability: tracing, structured events, and artifact analytics.

Three zero-dependency layers, each usable on its own:

- :mod:`repro.obs.trace` — end-to-end spans threaded through the
  service, schedulers, engine, and store, propagated across threads,
  worker processes, and HTTP.
- :mod:`repro.obs.events` — an append-only, size-rotated JSONL journal
  of job-lifecycle and decision events, each stamped with the trace id.
- :mod:`repro.obs.stats` — a small semantic model (declared dimensions
  and measures with dependency-checked derivations) over artifact
  envelopes and the event journal, served at ``GET /v1/stats`` and
  rendered by the ``hrms-report`` console script.
"""

from __future__ import annotations

from repro.obs.events import EventLog
from repro.obs.stats import DIMENSIONS, MEASURES, StatsError, StatsModel
from repro.obs.trace import Span, TraceCollector, arm, disarm, span

__all__ = [
    "DIMENSIONS",
    "EventLog",
    "MEASURES",
    "Span",
    "StatsError",
    "StatsModel",
    "TraceCollector",
    "arm",
    "disarm",
    "span",
]
