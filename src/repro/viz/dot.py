"""Graphviz DOT export for dependence graphs.

Pure text generation — no graphviz dependency; the output renders with
``dot -Tpng`` anywhere.  Conventions follow the paper's figures:

* register dependences are solid edges;
* memory dependences are dotted; control dependences dashed;
* loop-carried edges (distance > 0) carry a ``d=δ`` label — the
  backward edges of the paper's recurrence figures;
* stores (value-less operations) are drawn as boxes, value producers as
  ellipses.
"""

from __future__ import annotations

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind

_EDGE_STYLE = {
    DependenceKind.REGISTER: "solid",
    DependenceKind.MEMORY: "dotted",
    DependenceKind.CONTROL: "dashed",
}


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def graph_to_dot(
    graph: DependenceGraph,
    include_latencies: bool = True,
) -> str:
    """Render *graph* as a DOT digraph string."""
    lines = [f"digraph {_quote(graph.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica"];')
    for op in graph.operations():
        label = op.name
        if include_latencies:
            label += f"\\nλ={op.latency} {op.opclass}"
        shape = "box" if op.is_store else "ellipse"
        lines.append(
            f"  {_quote(op.name)} [label={_quote(label)} shape={shape}];"
        )
    for edge in graph.edges():
        attrs = [f"style={_EDGE_STYLE[edge.kind]}"]
        if edge.distance:
            attrs.append(f'label="d={edge.distance}"')
            attrs.append("constraint=false")
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[{' '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
