"""Text and Graphviz visualisations of graphs and schedules.

The paper's figures are re-renderable as plain text:

* :func:`~repro.viz.dot.graph_to_dot` — the dependence graph in Graphviz
  DOT (Figure 1 / 7 / 10 style; loop-carried edges dashed and labelled
  with their distance);
* :func:`~repro.viz.charts.lifetime_chart` — one iteration's schedule
  with a column per value and a bar over its lifetime (Figure 2b/3b/4b);
* :func:`~repro.viz.charts.register_rows` — live-value count per kernel
  row (Figure 2d/3d/4d).
"""

from repro.viz.charts import lifetime_chart, register_rows, schedule_table
from repro.viz.dot import graph_to_dot

__all__ = [
    "graph_to_dot",
    "lifetime_chart",
    "register_rows",
    "schedule_table",
]
