"""Text charts in the style of the paper's Figures 2–4.

Each of the paper's motivating figures shows, for one scheduler:

a) the schedule of one iteration,
b) the lifetimes of the loop variants (a bar per value over the cycles
   it is alive),
d) the number of alive registers per kernel row.

These renderers reproduce all three as monospace text, e.g.::

    >>> print(lifetime_chart(schedule))
    cycle | V:A  V:B  V:E ...
        0 |  #
        1 |  |
        2 |  +    #
        ...
"""

from __future__ import annotations

from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.maxlive import live_values_per_row
from repro.schedule.schedule import Schedule


def schedule_table(schedule: Schedule) -> str:
    """One iteration's schedule: a row per cycle, ops at their issue."""
    by_cycle: dict[int, list[str]] = {}
    for name in schedule.graph.node_names():
        by_cycle.setdefault(schedule.issue_cycle(name), []).append(name)
    last = max(by_cycle, default=0)
    lines = [f"II = {schedule.ii}, stages = {schedule.stage_count}"]
    for cycle in range(last + 1):
        ops = "  ".join(by_cycle.get(cycle, []))
        marker = "|" if cycle % schedule.ii else "+"
        lines.append(f"{cycle:4d} {marker} {ops}".rstrip())
    return "\n".join(lines)


def lifetime_chart(schedule: Schedule) -> str:
    """Figure 2b-style chart: one column per value, bars over lifetimes.

    ``#`` marks the definition cycle, ``|`` the cycles the value stays
    alive, ``+`` the final cycle before the last consumer issues.
    Zero-length lifetimes (producer and last consumer issue together, or
    no consumer) show a single ``#``.
    """
    lifetimes = compute_lifetimes(schedule)
    if not lifetimes:
        return "(no loop variants)"
    width = max(len(lt.producer) for lt in lifetimes) + 2
    top = max(
        [lt.end for lt in lifetimes]
        + [schedule.issue_cycle(n) for n in schedule.graph.node_names()]
    )
    header = "cycle |" + "".join(
        lt.producer.rjust(width) for lt in lifetimes
    )
    lines = [header]
    for cycle in range(top + 1):
        cells = []
        for lt in lifetimes:
            if cycle == lt.start:
                mark = "#"
            elif lt.start < cycle < lt.end - 1:
                mark = "|"
            elif lt.start < cycle == lt.end - 1:
                mark = "+"
            else:
                mark = ""
            cells.append(mark.rjust(width))
        lines.append(f"{cycle:5d} |" + "".join(cells))
    return "\n".join(lines)


def register_rows(schedule: Schedule) -> str:
    """Figure 2d-style summary: live variant count per kernel row."""
    per_row = live_values_per_row(schedule)
    lines = ["row | live variants"]
    for row, live in enumerate(per_row):
        lines.append(f"{row:3d} | {'*' * live} {live}")
    lines.append(f"MaxLive = {max(per_row, default=0)}")
    return "\n".join(lines)
