"""repro — Hypernode Reduction Modulo Scheduling (HRMS).

A full reproduction of *"Hypernode Reduction Modulo Scheduling"* (Llosa,
Valero, Ayguadé, González; MICRO-28, 1995): the HRMS register-sensitive
software pipeliner, the machine and dependence-graph substrates it needs,
the comparison schedulers of the paper's evaluation (Top-Down, Bottom-Up,
Slack, FRLC, SPILP — plus IMS, SMS and a register-optimal MILP), a
loop-language front end standing in for ICTINEO, the register-pressure
metrics (lifetimes, MaxLive, buffers), register allocators (MVE,
strategy matrix, rotating file), spill insertion, and harnesses that
regenerate every table and figure.

Quickstart::

    from repro import GraphBuilder, HRMSScheduler, motivating_machine
    from repro.schedule import max_live

    g = (GraphBuilder("demo")
         .load("x")
         .op("scale", "generic", latency=2, deps=["x"])
         .store("out", deps=["scale"])
         .build())
    schedule = HRMSScheduler().schedule(g, motivating_machine())
    print(schedule.ii, max_live(schedule))
"""

from repro.core.scheduler import HRMSScheduler
from repro.frontend.pipeline import compile_source
from repro.graph.builder import GraphBuilder
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation
from repro.machine.configs import (
    govindarajan_machine,
    motivating_machine,
    perfect_club_machine,
)
from repro.machine.machine import MachineModel, UnitClass
from repro.mii.analysis import compute_mii
from repro.schedule.schedule import Schedule
from repro.workloads.loops import Loop

__version__ = "1.0.0"

__all__ = [
    "DependenceGraph",
    "DependenceKind",
    "Edge",
    "GraphBuilder",
    "HRMSScheduler",
    "Loop",
    "MachineModel",
    "Operation",
    "Schedule",
    "UnitClass",
    "__version__",
    "compile_source",
    "compute_mii",
    "govindarajan_machine",
    "motivating_machine",
    "perfect_club_machine",
]
