"""Spill insertion + rescheduling loop.

Figure 14 evaluates machines with 32 and 64 registers: "when a loop
requires more than the available number of registers, spill code has been
added [15] and the loop has been re-scheduled".  The algorithm here:

1. Schedule the loop; if ``MaxLive + invariants`` fits the budget, done.
2. Otherwise pick a spill victim and re-schedule:

   * preferred — the *variant* with the longest lifetime (it holds a
     register across the most kernel rows).  The value is split through
     memory: a store after the producer, one reload in front of each
     consumer, connected by a memory dependence carrying the original
     iteration distance.  Spill code itself is never re-spilled.
   * when no variant lifetime is long enough to pay for the reload —
     a loop *invariant* is spilled instead: it gives its register back
     and is re-loaded inside the body (modelled as an additional load
     occupying memory-unit bandwidth).

3. Repeat until the pressure fits, no candidate remains, or spilling has
   stopped reducing the pressure (stop-loss — spill code costs II, so
   piling it onto a hopeless loop only makes Figure 14's cycle counts
   worse for everyone).

Spilling lengthens the critical path and adds load/store traffic, so the
II (and hence execution time) can grow — exactly the performance effect
Figure 14 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import MEM, Operation
from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule
from repro.schedulers.base import ModuloScheduler

#: Latency of the loads/stores inserted by the spiller.
SPILL_STORE_LATENCY = 1
SPILL_LOAD_LATENCY = 2

#: A spilled variant must outlive this threshold for the reload traffic
#: to pay off at all (store + load + slack).
MIN_VICTIM_LIFETIME = SPILL_STORE_LATENCY + SPILL_LOAD_LATENCY + 2

#: Give up after this many consecutive spills without pressure progress.
STALL_LIMIT = 3


@dataclass
class SpillOutcome:
    """Result of scheduling under a register budget."""

    schedule: Schedule
    graph: DependenceGraph
    spilled_values: list[str]
    spilled_invariants: int
    register_pressure: int
    budget: int | None
    fits: bool

    @property
    def spill_count(self) -> int:
        return len(self.spilled_values) + self.spilled_invariants


def schedule_with_register_budget(
    graph: DependenceGraph,
    machine,
    scheduler: ModuloScheduler,
    budget: int | None,
    invariants: int = 0,
) -> SpillOutcome:
    """Schedule *graph*, spilling until variants+invariants fit *budget*.

    ``budget=None`` means unlimited registers (the "inf" column of
    Figure 14): the loop is scheduled once, nothing is spilled.
    """
    working = graph
    spilled: list[str] = []
    already: set[str] = set()
    invariants_left = invariants
    invariant_spills = 0
    stall = 0
    best: tuple[int, Schedule, DependenceGraph] | None = None

    while True:
        schedule = scheduler.schedule(working, machine)
        pressure = max_live(schedule) + invariants_left
        if best is None or pressure < best[0]:
            best = (pressure, schedule, working)
            stall = 0
        else:
            stall += 1
        if budget is None or pressure <= budget:
            return SpillOutcome(
                schedule=schedule,
                graph=working,
                spilled_values=spilled,
                spilled_invariants=invariant_spills,
                register_pressure=pressure,
                budget=budget,
                fits=True,
            )
        if stall >= STALL_LIMIT:
            break

        victim = _pick_victim(schedule, already)
        if victim is not None:
            working = _spill_value(working, victim)
            spilled.append(victim)
            already.add(victim)
            continue
        if invariants_left > 0:
            working = _spill_invariant(working, invariant_spills)
            invariants_left -= 1
            invariant_spills += 1
            continue
        break  # nothing left to spill

    pressure, schedule, working = best
    return SpillOutcome(
        schedule=schedule,
        graph=working,
        spilled_values=spilled,
        spilled_invariants=invariant_spills,
        register_pressure=pressure,
        budget=budget,
        fits=budget is None or pressure <= budget,
    )


def _pick_victim(schedule: Schedule, already: set[str]) -> str | None:
    """Longest-lifetime spillable variant.

    Preference order: lifetimes longer than the II (guaranteed to remove
    cross-iteration overlap), then any lifetime long enough to pay for
    the reload.  Spill code is never re-spilled.
    """
    graph = schedule.graph
    tiers: list[tuple[int, str] | None] = [None, None]
    for lifetime in compute_lifetimes(schedule):
        name = lifetime.producer
        if name in already:
            continue
        op = graph.operation(name)
        if op.attrs.get("spill"):
            continue
        if not graph.value_consumers(name):
            continue
        key = (lifetime.length, name)
        if lifetime.length > schedule.ii:
            if tiers[0] is None or key > tiers[0]:
                tiers[0] = key
        elif lifetime.length > MIN_VICTIM_LIFETIME:
            if tiers[1] is None or key > tiers[1]:
                tiers[1] = key
    for tier in tiers:
        if tier is not None:
            return tier[1]
    return None


def _spill_value(graph: DependenceGraph, producer: str) -> DependenceGraph:
    """Rewrite *graph*, pushing *producer*'s value through memory."""
    rewritten = DependenceGraph(graph.name)
    store_name = f"{producer}.spst"
    consumers = [
        edge
        for edge in graph.out_edges(producer)
        if edge.kind is DependenceKind.REGISTER and edge.dst != producer
    ]

    for op in graph.operations():
        rewritten.add_operation(op)
        if op.name == producer:
            rewritten.add_operation(
                Operation(
                    name=store_name,
                    latency=SPILL_STORE_LATENCY,
                    opclass=MEM,
                    produces_value=False,
                    attrs={"spill": True},
                )
            )
    load_names: dict[str, str] = {}
    for edge in consumers:
        load_name = f"{producer}.spld.{edge.dst}.d{edge.distance}"
        if load_name not in rewritten:
            rewritten.add_operation(
                Operation(
                    name=load_name,
                    latency=SPILL_LOAD_LATENCY,
                    opclass=MEM,
                    produces_value=True,
                    attrs={"spill": True},
                )
            )
        load_names[f"{edge.dst}:{edge.distance}"] = load_name

    dropped = {edge.key for edge in consumers}
    for edge in graph.edges():
        if edge.key not in dropped:
            rewritten.add_edge(edge)

    # producer -> spill store (register value consumed by the store).
    rewritten.add_edge(Edge(producer, store_name, 0, DependenceKind.REGISTER))
    for edge in consumers:
        load_name = load_names[f"{edge.dst}:{edge.distance}"]
        # Memory dependence carries the original iteration distance: the
        # reload in iteration i reads what iteration i - distance stored.
        rewritten.add_edge(
            Edge(store_name, load_name, edge.distance, DependenceKind.MEMORY)
        )
        rewritten.add_edge(
            Edge(load_name, edge.dst, 0, DependenceKind.REGISTER)
        )
    rewritten.validate()
    return rewritten


def _spill_invariant(graph: DependenceGraph, index: int) -> DependenceGraph:
    """Give one loop invariant its register back.

    The invariant is re-loaded inside the body instead of staying
    resident; its uses are register-adjacent to the reload, so the cost
    is modelled as one additional load's worth of memory-unit bandwidth
    per iteration (the conservative part — the brief reload lifetime —
    is identical for every scheduler being compared).
    """
    rewritten = graph.copy()
    rewritten.add_operation(
        Operation(
            name=f"inv.spld.{index}",
            latency=SPILL_LOAD_LATENCY,
            opclass=MEM,
            produces_value=True,
            attrs={"spill": True},
        )
    )
    return rewritten
