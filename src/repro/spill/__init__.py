"""Spill-code insertion for register-constrained machines (Figure 14).

When a scheduled loop needs more registers than the machine provides, the
paper adds spill code (after [15]) and re-schedules.  The public entry
point is :func:`repro.spill.spiller.schedule_with_register_budget`.
"""

from repro.spill.spiller import SpillOutcome, schedule_with_register_budget

__all__ = ["SpillOutcome", "schedule_with_register_budget"]
