"""The paper's machine configurations and the latency tables they use.

Two latency tables appear in the evaluation:

* Section 4.1 (Table 1 comparison): add/sub/store 1 cycle, multiply/load 2
  cycles, divide 17 cycles.
* Section 4.2 (Perfect Club study): store 1, load 2, add 4, multiply 4,
  divide 17, square root 30; the Div/Sqrt units are not pipelined.
"""

from __future__ import annotations

from repro.graph.ops import FADD, FDIV, FMUL, FSQRT, GENERIC, MEM
from repro.machine.machine import MachineModel, UnitClass

#: Latencies for the Table-1 (Govindarajan) comparison, Section 4.1.
GOVINDARAJAN_LATENCIES = {
    FADD: 1,
    FMUL: 2,
    FDIV: 17,
    MEM: 2,  # loads; stores use latency 1 via the builder
}

#: Store latency in both studies.
STORE_LATENCY = 1

#: Latencies for the Perfect Club study, Section 4.2.
PERFECT_CLUB_LATENCIES = {
    FADD: 4,
    FMUL: 4,
    FDIV: 17,
    FSQRT: 30,
    MEM: 2,
}


def motivating_machine(units: int = 4) -> MachineModel:
    """Section 2's machine: *units* general-purpose pipelined units."""
    return MachineModel(
        name=f"generic{units}",
        units=[UnitClass(GENERIC, units, pipelined=True)],
    )


def govindarajan_machine() -> MachineModel:
    """Section 4.1's machine: 1 FP add, 1 FP mul, 1 FP div, 1 load/store."""
    return MachineModel(
        name="govindarajan",
        units=[
            UnitClass(FADD, 1),
            UnitClass(FMUL, 1),
            UnitClass(FDIV, 1),
            UnitClass(MEM, 1),
        ],
    )


#: Wire-name aliases the paper's sections use for the canonical configs.
MACHINE_ALIASES = {
    "motivating": "generic4",
    "perfect_club": "perfect-club",
}


def canonical_machines() -> dict[str, "MachineModel"]:
    """Fresh instances of every distinct machine configuration.

    One entry per *structure* (no aliases) — what a portfolio sweep
    iterates so no configuration is raced twice under two names.
    """
    return {
        "generic4": motivating_machine(),
        "govindarajan": govindarajan_machine(),
        "perfect-club": perfect_club_machine(),
    }


#: Machines addressable by name over the wire (service requests, CLIs).
#: Keys are the canonical names plus the aliases the paper's sections use.
def builtin_machines() -> dict[str, "MachineModel"]:
    """Fresh instances of every named machine configuration."""
    machines = canonical_machines()
    for alias, target in MACHINE_ALIASES.items():
        machines[alias] = machines[target]
    return machines


def machine_from_config(spec) -> MachineModel:
    """Resolve a machine from a name, a dict envelope, or a model.

    This is the single entry point the service and CLIs use to accept
    machine descriptions over the wire: ``spec`` may be a registered
    configuration name (:func:`builtin_machines`), a dict produced by
    :meth:`MachineModel.to_dict`, or an already-built model (returned
    unchanged).
    """
    from repro.errors import MachineError

    if isinstance(spec, MachineModel):
        return spec
    if isinstance(spec, str):
        machines = builtin_machines()
        try:
            return machines[spec]
        except KeyError:
            raise MachineError(
                f"unknown machine configuration {spec!r}; "
                f"available: {', '.join(sorted(set(machines)))}"
            ) from None
    if isinstance(spec, dict):
        return MachineModel.from_dict(spec)
    raise MachineError(
        f"cannot build a machine from {type(spec).__name__}"
    )


def perfect_club_machine() -> MachineModel:
    """Section 4.2's machine: 2 of each class, Div/Sqrt unpipelined.

    The paper gives divides and square roots a shared pair of unpipelined
    units; we model them as one ``fdiv`` class and one ``fsqrt`` class is
    folded into it by the workload generator mapping sqrt ops onto
    ``fdiv``-class units with latency 30.  To keep graphs expressive we
    declare both classes backed by the same count — two unpipelined units
    each — which matches the paper's pressure because sqrt is rare.
    """
    return MachineModel(
        name="perfect-club",
        units=[
            UnitClass(MEM, 2),
            UnitClass(FADD, 2),
            UnitClass(FMUL, 2),
            UnitClass(FDIV, 2, pipelined=False),
            UnitClass(FSQRT, 2, pipelined=False),
        ],
    )
