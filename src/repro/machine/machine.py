"""The machine model.

A machine is a set of functional-unit classes.  Each class has a number of
identical unit instances and is either fully pipelined (a new operation can
start every cycle on each unit) or unpipelined (a unit is busy for the full
latency of the operation it executes — the paper's Div/Sqrt units).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError, UnknownResourceError
from repro.graph.ops import GENERIC, Operation


@dataclass(frozen=True)
class UnitClass:
    """A class of identical functional units."""

    name: str
    count: int
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise MachineError(
                f"unit class {self.name!r}: count must be >= 1, "
                f"got {self.count}"
            )


class MachineModel:
    """An execution target described by its functional-unit classes.

    A machine either declares the single :data:`~repro.graph.ops.GENERIC`
    class (every operation runs on any unit) or one class per opclass used
    by the graphs it schedules.
    """

    def __init__(self, name: str, units: list[UnitClass]) -> None:
        if not units:
            raise MachineError("a machine needs at least one unit class")
        self.name = name
        self._classes: dict[str, UnitClass] = {}
        for unit in units:
            if unit.name in self._classes:
                raise MachineError(f"duplicate unit class {unit.name!r}")
            self._classes[unit.name] = unit

    # ------------------------------------------------------------------
    @property
    def is_generic(self) -> bool:
        """``True`` when all operations share one general-purpose class."""
        return set(self._classes) == {GENERIC}

    def unit_classes(self) -> list[UnitClass]:
        """All unit classes, declaration order."""
        return list(self._classes.values())

    def class_for(self, op: Operation) -> UnitClass:
        """The unit class that executes *op*."""
        if self.is_generic:
            return self._classes[GENERIC]
        try:
            return self._classes[op.opclass]
        except KeyError:
            raise UnknownResourceError(op.opclass) from None

    def reservation_cycles(self, op: Operation) -> int:
        """How many consecutive cycles *op* holds a unit instance."""
        unit = self.class_for(op)
        return 1 if unit.pipelined else op.latency

    def total_units(self) -> int:
        """Total number of unit instances across all classes."""
        return sum(unit.count for unit in self._classes.values())

    # ------------------------------------------------------------------
    # Wire format.  The scheduling service accepts machine descriptions
    # over HTTP, so machines round-trip through plain dicts the same way
    # graphs do (:mod:`repro.graph.serialization`).
    SCHEMA = 1

    def to_dict(self) -> dict:
        """Serialise the machine to a plain, JSON-ready dict."""
        return {
            "schema": self.SCHEMA,
            "name": self.name,
            "units": [
                {
                    "name": unit.name,
                    "count": unit.count,
                    "pipelined": unit.pipelined,
                }
                for unit in self._classes.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineModel":
        """Rebuild a machine serialised by :meth:`to_dict`.

        The loader is tolerant: a missing ``schema`` is treated as
        version 1 and unknown keys are ignored, so envelopes written by
        future minor revisions stay readable.  A *newer* declared schema
        is rejected — the fields it adds could change meaning.
        """
        if not isinstance(data, dict):
            raise MachineError(
                f"machine description must be a dict, got {type(data).__name__}"
            )
        schema = data.get("schema", cls.SCHEMA)
        if not isinstance(schema, int) or not 1 <= schema <= cls.SCHEMA:
            raise MachineError(f"unsupported machine schema {schema!r}")
        units = data.get("units")
        if not units:
            raise MachineError("machine description declares no unit classes")
        try:
            unit_classes = [
                UnitClass(
                    name=str(unit["name"]),
                    count=int(unit.get("count", 1)),
                    pipelined=bool(unit.get("pipelined", True)),
                )
                for unit in units
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise MachineError(f"bad unit class description: {exc}") from exc
        return cls(name=str(data.get("name", "machine")), units=unit_classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{u.name}x{u.count}{'' if u.pipelined else ' (unpipelined)'}"
            for u in self._classes.values()
        )
        return f"MachineModel({self.name!r}: {parts})"
