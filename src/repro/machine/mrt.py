"""Modulo reservation table (MRT).

The MRT enforces the *modulo constraint*: an operation placed at cycle ``t``
occupies its functional unit at row ``t mod II`` (and, for unpipelined
units, the following ``latency - 1`` rows as well) in **every** iteration.
All schedulers in the library share this implementation, including the
ejection-based ones, so slots track their occupant and can be vacated.

Occupancy is held twice: a NumPy boolean mask per unit class (what every
feasibility test reads — a whole II-length scan window collapses to one
rolled-mask reduction in :meth:`ModuloReservationTable.scan_place`) and a
per-slot occupant-name table (what Slack's ejection machinery and the
diagnostics read).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import MachineError
from repro.graph.ops import Operation
from repro.machine.machine import MachineModel
from repro.obs import trace


class ModuloReservationTable:
    """Resource tracker for one candidate initiation interval."""

    def __init__(self, machine: MachineModel, ii: int) -> None:
        if ii < 1:
            raise MachineError(f"II must be >= 1, got {ii}")
        self.machine = machine
        self.ii = ii
        # occupied[class name][unit index, row] -> bool
        self._occupied: dict[str, np.ndarray] = {
            unit.name: np.zeros((unit.count, ii), dtype=bool)
            for unit in machine.unit_classes()
        }
        # names[class name][unit index][row] -> occupant op name or None
        self._names: dict[str, list[list[str | None]]] = {
            unit.name: [[None] * ii for _ in range(unit.count)]
            for unit in machine.unit_classes()
        }
        # op name -> (class name, unit index, start row, span)
        self._placements: dict[str, tuple[str, int, int, int]] = {}
        self._rows = np.arange(ii, dtype=np.int64)

    def reset(self) -> None:
        """Vacate every slot; equivalent to a fresh table at the same II.

        Sessions reuse one table across a scheduler's repeated attempts
        at a single II (clearing the arrays in place is far cheaper
        than reallocating the per-class masks and name tables).
        """
        for class_name, index, row, span in self._placements.values():
            occupied = self._occupied[class_name]
            unit_names = self._names[class_name][index]
            for offset in range(span):
                slot = (row + offset) % self.ii
                occupied[index, slot] = False
                unit_names[slot] = None
        self._placements.clear()

    # ------------------------------------------------------------------
    def fits(self, op: Operation, cycle: int) -> bool:
        """Can *op* issue at absolute *cycle* without a resource conflict?"""
        return self._find_unit(op, cycle) is not None

    def _find_unit(self, op: Operation, cycle: int) -> int | None:
        unit_class = self.machine.class_for(op)
        span = self.machine.reservation_cycles(op)
        if span > self.ii:
            # An unpipelined unit cannot start a new op every II cycles if
            # one execution lasts longer than II.
            return None
        row = cycle % self.ii
        occupied = self._occupied[unit_class.name]
        if span == 1:
            busy = occupied[:, row]
        else:
            rows = (row + self._rows[:span]) % self.ii
            busy = occupied[:, rows].any(axis=1)
        index = int(busy.argmin())  # first free unit
        return None if busy[index] else index

    def place(self, op: Operation, cycle: int) -> bool:
        """Reserve a unit for *op* at *cycle*; ``False`` if none is free."""
        if op.name in self._placements:
            raise MachineError(f"operation {op.name!r} is already placed")
        index = self._find_unit(op, cycle)
        if index is None:
            return False
        unit_class = self.machine.class_for(op)
        span = self.machine.reservation_cycles(op)
        self._reserve(unit_class.name, index, cycle % self.ii, span, op.name)
        return True

    def scan_place(
        self, op: Operation, candidates: Iterable[int]
    ) -> int | None:
        """Place *op* at the first candidate cycle with a free unit.

        Equivalent to trying :meth:`place` per candidate, but the whole
        window is tested at once: the free-start-row mask of every unit
        is built with one rolled-mask reduction, then the candidates are
        checked against it in a single vectorized pass.
        """
        if op.name in self._placements:
            raise MachineError(f"operation {op.name!r} is already placed")
        unit_class = self.machine.class_for(op)
        span = self.machine.reservation_cycles(op)
        if span > self.ii:
            return None
        if isinstance(candidates, range):
            cycles = np.arange(
                candidates.start, candidates.stop, candidates.step,
                dtype=np.int64,
            )
        else:
            cycles = np.fromiter(candidates, dtype=np.int64)
        if cycles.size == 0:
            return None
        occupied = self._occupied[unit_class.name]
        if span == 1:
            unit_free = ~occupied
        else:
            # windows[r, o] = row of offset o for a start at row r
            windows = (self._rows[:, None] + self._rows[None, :span]) % self.ii
            unit_free = ~occupied[:, windows].any(axis=2)
        row_free = unit_free.any(axis=0)
        rows = cycles % self.ii
        feasible = row_free[rows]
        first = int(feasible.argmax())
        placed = None
        if feasible[first]:
            row = int(rows[first])
            index = int(unit_free[:, row].argmax())  # first free unit
            self._reserve(unit_class.name, index, row, span, op.name)
            placed = int(cycles[first])
        # Only failed scans are recorded: successful placements are
        # implied by the schedule itself, and scan_place is the inner
        # placement loop — eventing every call would dominate the
        # enabled-tracing overhead budget.
        if placed is None and trace.ACTIVE is not None:
            trace.add_event(
                "mrt.scan",
                {"op": op.name, "candidates": int(cycles.size)},
            )
        return placed

    def _reserve(
        self, class_name: str, index: int, row: int, span: int, name: str
    ) -> None:
        occupied = self._occupied[class_name]
        unit_names = self._names[class_name][index]
        for offset in range(span):
            slot = (row + offset) % self.ii
            occupied[index, slot] = True
            unit_names[slot] = name
        self._placements[name] = (class_name, index, row, span)

    def unplace(self, op: Operation) -> None:
        """Release the reservation held by *op* (no-op when absent)."""
        placement = self._placements.pop(op.name, None)
        if placement is None:
            return
        class_name, index, row, span = placement
        occupied = self._occupied[class_name]
        unit_names = self._names[class_name][index]
        for offset in range(span):
            slot = (row + offset) % self.ii
            occupied[index, slot] = False
            unit_names[slot] = None

    def is_placed(self, op: Operation) -> bool:
        return op.name in self._placements

    def occupants(self, class_name: str, row: int) -> list[str]:
        """Names occupying *class_name* units at *row* (for diagnostics)."""
        return [
            unit_names[row % self.ii]
            for unit_names in self._names[class_name]
            if unit_names[row % self.ii] is not None
        ]

    def conflicting_ops(self, op: Operation, cycle: int) -> set[str]:
        """Occupants that prevent *op* from issuing at *cycle*.

        Used by ejection-based schedulers (Slack) to decide whom to evict.
        Returns the union of occupants over the rows *op* would need; when
        the table simply has no capacity the set may cover every unit.
        """
        unit_class = self.machine.class_for(op)
        span = self.machine.reservation_cycles(op)
        row = cycle % self.ii
        blockers: set[str] = set()
        for unit_names in self._names[unit_class.name]:
            for offset in range(span):
                occupant = unit_names[(row + offset) % self.ii]
                if occupant is not None:
                    blockers.add(occupant)
        return blockers

    def utilisation(self) -> float:
        """Fraction of slot-rows currently reserved (diagnostics)."""
        total = sum(occ.size for occ in self._occupied.values())
        used = sum(int(occ.sum()) for occ in self._occupied.values())
        return used / total if total else 0.0
