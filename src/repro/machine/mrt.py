"""Modulo reservation table (MRT).

The MRT enforces the *modulo constraint*: an operation placed at cycle ``t``
occupies its functional unit at row ``t mod II`` (and, for unpipelined
units, the following ``latency - 1`` rows as well) in **every** iteration.
All schedulers in the library share this implementation, including the
ejection-based ones, so slots track their occupant and can be vacated.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.graph.ops import Operation
from repro.machine.machine import MachineModel


class ModuloReservationTable:
    """Resource tracker for one candidate initiation interval."""

    def __init__(self, machine: MachineModel, ii: int) -> None:
        if ii < 1:
            raise MachineError(f"II must be >= 1, got {ii}")
        self.machine = machine
        self.ii = ii
        # table[class name][unit index][row] -> occupant op name or None
        self._table: dict[str, list[list[str | None]]] = {
            unit.name: [[None] * ii for _ in range(unit.count)]
            for unit in machine.unit_classes()
        }
        # op name -> (class name, unit index, start row, span)
        self._placements: dict[str, tuple[str, int, int, int]] = {}

    # ------------------------------------------------------------------
    def _span(self, op: Operation) -> int:
        span = self.machine.reservation_cycles(op)
        return span

    def fits(self, op: Operation, cycle: int) -> bool:
        """Can *op* issue at absolute *cycle* without a resource conflict?"""
        return self._find_unit(op, cycle) is not None

    def _find_unit(self, op: Operation, cycle: int) -> int | None:
        unit_class = self.machine.class_for(op)
        span = self._span(op)
        if span > self.ii:
            # An unpipelined unit cannot start a new op every II cycles if
            # one execution lasts longer than II.
            return None
        row = cycle % self.ii
        units = self._table[unit_class.name]
        for index, unit_rows in enumerate(units):
            if all(
                unit_rows[(row + offset) % self.ii] is None
                for offset in range(span)
            ):
                return index
        return None

    def place(self, op: Operation, cycle: int) -> bool:
        """Reserve a unit for *op* at *cycle*; ``False`` if none is free."""
        if op.name in self._placements:
            raise MachineError(f"operation {op.name!r} is already placed")
        index = self._find_unit(op, cycle)
        if index is None:
            return False
        unit_class = self.machine.class_for(op)
        span = self._span(op)
        row = cycle % self.ii
        unit_rows = self._table[unit_class.name][index]
        for offset in range(span):
            unit_rows[(row + offset) % self.ii] = op.name
        self._placements[op.name] = (unit_class.name, index, row, span)
        return True

    def unplace(self, op: Operation) -> None:
        """Release the reservation held by *op* (no-op when absent)."""
        placement = self._placements.pop(op.name, None)
        if placement is None:
            return
        class_name, index, row, span = placement
        unit_rows = self._table[class_name][index]
        for offset in range(span):
            unit_rows[(row + offset) % self.ii] = None

    def is_placed(self, op: Operation) -> bool:
        return op.name in self._placements

    def occupants(self, class_name: str, row: int) -> list[str]:
        """Names occupying *class_name* units at *row* (for diagnostics)."""
        return [
            unit_rows[row % self.ii]
            for unit_rows in self._table[class_name]
            if unit_rows[row % self.ii] is not None
        ]

    def conflicting_ops(self, op: Operation, cycle: int) -> set[str]:
        """Occupants that prevent *op* from issuing at *cycle*.

        Used by ejection-based schedulers (Slack) to decide whom to evict.
        Returns the union of occupants over the rows *op* would need; when
        the table simply has no capacity the set may cover every unit.
        """
        unit_class = self.machine.class_for(op)
        span = self._span(op)
        row = cycle % self.ii
        blockers: set[str] = set()
        for unit_rows in self._table[unit_class.name]:
            for offset in range(span):
                occupant = unit_rows[(row + offset) % self.ii]
                if occupant is not None:
                    blockers.add(occupant)
        return blockers

    def utilisation(self) -> float:
        """Fraction of slot-rows currently reserved (diagnostics)."""
        total = 0
        used = 0
        for units in self._table.values():
            for unit_rows in units:
                total += len(unit_rows)
                used += sum(1 for slot in unit_rows if slot is not None)
        return used / total if total else 0.0
