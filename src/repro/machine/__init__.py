"""Machine model: functional-unit classes and the modulo reservation table.

The paper evaluates three configurations, all provided in
:mod:`repro.machine.configs`:

* ``motivating_machine`` — 4 general-purpose pipelined units, latency 2
  (Section 2's example).
* ``govindarajan_machine`` — 1 FP adder, 1 FP multiplier, 1 FP divider and
  1 load/store unit; latencies add/sub/store 1, mul/load 2, div 17
  (Section 4.1, Table 1).
* ``perfect_club_machine`` — 2 load/store, 2 adders, 2 multipliers and
  2 div/sqrt units; the div/sqrt units are **not pipelined**; latencies
  store 1, load 2, add/mul 4, div 17, sqrt 30 (Section 4.2).
"""

from repro.machine.configs import (
    builtin_machines,
    govindarajan_machine,
    machine_from_config,
    motivating_machine,
    perfect_club_machine,
)
from repro.machine.machine import MachineModel, UnitClass
from repro.machine.mrt import ModuloReservationTable

__all__ = [
    "MachineModel",
    "ModuloReservationTable",
    "UnitClass",
    "builtin_machines",
    "govindarajan_machine",
    "machine_from_config",
    "motivating_machine",
    "perfect_club_machine",
]
