"""Deterministic fault injection for the service stack.

A :class:`FaultPlan` is a seed plus a set of :class:`FaultRule`\\ s, each
naming one *injection point* — a fixed hook compiled into the service
code (store I/O, torn writes, scheduler exceptions and latency, worker
kills, pickle failures, slow/failed HTTP handlers).  Activating a
:class:`FaultInjector` built from a plan makes those hooks fire with
the rule's probability, driven by a per-point RNG derived from the plan
seed — the same plan replays the same *decision sequence* at every
point, which is what lets the chaos campaign name, replay, and shrink a
failure from its seed alone.

Zero overhead when disabled: call sites guard on the module-level
``ACTIVE`` global (``if faults.ACTIVE is not None: …``), so production
code pays one global load and an identity test per hook — nothing else.

The injector only *decides*; each call site owns the mechanics of its
failure (raising ``OSError``, mangling bytes, killing a worker process)
so the fault is always the real failure mode of that layer, not a
simulation of one.
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Every injection point compiled into the service code, with the layer
#: and failure mode it exercises.  ``chaos.*`` points are interpreted by
#: the chaos harness itself (no service hook) — they direct scenario
#: choices such as force-tripping the circuit breaker.
POINTS: dict[str, str] = {
    "store.get.io": "store: OSError while reading an envelope",
    "store.put.io": "store: OSError while writing an envelope",
    "store.put.torn": "store: envelope written torn/corrupt",
    "executor.latency": "executor: artificial scheduling latency",
    "executor.error": "executor: transient scheduler exception",
    "procpool.kill": "procpool: SIGKILL one worker process",
    "procpool.pickle": "procpool: request fails to pickle",
    "api.latency": "api: slow HTTP handler",
    "api.error": "api: handler replies 500",
    "chaos.breaker.trip": "harness: force the circuit breaker open",
}


@dataclass(frozen=True)
class FaultRule:
    """One injection point armed with a firing probability."""

    point: str
    probability: float = 1.0
    #: Stop firing after this many hits (``None`` = unlimited).
    max_fires: int | None = None
    #: Sleep duration for latency points.
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; known: "
                f"{', '.join(sorted(POINTS))}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "probability": self.probability,
            "max_fires": self.max_fires,
            "delay_s": self.delay_s,
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultRule":
        return FaultRule(
            point=data["point"],
            probability=data.get("probability", 1.0),
            max_fires=data.get("max_fires"),
            delay_s=data.get("delay_s", 0.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it arms — the replayable unit of chaos."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def rule_for(self, point: str) -> FaultRule | None:
        for rule in self.rules:
            if rule.point == point:
                return rule
        return None

    def without(self, point: str) -> "FaultPlan":
        """A copy of this plan with *point* disarmed (shrinking)."""
        return FaultPlan(
            seed=self.seed,
            rules=tuple(r for r in self.rules if r.point != point),
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        return FaultPlan(
            seed=data.get("seed", 0),
            rules=tuple(
                FaultRule.from_dict(entry) for entry in data.get("rules", ())
            ),
        )


def _point_rng(seed: int, point: str) -> random.Random:
    """A point's private RNG: decisions at one point never perturb the
    sequence at another, so disarming a rule while shrinking leaves the
    remaining points' behaviour bit-identical."""
    return random.Random((seed << 32) ^ zlib.crc32(point.encode("utf-8")))


@dataclass
class _PointState:
    rule: FaultRule
    rng: random.Random
    fired: int = 0


class FaultInjector:
    """Decides, thread-safely and reproducibly, whether each armed
    injection point fires; counts every hit per point."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._points: dict[str, _PointState] = {
            rule.point: _PointState(rule, _point_rng(plan.seed, rule.point))
            for rule in plan.rules
        }

    def should_fire(self, point: str) -> FaultRule | None:
        """The armed rule if *point* fires now, else ``None``."""
        state = self._points.get(point)
        if state is None:
            return None
        with self._lock:
            rule = state.rule
            if rule.max_fires is not None and state.fired >= rule.max_fires:
                return None
            if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                return None
            state.fired += 1
            return rule

    def point_rng(self, point: str) -> random.Random:
        """The per-point RNG (call sites that need random *content*,
        e.g. how to mangle an envelope, share the decision stream)."""
        return self._points[point].rng

    def fired(self) -> dict[str, int]:
        """Hit counts per armed point (zero entries included)."""
        with self._lock:
            return {
                point: state.fired for point, state in self._points.items()
            }

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(state.fired for state in self._points.values())


#: The live injector, or ``None`` (the common case).  Call sites guard
#: on this being non-None before paying any further cost.
ACTIVE: FaultInjector | None = None

_ACTIVATION_LOCK = threading.Lock()


def activate(injector: FaultInjector) -> None:
    """Install *injector* as the process-wide live injector."""
    global ACTIVE
    with _ACTIVATION_LOCK:
        if ACTIVE is not None:
            raise RuntimeError("a fault injector is already active")
        ACTIVE = injector


def deactivate() -> None:
    """Remove the live injector (idempotent)."""
    global ACTIVE
    with _ACTIVATION_LOCK:
        ACTIVE = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Activate a fresh injector for *plan* within the block."""
    injector = FaultInjector(plan)
    activate(injector)
    try:
        yield injector
    finally:
        deactivate()


def mangle(text: str, rng: random.Random) -> str:
    """Corrupt an envelope's serialized text the way real failures do:
    truncation (torn write) or byte damage (bit rot)."""
    mode = rng.randrange(3)
    if mode == 0 and len(text) > 2:
        # Torn write: only a prefix made it to disk.
        return text[: rng.randrange(1, len(text))]
    if mode == 1:
        # Flipped bytes inside the payload.
        chars = list(text)
        for _ in range(rng.randint(1, 4)):
            index = rng.randrange(len(chars))
            chars[index] = chr((ord(chars[index]) + 13) % 126 or 32)
        return "".join(chars)
    # Replaced with same-length junk that is still not valid JSON.
    return "#" * len(text)
