"""Content-addressed, on-disk artifact store.

Artifacts (schedules, study rows) are JSON envelopes keyed by the SHA-256
of a canonical *request* — the complete structural identity of what was
computed: graph fingerprint × machine description × scheduler × options.
Identical requests therefore land on the same key no matter which
process, worker or server run produced them, which is what lets a
restarted server serve warm results without rescheduling.

Layout on disk (one file per artifact, fanned out **two levels** by key
prefix so no directory ever holds more than a few hundred entries even
with millions of artifacts)::

    <root>/
      objects/
        ab/
          cd/
            abcd12…ef.json  # {"schema": 1, "kind": …, "key": …,
                            #  "request": …, "payload": …}

Two legacy layouts are read transparently and migrated on first touch
(an ``os.replace`` into the sharded location, so the migration is atomic
and idempotent): the single-level ``objects/ab/<key>.json`` fan-out of
earlier versions, and the original flat ``objects/<key>.json``.  Reads
prefer the sharded path; writes only ever produce it.

Envelopes carry a schema version and an ``integrity`` digest (SHA-256
of the canonical envelope minus the digest itself), verified on every
read.  A file that is torn, fails its digest, or declares a schema this
code does not understand is **quarantined** — atomically moved to
``<root>/quarantine/`` (never silently deleted: it is evidence) — and
the read counts as a miss, so the request falls through to a fresh
compute.  Envelopes written before the digest existed verify trivially
(no declared digest, nothing to check).  Writes are atomic (temp file +
``os.replace``), so concurrent workers racing on the same key are
harmless — both write the same bits.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from collections.abc import MutableMapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ArtifactError
from repro.obs import trace
from repro.service import faults

logger = logging.getLogger(__name__)

#: Envelope schema written by this version of the store.
STORE_SCHEMA = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing requests (sorted keys,
    no whitespace; tuples collapse onto lists)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def request_key(request: dict) -> str:
    """The content address (SHA-256 hex) of a canonical request dict."""
    return hashlib.sha256(canonical_json(request).encode("utf-8")).hexdigest()


def envelope_integrity(envelope: dict) -> str:
    """The integrity digest of *envelope*: SHA-256 over its canonical
    JSON with the ``integrity`` field itself removed."""
    core = {k: v for k, v in envelope.items() if k != "integrity"}
    return hashlib.sha256(canonical_json(core).encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss accounting since the store object was created."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Corrupt/unsupported envelopes moved to ``quarantine/``.
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ArtifactStore:
    """A durable map from request keys to JSON artifact envelopes."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._quarantine_dir = self.root / "quarantine"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._stats = StoreStats()
        #: Optional :class:`repro.obs.events.EventLog`; the service
        #: installs one so quarantines land in the audit journal.
        self.events: Any = None

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        """The canonical (two-level sharded) location of *key*."""
        if len(key) < 4 or any(c not in "0123456789abcdef" for c in key):
            raise ArtifactError(f"malformed artifact key {key!r}")
        return self._objects / key[:2] / key[2:4] / f"{key}.json"

    def _legacy_paths(self, key: str) -> tuple[Path, Path]:
        """Where older store versions put *key* (read-only shim)."""
        return (
            self._objects / key[:2] / f"{key}.json",  # one-level fan-out
            self._objects / f"{key}.json",  # original flat layout
        )

    def _locate(self, key: str) -> Path | None:
        """The on-disk file currently holding *key*, canonical first."""
        path = self._path_for(key)
        if path.exists():
            return path
        for legacy in self._legacy_paths(key):
            if legacy.exists():
                return legacy
        return None

    def _migrate(self, legacy: Path, key: str) -> None:
        """Best-effort atomic move of a legacy file to the sharded path.

        Concurrent readers may race on the same legacy file; whoever
        loses the ``os.replace`` simply finds the file already gone —
        the content is equivalent either way (a key's envelope is
        determined by its request), so errors are swallowed.  A
        canonical file that already exists is left alone: a concurrent
        ``put`` must not be clobbered by a stale legacy copy.
        """
        path = self._path_for(key)
        if path.exists():
            try:
                legacy.unlink()
            except OSError:
                pass
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, path)
        except OSError:
            pass

    def key_for(self, request: dict) -> str:
        """Content address of *request* (alias of :func:`request_key`)."""
        return request_key(request)

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Atomically move a bad envelope to ``quarantine/`` (evidence,
        not garbage); best-effort — losing the race to a concurrent
        reader or a re-put is fine."""
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self._quarantine_dir / f"{key}.json"
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = self._quarantine_dir / f"{key}.{suffix}.json"
        try:
            os.replace(path, dest)
        except OSError:
            return
        with self._lock:
            self._stats.quarantined += 1
        logger.warning(
            "quarantined artifact %s (%s) -> %s", key, reason, dest
        )
        if self.events is not None:
            self.events.emit(
                "store.quarantined",
                key=key,
                reason=reason,
                dest=str(dest),
            )

    def get(self, key: str) -> dict | None:
        """The envelope stored under *key*, or ``None`` on a miss.

        Every read is verified: unparseable JSON, a failed ``integrity``
        digest, a non-dict envelope, or a schema newer than this code
        understands moves the file to ``quarantine/`` and counts as a
        miss (the caller recomputes).  A hit under a legacy layout is
        migrated to the sharded path as a side effect.
        """
        if trace.ACTIVE is None:
            return self._get(key)
        with trace.span("store.get", key=key[:12]) as tspan:
            envelope = self._get(key)
            if tspan is not None:
                tspan.attrs["hit"] = envelope is not None
            return envelope

    def _get(self, key: str) -> dict | None:
        path = self._locate(key) or self._path_for(key)
        try:
            if faults.ACTIVE is not None and faults.ACTIVE.should_fire(
                "store.get.io"
            ):
                raise OSError(f"injected I/O fault reading {key}")
            text = path.read_text(encoding="utf-8")
        except OSError:
            with self._lock:
                self._stats.misses += 1
            return None
        try:
            envelope = json.loads(text)
            if not isinstance(envelope, dict):
                raise json.JSONDecodeError("not an object", text, 0)
        except json.JSONDecodeError:
            self._quarantine(path, key, "unparseable envelope")
            with self._lock:
                self._stats.misses += 1
            return None
        schema = envelope.get("schema", STORE_SCHEMA)
        if not isinstance(schema, int) or schema > STORE_SCHEMA:
            self._quarantine(path, key, f"unsupported schema {schema!r}")
            with self._lock:
                self._stats.misses += 1
            return None
        declared = envelope.get("integrity")
        if declared is not None and declared != envelope_integrity(envelope):
            self._quarantine(path, key, "integrity digest mismatch")
            with self._lock:
                self._stats.misses += 1
            return None
        if path != self._path_for(key):
            self._migrate(path, key)
        with self._lock:
            self._stats.hits += 1
        return envelope

    def put(self, key: str, kind: str, request: dict, payload: dict) -> dict:
        """Store *payload* under *key* and return the written envelope.

        The envelope carries an ``integrity`` digest over its canonical
        form so a later read can prove the bytes are the ones written."""
        if trace.ACTIVE is None:
            return self._put(key, kind, request, payload)
        with trace.span("store.put", key=key[:12], kind=kind):
            return self._put(key, kind, request, payload)

    def _put(self, key: str, kind: str, request: dict, payload: dict) -> dict:
        envelope = {
            "schema": STORE_SCHEMA,
            "kind": kind,
            "key": key,
            "request": request,
            "payload": payload,
        }
        envelope["integrity"] = envelope_integrity(envelope)
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
        if faults.ACTIVE is not None:
            if faults.ACTIVE.should_fire("store.put.io"):
                raise OSError(f"injected I/O fault writing {key}")
            rule = faults.ACTIVE.should_fire("store.put.torn")
            if rule is not None:
                # Write real corruption to disk (the returned in-memory
                # envelope stays good — exactly what a torn write does).
                text = faults.mangle(
                    text, faults.ACTIVE.point_rng("store.put.torn")
                )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # A fresh write supersedes any legacy copy of the same key.
        for legacy in self._legacy_paths(key):
            try:
                legacy.unlink()
            except OSError:
                pass
        with self._lock:
            self._stats.writes += 1
        return envelope

    def delete(self, key: str) -> bool:
        """Remove *key* from whichever layout holds it; ``True`` if it
        existed.  Real I/O failures (e.g. a read-only mount) propagate
        — only "already gone" is silent."""
        removed = False
        for path in (self._path_for(key), *self._legacy_paths(key)):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._locate(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def iter_keys(self) -> Iterator[str]:
        """All stored artifact keys (unordered), across every layout."""
        seen: set[str] = set()
        for entry in sorted(self._objects.rglob("*.json")):
            if entry.name.startswith(".tmp-"):
                continue  # a torn concurrent write, not an artifact
            if entry.stem not in seen:
                seen.add(entry.stem)
                yield entry.stem

    def stats(self) -> StoreStats:
        """A copy of the hit/miss counters."""
        with self._lock:
            return StoreStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                writes=self._stats.writes,
                quarantined=self._stats.quarantined,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"


class _StudyCache(MutableMapping):
    """Dict façade over the store for the parallel experiment runner.

    :func:`repro.experiments.runner.run_study_parallel` keys its cache
    with ``(graph_fingerprint, scheduler_names, machine_fingerprint)``
    tuples and stores ``(mii, {scheduler: StudyRow})`` values.  This
    adapter persists those entries as ``"study-row"`` artifacts, so a
    warm store turns a whole Perfect-Club study into pure reads.
    """

    KIND = "study-row"

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store
        #: Deserialised entries this process already touched; repeated
        #: lookups of the same loop stay off the disk.
        self._memo: dict[tuple, tuple] = {}

    @staticmethod
    def _request(key: tuple) -> dict:
        return {"kind": _StudyCache.KIND, "study_key": key}

    def __getitem__(self, key: tuple):
        if key in self._memo:
            return self._memo[key]
        envelope = self.store.get(request_key(self._request(key)))
        if envelope is None:
            raise KeyError(key)
        from repro.experiments.stats import StudyRow

        payload = envelope["payload"]
        rows = {
            name: StudyRow(**row) for name, row in payload["rows"].items()
        }
        value = payload["mii"], rows
        self._memo[key] = value
        return value

    def __setitem__(self, key: tuple, value) -> None:
        mii, rows = value
        payload = {
            "mii": mii,
            "rows": {name: vars(row) for name, row in rows.items()},
        }
        request = self._request(key)
        self.store.put(request_key(request), self.KIND, request, payload)
        self._memo[key] = value

    def __delitem__(self, key: tuple) -> None:
        self._memo.pop(key, None)
        if not self.store.delete(request_key(self._request(key))):
            raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        return key in self._memo or request_key(self._request(key)) in self.store

    def __iter__(self):
        raise TypeError("a persistent study cache is not enumerable")

    def __len__(self) -> int:
        return sum(
            1
            for key in self.store.iter_keys()
            if (env := self.store.get(key)) and env.get("kind") == self.KIND
        )


def persistent_study_cache(store: ArtifactStore | str | Path) -> MutableMapping:
    """A drop-in ``cache=`` argument for ``run_study_parallel`` backed by
    the artifact store, so study rows survive across processes."""
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    return _StudyCache(store)
