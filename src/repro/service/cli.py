"""Console entry points: ``hrms-serve`` and ``hrms-submit``.

``hrms-serve`` runs the scheduling service in the foreground::

    hrms-serve --store .hrms-store --port 8157 --workers 4
    hrms-serve --backend process --workers 4   # GIL-free scheduling

``hrms-submit`` sends work to a running server and (by default) waits
for the result::

    hrms-submit daxpy.loop                      # loop-language source
    hrms-submit graph.json --graph              # serialized DDG
    echo 'do i = 1, 8 ... end do' | hrms-submit -
    hrms-submit daxpy.loop --scheduler sms --machine govindarajan
    hrms-submit daxpy.loop --scheduler portfolio --policy min_regs
    hrms-submit --list-schedulers               # ask the server

Scheduler names are discovered from the server (``GET
/v1/schedulers``), not hardcoded; ``--scheduler portfolio`` races the
registered methods and returns the policy winner.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.service.api import ServiceServer
from repro.service.client import ServiceClient

DEFAULT_PORT = 8157
DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-serve",
        description="Run the scheduling service (HTTP JSON API).",
    )
    parser.add_argument(
        "--store", default=".hrms-store",
        help="artifact store directory (default: %(default)s)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="listen port (default: %(default)s; 0 = ephemeral)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="workers (default: 0 = auto)",
    )
    from repro.service.procpool import BACKENDS, ExecutorConfig

    parser.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="execution backend: 'thread' shares one interpreter (best "
             "for warm stores), 'process' runs workers in separate "
             "processes for GIL-free scheduling (default: %(default)s)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=2,
        help="attempts per job before a transient failure sticks "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=0,
        help="bound the job queue; past it, submissions get 429 + "
             "Retry-After (default: 0 = unbounded)",
    )
    parser.add_argument(
        "--join-timeout", type=float, default=10.0,
        help="seconds to wait for each worker thread at shutdown "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--retry-base-delay", type=float, default=0.05,
        help="base of the exponential transient-retry backoff in "
             "seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--retry-max-delay", type=float, default=2.0,
        help="cap on the transient-retry backoff in seconds "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable end-to-end tracing (spans for every request, "
             "scheduler attempt, portfolio member and store write; "
             "served at GET /v1/traces/<id>)",
    )
    parser.add_argument(
        "--access-log", action="store_true",
        help="journal one http.access event per request into the "
             "store's events.jsonl",
    )
    args = parser.parse_args(argv)

    try:
        config = ExecutorConfig(
            backend=args.backend,
            workers=args.workers or None,
            max_attempts=args.max_attempts,
            join_timeout=args.join_timeout,
            retry_base_delay=args.retry_base_delay,
            retry_max_delay=args.retry_max_delay,
            max_queue_depth=args.queue_depth or None,
            tracing=not args.no_tracing,
            access_log=args.access_log,
        )
    except ReproError as exc:
        print(f"hrms-serve: {exc}", file=sys.stderr)
        return 1
    server = ServiceServer(
        args.store,
        host=args.host,
        port=args.port,
        config=config,
    )
    import signal
    import threading

    # Ctrl-C *and* SIGTERM (docker stop, systemd, CI teardown) must both
    # land on the same orderly shutdown: settle queued jobs as failed,
    # bound in-flight work, and join/terminate every worker process so
    # none is orphaned.  The default SIGTERM disposition would kill this
    # process outright and leave a `--backend process` worker pool
    # running with no parent.  Handlers go in *before* the pool starts,
    # so there is no window in which a signal can still hit the default
    # disposition while workers already exist.
    stop_requested = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop_requested.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_stop)

    server.start()
    store_stats = server.service.store.stats
    print(
        f"hrms-serve: listening on {server.url} "
        f"({args.backend} backend)",
        flush=True,
    )
    print(
        f"hrms-serve: artifact store at {Path(args.store).resolve()}",
        flush=True,
    )
    try:
        stop_requested.wait()
    except KeyboardInterrupt:  # pragma: no cover - race with the handler
        pass
    finally:
        server.stop(abort=True)
        stats = store_stats()
        print(
            f"\nhrms-serve: stopped (store hits {stats.hits}, "
            f"misses {stats.misses}, writes {stats.writes})",
            flush=True,
        )
    return 0


def _read_input(spec: str) -> str:
    if spec == "-":
        return sys.stdin.read()
    return Path(spec).read_text(encoding="utf-8")


def _print_trace(client: ServiceClient, trace_id: str) -> None:
    """Fetch and pretty-print a span tree (``hrms-submit --trace``).

    Spans arrive flat; indent each under its parent, siblings ordered
    by start time, with duration and the interesting attributes.
    Cross-process children whose parent span is missing (e.g. dropped
    by the per-trace cap) are shown at the root level, not lost.
    """
    try:
        spans = client.trace(trace_id)
    except ReproError as exc:
        print(f"hrms-submit: trace {trace_id}: {exc}", file=sys.stderr)
        return
    by_id = {span["span_id"]: span for span in spans}
    children: dict[str | None, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphaned subtree → treat as a root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span["start"], span["name"]))

    def emit(span: dict, depth: int) -> None:
        ms = (span["end"] - span["start"]) * 1000.0
        attrs = ", ".join(
            f"{key}={value}"
            for key, value in sorted(span.get("attrs", {}).items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        print(f"{'  ' * depth}{span['name']}  {ms:.2f}ms{suffix}")
        for child in children.get(span["span_id"], ()):
            emit(child, depth + 1)

    print(f"trace {trace_id}")
    for root in children.get(None, ()):
        emit(root, 1)


def _submit_batch(
    parser: argparse.ArgumentParser,
    client: ServiceClient,
    args: argparse.Namespace,
) -> int:
    """Submit a JSON list of requests as one ``POST /v1/batch``.

    The file carries complete request dicts (the wire form), so the
    per-request flags of single submissions do not apply; each entry
    says everything about itself.  With ``--no-wait`` the job ids are
    printed and the command returns; otherwise every job is waited on
    and summarised, and the exit status is non-zero if any failed.
    """
    if args.input is not None:
        parser.error("--batch-file replaces the positional input")
    try:
        entries = json.loads(
            Path(args.batch_file).read_text(encoding="utf-8")
        )
        if not isinstance(entries, list) or not entries:
            print(
                "hrms-submit: the batch file must hold a non-empty "
                "JSON list of request dicts",
                file=sys.stderr,
            )
            return 1
        job_ids = client.submit_batch(entries)
        print(f"batch accepted: {len(job_ids)} job(s)")
        if args.no_wait:
            for job_id in job_ids:
                print(job_id)
            return 0
        failures = 0
        for job_id in job_ids:
            record = client.wait(job_id, timeout=args.timeout)
            if record["status"] != "done":
                failures += 1
                error = record.get("error") or {}
                print(
                    f"job {job_id} {record['status'].upper()}: "
                    f"{error.get('type')}: {error.get('message')}",
                    file=sys.stderr,
                )
                continue
            result = record["result"]
            if result.get("kind") == "suite":
                print(
                    f"job {job_id}: suite {result['suite']} "
                    f"({result['loops']} loops)"
                )
                continue
            print(
                f"job {job_id}: {result['graph']} scheduled by "
                f"{result['scheduler']} -> II {result['ii']} "
                f"(MII {result['mii']}), MaxLive {result['maxlive']}"
                f"{'  [store hit]' if result['cached'] else ''}"
            )
        if failures:
            print(
                f"hrms-submit: {failures}/{len(job_ids)} batch job(s) "
                "did not settle as done",
                file=sys.stderr,
            )
            return 1
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"hrms-submit: {exc}", file=sys.stderr)
        return 1


def submit_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-submit",
        description="Submit a loop to a running scheduling service.",
    )
    parser.add_argument(
        "input", nargs="?", default=None,
        help="loop-language source file, serialized DDG (--graph), "
             "or '-' for stdin",
    )
    parser.add_argument(
        "--list-schedulers", action="store_true",
        help="print the server's scheduler catalog and exit",
    )
    parser.add_argument(
        "--batch-file", default=None,
        help="JSON file holding a list of request dicts; submitted as "
             "one POST /v1/batch (same-loop requests share a scheduling "
             "session server-side) and waited on together",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="treat the input as a serialized DDG JSON file",
    )
    parser.add_argument(
        "--server", default=DEFAULT_URL,
        help="service base URL (default: %(default)s)",
    )
    parser.add_argument("--name", default=None, help="loop name")
    parser.add_argument(
        "--profile", default=None,
        help="lowering profile for source jobs "
             "(perfect_club | govindarajan)",
    )
    parser.add_argument(
        "--machine", default=None,
        help="machine name (e.g. perfect-club) or @file.json wire dict",
    )
    parser.add_argument(
        "--scheduler", default=None,
        help="scheduler name from the server's catalog (default: the "
             "server default; 'portfolio' races the registry)",
    )
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument(
        "--max-ii", type=int, default=None,
        help="cap the II search (fails the job beyond it)",
    )
    from repro.portfolio.policies import policy_names

    parser.add_argument(
        "--policy", choices=policy_names(), default=None,
        help="portfolio selection policy",
    )
    parser.add_argument(
        "--members", default=None,
        help="comma-separated portfolio member names "
             "(default: every non-exact scheduler)",
    )
    parser.add_argument(
        "--member-budget", type=float, default=None,
        help="per-member wall-time budget in seconds for portfolio races",
    )
    parser.add_argument(
        "--register-budget", type=int, default=None,
        help="register budget for the portfolio spill objective "
             "(MaxLive above it counts as spills)",
    )
    parser.add_argument(
        "--include-exact", action="store_true",
        help="let the MILP-backed schedulers join the portfolio race "
             "(small loops only)",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of polling",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="after the job settles, fetch its end-to-end trace and "
             "print the span tree (implies waiting)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="seconds to wait for the job to settle (default: %(default)s)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="HTTP read timeout per request in seconds, so a silent "
             "server cannot hang the CLI (default: %(default)s)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None,
        help="server-side deadline for the job in seconds; a blown "
             "deadline settles the job in the 'timeout' status",
    )
    args = parser.parse_args(argv)

    client = ServiceClient(args.server, timeout=args.request_timeout)
    if args.list_schedulers:
        try:
            for entry in client.schedulers():
                flags = [
                    flag
                    for flag in ("exact", "virtual")
                    if entry.get(flag)
                ]
                suffix = f"  [{', '.join(flags)}]" if flags else ""
                print(f"{entry['name']}{suffix}")
            return 0
        except ReproError as exc:
            print(f"hrms-submit: {exc}", file=sys.stderr)
            return 1
    if args.batch_file is not None:
        return _submit_batch(parser, client, args)
    if args.input is None:
        parser.error("an input file (or '-') is required when submitting")
    portfolio_flags = {
        "--policy": args.policy,
        "--members": args.members,
        "--member-budget": args.member_budget,
        "--register-budget": args.register_budget,
        "--include-exact": args.include_exact or None,
    }
    misused = [flag for flag, value in portfolio_flags.items()
               if value is not None]
    if misused and args.scheduler != "portfolio":
        parser.error(
            f"{', '.join(misused)} only apply with --scheduler portfolio"
        )

    request: dict = {
        "kind": "schedule",
        "priority": args.priority,
    }
    if args.job_timeout is not None:
        request["timeout"] = args.job_timeout
    if args.scheduler is not None:
        request["scheduler"] = args.scheduler
    if args.max_ii is not None:
        request["max_ii"] = args.max_ii
    if args.policy is not None:
        request["policy"] = args.policy
    if args.members is not None:
        request["members"] = [
            name.strip() for name in args.members.split(",") if name.strip()
        ]
    if args.member_budget is not None:
        request["member_budget"] = args.member_budget
    if args.register_budget is not None:
        request["register_budget"] = args.register_budget
    if args.include_exact:
        request["include_exact"] = True
    if args.machine:
        if args.machine.startswith("@"):
            request["machine"] = json.loads(
                Path(args.machine[1:]).read_text(encoding="utf-8")
            )
        else:
            request["machine"] = args.machine

    try:
        text = _read_input(args.input)
        if args.graph:
            request["graph"] = json.loads(text)
        else:
            request["source"] = text
            if args.name:
                request["name"] = args.name
            if args.profile:
                request["profile"] = args.profile

        if args.scheduler is not None:
            # The server owns the registry; validate against its catalog
            # instead of a hardcoded name list.  A server too old to
            # have the endpoint just skips the pre-flight — the job
            # itself still fails cleanly on an unknown name.
            try:
                known = client.scheduler_names()
            except ReproError:
                known = None
            if known is not None and args.scheduler not in known:
                print(
                    f"hrms-submit: unknown scheduler {args.scheduler!r}; "
                    f"server offers: {', '.join(known)}",
                    file=sys.stderr,
                )
                return 1
        accepted = client.submit_record(request)
        job_id = accepted["id"]
        trace_id = accepted.get("trace")
        if args.no_wait and not args.trace:
            print(job_id)
            if trace_id:
                print(f"trace {trace_id}")
            return 0
        record = client.wait(job_id, timeout=args.timeout)
        if record["status"] != "done":
            # "failed" and "timeout" both settle unsuccessfully; say
            # which one (FAILED / TIMEOUT) with the captured error.
            error = record.get("error") or {}
            print(
                f"hrms-submit: job {job_id} {record['status'].upper()}: "
                f"{error.get('type')}: {error.get('message')}",
                file=sys.stderr,
            )
            if args.trace and trace_id:
                _print_trace(client, trace_id)
            return 1
        result = record["result"]
        described = result["scheduler"]
        if result.get("winner"):
            described = (
                f"{described} (winner {result['winner']}, "
                f"policy {result['policy']})"
            )
        print(
            f"job {job_id}: {result['graph']} scheduled by "
            f"{described} -> II {result['ii']} "
            f"(MII {result['mii']}), MaxLive {result['maxlive']}"
            f"{'  [store hit]' if result['cached'] else ''}"
        )
        print(f"artifact {result['artifact']}")
        if trace_id:
            print(f"trace {trace_id}")
        if args.trace and trace_id:
            _print_trace(client, trace_id)
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"hrms-submit: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(submit_main())
