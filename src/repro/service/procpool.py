"""Multi-process execution backend for the scheduling service.

The thread :class:`~repro.service.jobs.WorkerPool` is enough for warm
stores and I/O-heavy traffic, but a *cold* store is pure-Python
CPU-bound scheduling work: the HRMS/SMS/IMS inner loops hold the GIL,
so thread workers cap at ~1 core no matter how many there are.  This
module provides the drop-in process equivalent:

* :class:`ExecutorConfig` — which backend (``"thread"`` or
  ``"process"``), how many workers, retry policy, warm start.  The one
  object ``hrms-serve --backend`` and in-process callers configure.
* a **pickle-safe wire protocol** — a job crosses the process boundary
  as the same canonical ``{"kind", "request"}`` dict the store key is
  hashed from (:func:`job_wire`), and comes back as a result envelope
  (:func:`run_wire_job`) carrying either the executor's result dict or
  a captured error.  Nothing but plain JSON-shaped dicts is pickled.
* **per-process warm caches** — each worker process runs
  :func:`_init_worker` once: it opens its own
  :class:`~repro.service.store.ArtifactStore` on the shared root,
  builds a :class:`~repro.service.executor.SchedulingExecutor` (whose
  MinDist memo then lives for the worker's lifetime), instantiates the
  machine-config catalog, and runs :func:`repro.engine.warm_start`.
* :class:`ProcessWorkerPool` — same interface, queue discipline, retry
  semantics and ``on_finish`` contract as the thread pool.  Dispatcher
  threads in the parent pop the priority queue and block on the
  process pool, so ordering and job bookkeeping stay in one place
  while the scheduling itself runs GIL-free.  A worker that dies
  mid-job breaks only that attempt: the pool is replaced and the job
  retried as a transient failure.

Workers coordinate *through the store*: concurrent processes computing
the same key write identical bits atomically, so no cross-process cache
coherence protocol is needed — content addressing is the protocol.
"""

from __future__ import annotations

import builtins
import pickle
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import repro.errors as errors_module
from repro import cancel
from repro.errors import JobError, ReproError, ServiceError
from repro.obs import trace
from repro.service import faults
from repro.service.jobs import Job, JobQueue, WorkerPool
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import RetryPolicy

#: Execution backends a service can run on.
BACKENDS = ("thread", "process")

#: Executor counters forwarded from worker processes to the parent's
#: :class:`ServiceMetrics` (via the result envelope, not shared memory).
WIRE_COUNTERS = ("schedules_computed", "portfolios_computed", "suites_computed")


@dataclass(frozen=True)
class ExecutorConfig:
    """How a :class:`~repro.service.api.SchedulingService` executes jobs.

    ``backend`` selects the worker pool: ``"thread"`` (shared-memory,
    best for warm stores and tiny jobs) or ``"process"`` (GIL-free,
    best for cold CPU-bound scheduling).  ``workers=None`` means auto
    (:class:`~repro.service.jobs.WorkerPool`'s core-count default).
    ``warm_start`` controls whether process workers pre-warm the engine
    and machine-config caches in their initializer.
    """

    backend: str = "thread"
    workers: int | None = None
    max_attempts: int = 2
    warm_start: bool = True
    #: Seconds :meth:`WorkerPool.stop` waits for each worker thread.
    join_timeout: float = 10.0
    #: Transient-retry backoff curve (exponential, jittered, capped).
    retry_base_delay: float = 0.05
    retry_max_delay: float = 2.0
    #: Bound on queued jobs (``None`` = unbounded); past it, submissions
    #: are rejected with 429 + Retry-After.
    max_queue_depth: int | None = None
    #: Arm end-to-end tracing (:mod:`repro.obs.trace`) for the service
    #: and, on the process backend, inside every worker process.
    tracing: bool = True
    #: Journal HTTP access lines into the event log (hrms-serve
    #: ``--access-log``).
    access_log: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ServiceError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS)}"
            )
        if self.workers is not None and self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.join_timeout <= 0:
            raise ServiceError(
                f"join_timeout must be > 0, got {self.join_timeout}"
            )
        if self.retry_base_delay < 0:
            raise ServiceError(
                f"retry_base_delay must be >= 0, got {self.retry_base_delay}"
            )
        if self.retry_max_delay < self.retry_base_delay:
            raise ServiceError(
                f"retry_max_delay {self.retry_max_delay} < retry_base_delay "
                f"{self.retry_base_delay}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )

    def retry_policy(self) -> RetryPolicy:
        """The backoff policy this config describes."""
        return RetryPolicy(
            base_delay=self.retry_base_delay, max_delay=self.retry_max_delay
        )


# ----------------------------------------------------------------------
# Worker-process side.
# ----------------------------------------------------------------------

#: Per-process executor state, built once by :func:`_init_worker`.
_WORKER_EXECUTOR = None
_WORKER_METRICS: ServiceMetrics | None = None


def _init_worker(
    store_root: str, warm_start: bool, tracing: bool = False
) -> None:
    """Build this worker process's executor and warm its caches.

    Runs exactly once per worker process (the pool initializer).  The
    executor — and with it the MinDistSolver memo, the study cache memo
    and the machine catalog — lives for the whole worker lifetime, so
    repeated jobs over the same graphs hit warm per-process caches.
    """
    global _WORKER_EXECUTOR, _WORKER_METRICS
    from repro.service.executor import SchedulingExecutor
    from repro.service.store import ArtifactStore

    _WORKER_METRICS = ServiceMetrics()
    _WORKER_EXECUTOR = SchedulingExecutor(
        ArtifactStore(store_root), _WORKER_METRICS
    )
    if tracing:
        # Worker-side spans collect locally and ride back to the parent
        # in the result envelope (see run_wire_job).
        trace.arm()
    if warm_start:
        from repro.engine import warm_start as warm_engine
        from repro.machine.configs import canonical_machines

        canonical_machines()
        warm_engine()


def job_wire(job: Job) -> dict:
    """The pickle-safe wire form of *job*: the canonical ``{"kind",
    "request"}`` envelope its store key is derived from, plus the
    absolute deadline (wall clock, so it crosses the process boundary
    unchanged) when one is set."""
    wire = {"kind": job.kind, "request": job.request}
    if job.deadline is not None:
        wire["deadline"] = job.deadline
    context = trace.wire_context()
    if context is not None:
        wire["trace"] = context
    return wire


def run_wire_job(wire: dict) -> dict:
    """Execute one wire-encoded job inside a worker process.

    Never raises: the result envelope is either ``{"ok": True,
    "result": …, "computed": {counter: delta}}`` or ``{"ok": False,
    "permanent": bool, "error_type": …, "message": …}`` —
    ``permanent`` mirrors the thread pool's rule that
    :class:`~repro.errors.ReproError` is deterministic (no retry) while
    anything else may be transient.  When the wire carries a ``trace``
    context (and this worker armed tracing), the job executes attached
    to it and the worker-side spans ride home on the envelope under
    ``"spans"``.
    """
    context = wire.get("trace")
    if context is None or trace.ACTIVE is None:
        return _run_wire_job(wire)
    trace_id = str(context["id"])
    with trace.attach(trace_id, str(context["parent"])):
        envelope = _run_wire_job(wire)
    spans = trace.COLLECTOR.drain(trace_id)
    if spans:
        envelope["spans"] = spans
    return envelope


def _run_wire_job(wire: dict) -> dict:
    if _WORKER_EXECUTOR is None or _WORKER_METRICS is None:
        return {
            "ok": False,
            "permanent": False,
            "error_type": "RuntimeError",
            "message": "worker process was not initialized",
        }
    before = {name: _WORKER_METRICS.counter(name) for name in WIRE_COUNTERS}
    try:
        with cancel.deadline_scope(wire.get("deadline")):
            result = _WORKER_EXECUTOR.execute_request(
                str(wire["kind"]), dict(wire["request"])
            )
    except ReproError as exc:
        return {
            "ok": False,
            "permanent": True,
            "error_type": type(exc).__name__,
            "message": str(exc),
        }
    except Exception as exc:  # noqa: BLE001 - crosses the process boundary
        return {
            "ok": False,
            "permanent": False,
            "error_type": type(exc).__name__,
            "message": str(exc),
        }
    computed = {
        name: _WORKER_METRICS.counter(name) - before[name]
        for name in WIRE_COUNTERS
        if _WORKER_METRICS.counter(name) - before[name]
    }
    return {"ok": True, "result": result, "computed": computed}


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------

def _rebuild_error(
    error_type: str, message: str, permanent: bool
) -> BaseException:
    """Reconstruct a worker failure with its original type and message.

    Permanent failures come back as the :mod:`repro.errors` class of
    the same name (so ``job.error["type"]`` matches the thread backend
    exactly); transient ones as the named builtin exception.  Unknown
    types degrade to :class:`JobError` / :class:`RuntimeError` with the
    type name folded into the message.
    """
    if permanent:
        cls = getattr(errors_module, error_type, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            exc = cls.__new__(cls)
            Exception.__init__(exc, message)
            return exc
        return JobError(f"{error_type}: {message}")
    cls = getattr(builtins, error_type, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, Exception)
        and not issubclass(cls, ReproError)
    ):
        try:
            return cls(message)
        except TypeError:
            pass
    return RuntimeError(f"{error_type}: {message}")


class ProcessWorkerPool(WorkerPool):
    """A :class:`WorkerPool` whose jobs execute in worker *processes*.

    The parent keeps one dispatcher thread per worker: each pops the
    shared :class:`~repro.service.jobs.JobQueue` and blocks on the
    process pool, so priority order, retry-with-capture and the
    ``on_finish`` callback behave byte-for-byte like the thread pool —
    only the ``execute`` step crosses a process boundary.

    The pool is a :class:`~concurrent.futures.ProcessPoolExecutor`
    deliberately: when a worker process dies mid-job (OOM kill,
    segfault), the in-flight future raises ``BrokenProcessPool``
    instead of blocking forever the way ``multiprocessing.Pool.apply``
    would.  The broken executor is replaced and the failure surfaces
    as a *transient* error, so the standard retry path gets the job a
    fresh pool.  Each new worker runs the warm-cache initializer once
    before its first job.
    """

    #: Seconds between supervision sweeps for silently dead workers.
    SUPERVISE_INTERVAL = 0.5

    def __init__(
        self,
        queue: JobQueue,
        store_root: str | Path,
        *,
        workers: int | None = None,
        on_finish: Callable[[Job], None] | None = None,
        metrics: ServiceMetrics | None = None,
        warm_start: bool = True,
        join_timeout: float = 10.0,
        retry_policy: RetryPolicy | None = None,
        tracing: bool = False,
        events: object | None = None,
    ) -> None:
        super().__init__(
            queue,
            self._proxy,
            workers=workers,
            on_finish=on_finish,
            join_timeout=join_timeout,
            retry_policy=retry_policy,
            events=events,
        )
        self._store_root = str(store_root)
        self._metrics = metrics
        self._warm_start = warm_start
        self._tracing = tracing
        self._executor: ProcessPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._stopping = False
        self._supervisor: threading.Thread | None = None
        self._supervise_stop = threading.Event()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self._store_root, self._warm_start, self._tracing),
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Create the process pool, then the dispatcher threads."""
        if self._threads:
            return
        with self._executor_lock:
            self._stopping = False
            if self._executor is None:
                self._executor = self._make_executor()
        self._supervise_stop.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="hrms-pool-supervisor", daemon=True
        )
        self._supervisor.start()
        super().start()

    def _supervise(self) -> None:
        """Detect workers that died *between* jobs and respawn the pool.

        A worker that dies mid-job breaks its future immediately
        (``BrokenProcessPool``, handled in :meth:`_proxy`); one that
        dies idle is invisible until the next submit wedges on a broken
        pool.  This sweep notices the corpse early and replaces the
        executor so readiness recovers without traffic."""
        while not self._supervise_stop.wait(self.SUPERVISE_INTERVAL):
            with self._executor_lock:
                executor = self._executor
                if executor is None or self._stopping:
                    continue
                processes = getattr(executor, "_processes", None) or {}
                if not processes or all(
                    process.is_alive() for process in processes.values()
                ):
                    continue
                self._executor = self._make_executor()
            executor.shutdown(wait=False, cancel_futures=True)
            if self._metrics is not None:
                self._metrics.inc("worker_respawns")

    def alive_workers(self) -> int:
        """Live worker processes right now (0 when stopped)."""
        with self._executor_lock:
            executor = self._executor
        if executor is None:
            return 0
        processes = getattr(executor, "_processes", None) or {}
        return sum(1 for process in processes.values() if process.is_alive())

    def kill_one_worker(self) -> bool:
        """SIGKILL one live worker process (chaos/testing hook);
        ``True`` if a victim was found."""
        with self._executor_lock:
            executor = self._executor
        if executor is None:
            return False
        processes = getattr(executor, "_processes", None) or {}
        for process in processes.values():
            if process.is_alive():
                process.kill()
                return True
        return False

    #: Seconds an in-flight job is given to finish during an aborting
    #: stop before its worker process is terminated outright.
    ABORT_GRACE = 5.0

    def stop(
        self, wait: bool = True, abort: bool = False,
        grace: float | None = None,
    ) -> None:
        """Drain the dispatchers, then shut the worker processes down.

        Graceful (default): queued and in-flight jobs complete, the
        executor is shut down, and every worker process is joined.

        ``abort=True`` (the Ctrl-C/SIGTERM path): queued jobs are
        settled as failed without running, in-flight jobs get *grace*
        seconds to finish, and any worker process still alive after
        that is terminated and joined — the pool never orphans a
        worker and never wedges behind a hung job.  An in-flight job
        whose worker was terminated surfaces as a failed job (its
        future breaks, and the closed queue turns the usual transient
        retry into a captured failure).
        """
        self._supervise_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=self.join_timeout)
            self._supervisor = None
        with self._executor_lock:
            self._stopping = True
            executor = self._executor
            if abort:
                self._executor = None
        if abort:
            self._abort_queued()
            if executor is not None:
                self._reap(executor, self.ABORT_GRACE if grace is None else grace)
            super().stop(wait=wait)
            return
        super().stop(wait=wait)
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)
            if not wait:
                self._reap(executor, self.ABORT_GRACE if grace is None else grace)

    def _reap(self, executor: ProcessPoolExecutor, grace: float) -> None:
        """Cancel pending work and guarantee every worker process exits.

        ``ProcessPoolExecutor.shutdown`` has no timeout: a worker stuck
        in a pathological job would block it forever.  Instead the
        worker processes are snapshotted, pending futures cancelled,
        and each process joined under a shared *grace* deadline —
        survivors are terminated, then joined unconditionally so no
        zombie is left behind.
        """
        processes = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + max(0.0, grace)
        for process in processes:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            if process.is_alive():
                process.join(5.0)

    # ------------------------------------------------------------------
    def _proxy(self, job: Job) -> dict:
        """The ``execute`` callable: ship the job out, unwrap the reply."""
        kill = False
        if faults.ACTIVE is not None:
            if faults.ACTIVE.should_fire("procpool.pickle"):
                raise pickle.PicklingError(
                    f"injected pickling failure for job {job.id}"
                )
            kill = faults.ACTIVE.should_fire("procpool.kill") is not None
        with self._executor_lock:
            executor = self._executor
        if executor is None:
            raise ServiceError("process worker pool is not running")
        try:
            future = executor.submit(run_wire_job, job_wire(job))
            if kill:
                # After the submit, so the lazily-spawned worker exists:
                # this is a worker dying *mid-job*, the hardest case.
                self.kill_one_worker()
            envelope = future.result()
        except BrokenProcessPool as exc:
            # A worker died mid-job.  Replace the broken pool (unless
            # we are shutting down) and surface the failure tagged as a
            # crash: the pool forgives one crash per job without
            # charging the retry budget, then retries on the new pool.
            with self._executor_lock:
                if self._executor is executor:
                    executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = (
                        None if self._stopping else self._make_executor()
                    )
                    respawned = not self._stopping
                else:
                    respawned = False
            if respawned and self._metrics is not None:
                self._metrics.inc("worker_respawns")
            error = RuntimeError(
                f"worker process died while executing job {job.id}: {exc}"
            )
            error.worker_crash = True
            raise error from exc
        except CancelledError as exc:
            # The supervisor replaced the pool under this future (a
            # sibling worker died idle).  CancelledError is a
            # BaseException — convert it so the retry path sees it.
            error = RuntimeError(
                f"job {job.id} was cancelled by a pool respawn"
            )
            error.worker_crash = True
            raise error from exc
        if trace.ACTIVE is not None and envelope.get("spans"):
            # Worker-side spans (even from failed attempts) join the
            # parent's trace here.
            trace.ACTIVE.merge(envelope["spans"])
        if envelope.get("ok"):
            if self._metrics is not None:
                for name, amount in envelope.get("computed", {}).items():
                    self._metrics.inc(name, amount)
            return envelope["result"]
        raise _rebuild_error(
            str(envelope.get("error_type", "RuntimeError")),
            str(envelope.get("message", "worker process failed")),
            bool(envelope.get("permanent")),
        )


def make_worker_pool(
    queue: JobQueue,
    *,
    config: ExecutorConfig,
    execute: Callable[[Job], dict],
    store_root: str | Path,
    metrics: ServiceMetrics | None = None,
    on_finish: Callable[[Job], None] | None = None,
    events: object | None = None,
) -> WorkerPool:
    """Build the worker pool *config* asks for.

    ``execute`` drives the thread backend (in-process executor);
    ``store_root`` drives the process backend (each worker opens its
    own executor over the shared store).
    """
    if config.backend == "process":
        return ProcessWorkerPool(
            queue,
            store_root,
            workers=config.workers,
            on_finish=on_finish,
            metrics=metrics,
            warm_start=config.warm_start,
            join_timeout=config.join_timeout,
            retry_policy=config.retry_policy(),
            tracing=config.tracing,
            events=events,
        )
    return WorkerPool(
        queue,
        execute,
        workers=config.workers,
        on_finish=on_finish,
        join_timeout=config.join_timeout,
        retry_policy=config.retry_policy(),
        events=events,
    )
