"""Retry backoff and circuit-breaking for the service layer.

Two small, self-contained policies:

:class:`RetryPolicy`
    Exponential backoff with deterministic jitter and a cap, replacing
    the old immediate-requeue transient retry.  Jitter is derived from
    ``(job id, attempt)`` rather than a global RNG so a replayed
    campaign sees identical delays — randomness that cannot be replayed
    is banned from this codebase's QA loop.

:class:`CircuitBreaker`
    The classic closed → open → half-open automaton guarding the
    portfolio race.  Repeated member failures (or sustained overload,
    which the service checks separately) trip it open; while open, the
    executor degrades portfolio requests to a single cheap heuristic
    member instead of racing the full roster.  After ``recovery_s`` one
    probe request is allowed through (half-open); its outcome closes or
    re-opens the breaker.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base * factor**(attempt-1)``, jittered
    by up to ``jitter`` of itself, capped at ``max_delay``."""

    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} < base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry number *attempt* (1-based count of
        failures so far).  *token* (the job id) seeds the jitter so the
        schedule is a pure function of ``(policy, token, attempt)``."""
        raw = self.base_delay * self.factor ** max(0, attempt - 1)
        capped = min(raw, self.max_delay)
        if self.jitter == 0.0 or capped == 0.0:
            return capped
        # Deterministic jitter in [1 - jitter, 1]: a hash of the token
        # and attempt scaled into the jitter band.
        bucket = zlib.crc32(f"{token}:{attempt}".encode("utf-8")) / 0xFFFFFFFF
        return capped * (1.0 - self.jitter * bucket)


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker on consecutive failures."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Lifetime count of closed→open transitions (metrics).
        self.trips = 0
        #: ``on_transition(old_state, new_state)`` fires outside the
        #: lock on every state change (the service journals these).
        self.on_transition = on_transition

    def _fire(self, old: str, new: str) -> None:
        """Invoke the transition hook (never under the lock, and a
        failing hook must not break breaker semantics)."""
        if old != new and self.on_transition is not None:
            try:
                self.on_transition(old, new)
            except Exception:  # noqa: BLE001 - observer must not interfere
                pass

    @property
    def state(self) -> str:
        with self._lock:
            old = self._state
            new = self._observe()
        self._fire(old, new)
        return new

    def _observe(self) -> str:
        """Current state with the open→half-open timeout applied.
        Caller holds the lock."""
        if (
            self._state == self.OPEN
            and time.time() - self._opened_at >= self.recovery_s
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Whether a full (non-degraded) attempt may proceed now.

        Closed: yes.  Open: no.  Half-open: one probe at a time."""
        with self._lock:
            old = self._state
            state = self._observe()
            if state == self.CLOSED:
                allowed = True
            elif state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                allowed = True
            else:
                allowed = False
        self._fire(old, state)
        return allowed

    def record_success(self) -> None:
        with self._lock:
            old = self._state
            self._failures = 0
            self._probe_in_flight = False
            self._state = self.CLOSED
        self._fire(old, self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            old = self._state
            state = self._observe()
            self._failures += 1
            if state == self.HALF_OPEN or (
                state == self.CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = time.time()
                self._probe_in_flight = False
                self._failures = 0
                self.trips += 1
            new = self._state
        self._fire(old, new)

    def force_open(self) -> None:
        """Trip the breaker immediately (chaos harness hook)."""
        with self._lock:
            old = self._state
            self._state = self.OPEN
            self._opened_at = time.time()
            self._probe_in_flight = False
            self._failures = 0
            self.trips += 1
        self._fire(old, self.OPEN)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._observe(),
                "failures": self._failures,
                "trips": self.trips,
            }
