"""Scheduling-as-a-service: store, jobs, HTTP API, client.

PR 1 gave the library a shared engine layer (fingerprints, cached
MinDist, a parallel runner); this package turns that substrate into a
long-running **service** so schedules are computed once and served many
times:

* :mod:`~repro.service.store` — a content-addressed, on-disk artifact
  store (schedules, study rows) with schema-versioned JSON envelopes.
  It survives restarts and also backs the experiment runner's per-loop
  cache (``hrms-experiments --store DIR``).
* :mod:`~repro.service.jobs` — the job model, a priority FIFO queue and
  a thread worker pool with retry + failure capture.
* :mod:`~repro.service.procpool` — the multi-process execution backend
  (:class:`~repro.service.procpool.ProcessWorkerPool`, selected via
  :class:`~repro.service.procpool.ExecutorConfig` or ``hrms-serve
  --backend process``): GIL-free scheduling with per-process warm
  caches over the shared store.
* :mod:`~repro.service.executor` — job execution: resolve a graph
  (serialized DDG or loop source), a machine (name or wire dict) and a
  scheduler, consult the store, schedule on miss.
* :mod:`~repro.service.api` — the ``http.server``-based JSON API
  (submit, batch submit, poll, fetch artifacts, ``/metrics``).
* :mod:`~repro.service.client` — a stdlib ``urllib`` client used by the
  ``hrms-submit`` CLI, the examples and the tests.

Everything is standard library (plus the NumPy the engine already
uses); the service adds no dependencies.
"""

from repro.service.api import SchedulingService, ServiceServer, make_server
from repro.service.client import ServiceClient
from repro.service.executor import SchedulingExecutor
from repro.service.jobs import Job, JobQueue, JobStatus, WorkerPool
from repro.service.metrics import ServiceMetrics
from repro.service.procpool import ExecutorConfig, ProcessWorkerPool
from repro.service.store import ArtifactStore, persistent_study_cache

__all__ = [
    "ArtifactStore",
    "ExecutorConfig",
    "Job",
    "JobQueue",
    "JobStatus",
    "ProcessWorkerPool",
    "SchedulingExecutor",
    "SchedulingService",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceServer",
    "WorkerPool",
    "make_server",
    "persistent_study_cache",
]
