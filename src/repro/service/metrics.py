"""Thread-safe service counters and latency percentiles.

The service exposes these at ``GET /metrics`` in the Prometheus text
exposition format — ``# HELP``/``# TYPE`` headers, escaped label
values, one sample per line — which any scraper, or ``curl``, can read
without a client library.  Latencies are kept in bounded rings (the
most recent :data:`RESERVOIR` observations per family), which is exact
for test- and bench-sized runs and a recent-window estimate under
sustained load.

Besides the global job-latency reservoir there are *labeled families*:
:meth:`ServiceMetrics.observe` files an observation under an arbitrary
family name and label set (``phase="queue"``, ``scheduler="hrms"``, …)
and each label combination gets its own quantile series on /metrics.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

#: How many recent latencies each percentile window keeps.
RESERVOIR = 4096

#: How many recent observations each labeled family series keeps.
FAMILY_RESERVOIR = 1024

#: Quantiles reported on /metrics.
QUANTILES = (0.5, 0.9, 0.99)

#: HELP text for metric names the service emits; anything not listed
#: falls back to a generic line (the format requires *a* HELP string,
#: not a great one).
HELP_TEXT = {
    "hrms_job_latency_seconds": "End-to-end job latency from submit to settle.",
    "hrms_job_latency_samples": "Observations currently in the job-latency window.",
    "hrms_phase_seconds": "Per-phase job latency (label: phase).",
    "hrms_scheduler_seconds": "Per-scheduler schedule-compute latency (label: scheduler).",
    "hrms_jobs_submitted_total": "Jobs accepted onto the queue.",
    "hrms_jobs_done_total": "Jobs settled successfully.",
    "hrms_jobs_failed_total": "Jobs settled with a permanent error.",
    "hrms_jobs_timeout_total": "Jobs settled by deadline expiry.",
    "hrms_jobs_degraded_total": "Jobs settled by the degraded fallback path.",
    "hrms_jobs_retried_total": "Job attempts that were retried.",
    "hrms_http_errors_total": "HTTP responses with a 5xx status.",
    "hrms_schedules_computed_total": "Schedule artifacts computed (cache misses).",
    "hrms_store_hits_total": "Artifact-store cache hits.",
    "hrms_store_misses_total": "Artifact-store cache misses.",
    "hrms_queue_depth": "Jobs currently waiting in the priority queue.",
    "hrms_jobs_inflight": "Jobs currently executing.",
    "hrms_breaker_state": "Circuit-breaker state (0 closed, 1 half-open, 2 open).",
}

_DEFAULT_HELP = "HRMS scheduling-service metric."


def percentile(values: list[float], q: float) -> float:
    """The *q*-quantile of *values* by linear interpolation (empty → 0)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class ServiceMetrics:
    """Monotonic counters plus latency reservoirs (global and labeled)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._latencies: deque[float] = deque(maxlen=RESERVOIR)
        # (family, sorted label items) -> bounded observation window
        self._families: dict[
            tuple[str, tuple[tuple[str, str], ...]], deque[float]
        ] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] += amount

    def observe_latency(self, seconds: float) -> None:
        """Record one job latency in the global percentile reservoir."""
        with self._lock:
            self._latencies.append(seconds)

    def observe(self, family: str, seconds: float, **labels: str) -> None:
        """Record one observation in the labeled *family* reservoir."""
        key = (family, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            window = self._families.get(key)
            if window is None:
                window = self._families[key] = deque(maxlen=FAMILY_RESERVOIR)
            window.append(seconds)

    def counter(self, name: str) -> int:
        """The current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self._counters[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters + latency quantiles as a plain dict."""
        with self._lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
            families = {
                key: list(window) for key, window in self._families.items()
            }
        quantiles = {q: percentile(latencies, q) for q in QUANTILES}
        family_stats = {}
        for (family, label_items), values in sorted(families.items()):
            family_stats.setdefault(family, []).append(
                {
                    "labels": dict(label_items),
                    "count": len(values),
                    "quantiles": {q: percentile(values, q) for q in QUANTILES},
                }
            )
        return {
            "counters": counters,
            "latency_quantiles": quantiles,
            "latency_samples": len(latencies),
            "families": family_stats,
        }

    def render_prometheus(self, gauges: dict[str, float] | None = None) -> str:
        """The /metrics body in Prometheus text exposition format.

        *gauges* carries point-in-time values the metrics object does
        not own (queue depth, breaker state, store hit rate).  Every
        series is preceded by its ``# HELP`` and ``# TYPE`` lines.
        """
        snap = self.snapshot()
        lines: list[str] = []

        def header(name: str, kind: str) -> None:
            help_text = HELP_TEXT.get(name, _DEFAULT_HELP)
            lines.append(f"# HELP {name} {escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")

        for name, value in sorted((gauges or {}).items()):
            metric = f"hrms_{name}"
            header(metric, "gauge")
            lines.append(f"{metric} {value:g}")
        for name, value in sorted(snap["counters"].items()):
            metric = f"hrms_{name}_total"
            header(metric, "counter")
            lines.append(f"{metric} {value}")

        metric = "hrms_job_latency_seconds"
        header(metric, "summary")
        for q, value in snap["latency_quantiles"].items():
            lines.append(f'{metric}{{quantile="{q}"}} {value:.9f}')
        lines.append(f"{metric}_count {snap['latency_samples']}")

        for family, series in snap["families"].items():
            metric = f"hrms_{family}"
            header(metric, "summary")
            for entry in series:
                for q, value in entry["quantiles"].items():
                    labels = dict(entry["labels"])
                    labels["quantile"] = str(q)
                    lines.append(
                        f"{metric}{_render_labels(labels)} {value:.9f}"
                    )
                lines.append(
                    f"{metric}_count{_render_labels(entry['labels'])} "
                    f"{entry['count']}"
                )
        return "\n".join(lines) + "\n"
