"""Thread-safe service counters and latency percentiles.

The service exposes these at ``GET /metrics`` in the Prometheus text
exposition format (one ``name{labels} value`` line each), which any
scraper — or ``curl`` — can read without a client library.  Latencies
are kept in a bounded ring (the most recent :data:`RESERVOIR` job
durations), which is exact for test- and bench-sized runs and a
recent-window estimate under sustained load.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

#: How many recent job latencies the percentile window keeps.
RESERVOIR = 4096

#: Quantiles reported on /metrics.
QUANTILES = (0.5, 0.9, 0.99)


def percentile(values: list[float], q: float) -> float:
    """The *q*-quantile of *values* by linear interpolation (empty → 0)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class ServiceMetrics:
    """Monotonic counters plus a latency reservoir."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._latencies: deque[float] = deque(maxlen=RESERVOIR)

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] += amount

    def observe_latency(self, seconds: float) -> None:
        """Record one job latency in the percentile reservoir."""
        with self._lock:
            self._latencies.append(seconds)

    def counter(self, name: str) -> int:
        """The current value of counter *name* (0 if never incremented)."""
        with self._lock:
            return self._counters[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters + latency quantiles as a plain dict."""
        with self._lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
        quantiles = {q: percentile(latencies, q) for q in QUANTILES}
        return {
            "counters": counters,
            "latency_quantiles": quantiles,
            "latency_samples": len(latencies),
        }

    def render_prometheus(self, gauges: dict[str, float] | None = None) -> str:
        """The /metrics body.  *gauges* carries point-in-time values the
        metrics object does not own (queue depth, store hit rate)."""
        snap = self.snapshot()
        lines = []
        for name, value in sorted((gauges or {}).items()):
            lines.append(f"hrms_{name} {value:g}")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"hrms_{name}_total {value}")
        for q, value in snap["latency_quantiles"].items():
            lines.append(
                f'hrms_job_latency_seconds{{quantile="{q}"}} {value:.9f}'
            )
        lines.append(
            f"hrms_job_latency_samples {snap['latency_samples']}"
        )
        return "\n".join(lines) + "\n"
