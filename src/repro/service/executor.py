"""Execute service jobs: resolve inputs, consult the store, schedule.

Two job kinds exist today:

* ``"schedule"`` — one loop (a serialized DDG *or* loop-language
  source), one machine, one scheduler.  The artifact is the complete
  schedule: the II, the normalised start map, MaxLive and the MII
  bookkeeping — everything needed to rebuild a
  :class:`~repro.schedule.schedule.Schedule` without re-running the
  scheduler.
* ``"suite"`` — a named workload population scheduled with several
  methods through :func:`repro.experiments.runner.run_study_parallel`
  (which fans out via ``parallel_map`` and shares the store through
  :func:`~repro.service.store.persistent_study_cache`).  The artifact
  is the study-row table.

The cache key of an artifact is the canonical request — graph
fingerprint digest × machine wire dict × scheduler × options — so a
request is computed at most once per store, across restarts.
"""

from __future__ import annotations

from typing import Any

from repro.engine.mindist import fingerprint_digest
from repro.errors import JobError
from repro.graph.ddg import DependenceGraph
from repro.graph.serialization import graph_from_dict
from repro.machine.configs import (
    govindarajan_machine,
    machine_from_config,
    perfect_club_machine,
)
from repro.machine.machine import MachineModel
from repro.mii.analysis import compute_mii
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule, ScheduleStats
from repro.schedulers.registry import make_scheduler
from repro.service.jobs import Job
from repro.service.metrics import ServiceMetrics
from repro.service.store import ArtifactStore, persistent_study_cache

#: Request schema version embedded in every cache key.
REQUEST_SCHEMA = 1

#: Machine used when a request does not name one.
DEFAULT_MACHINE = "perfect-club"

#: Scheduler used when a request does not name one.
DEFAULT_SCHEDULER = "hrms"


def schedule_payload(
    schedule: Schedule, maxlive: int | None = None
) -> dict[str, Any]:
    """The JSON artifact for a computed schedule."""
    stats = schedule.stats
    return {
        "graph": {
            "name": schedule.graph.name,
            "digest": fingerprint_digest(schedule.graph),
            "operations": len(schedule.graph),
        },
        "machine": schedule.machine.to_dict(),
        "scheduler": stats.scheduler,
        "ii": schedule.ii,
        "stage_count": schedule.stage_count,
        "length": schedule.length,
        "start": dict(schedule.start),
        "maxlive": maxlive if maxlive is not None else max_live(schedule),
        "mii": stats.mii,
        "resmii": stats.resmii,
        "recmii": stats.recmii,
        "attempts": stats.attempts,
        "seconds": stats.total_seconds,
    }


def schedule_from_payload(
    payload: dict, graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Rebuild a :class:`Schedule` from a stored artifact payload.

    The caller supplies the graph (artifacts carry only its digest);
    a digest mismatch is rejected rather than silently producing a
    schedule for the wrong loop.
    """
    expected = payload.get("graph", {}).get("digest")
    if expected is not None and expected != fingerprint_digest(graph):
        raise JobError(
            f"artifact was computed for graph digest {expected[:12]}…, "
            f"not for {graph.name!r}"
        )
    machine = machine or MachineModel.from_dict(payload["machine"])
    stats = ScheduleStats(
        scheduler=payload.get("scheduler", ""),
        mii=payload.get("mii", 0),
        resmii=payload.get("resmii", 0),
        recmii=payload.get("recmii", 0),
        attempts=payload.get("attempts", 0),
        total_seconds=payload.get("seconds", 0.0),
    )
    return Schedule(
        graph,
        machine,
        ii=int(payload["ii"]),
        start={name: int(c) for name, c in payload["start"].items()},
        stats=stats,
    )


class SchedulingExecutor:
    """Resolve job requests and run them against the artifact store."""

    def __init__(
        self,
        store: ArtifactStore,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.store = store
        self.metrics = metrics or ServiceMetrics()
        self._study_cache = persistent_study_cache(store)

    # ------------------------------------------------------------------
    def execute(self, job: Job) -> dict:
        """Entry point the worker pool calls."""
        return self.execute_request(job.kind, job.request)

    def execute_request(self, kind: str, request: dict) -> dict:
        if kind == "schedule":
            return self._schedule(request)
        if kind == "suite":
            return self._suite(request)
        raise JobError(f"unknown job kind {kind!r}")

    # ------------------------------------------------------------------
    def _resolve_graph(self, request: dict) -> DependenceGraph:
        if "graph" in request:
            return graph_from_dict(request["graph"])
        if "source" in request:
            from repro.frontend.pipeline import compile_source, profile_by_name

            loop = compile_source(
                str(request["source"]),
                name=str(request.get("name", "loop")),
                profile=profile_by_name(request.get("profile")),
            )
            return loop.graph
        raise JobError(
            "a schedule request needs either 'graph' (serialized DDG) "
            "or 'source' (loop-language text)"
        )

    @staticmethod
    def _options(request: dict) -> dict:
        options: dict[str, Any] = {}
        if request.get("max_ii") is not None:
            options["max_ii"] = int(request["max_ii"])
        return options

    def _schedule(self, request: dict) -> dict:
        graph = self._resolve_graph(request)
        machine = machine_from_config(request.get("machine", DEFAULT_MACHINE))
        scheduler = str(request.get("scheduler", DEFAULT_SCHEDULER))
        options = self._options(request)

        cache_request = {
            "kind": "schedule",
            "schema": REQUEST_SCHEMA,
            "graph": fingerprint_digest(graph),
            "machine": machine.to_dict(),
            "scheduler": scheduler,
            "options": options,
        }
        key = self.store.key_for(cache_request)
        envelope = self.store.get(key)
        cached = envelope is not None
        if envelope is None:
            analysis = compute_mii(graph, machine)
            schedule = make_scheduler(scheduler, **options).schedule(
                graph, machine, analysis
            )
            envelope = self.store.put(
                key, "schedule", cache_request, schedule_payload(schedule)
            )
            self.metrics.inc("schedules_computed")
        payload = envelope["payload"]
        return {
            "kind": "schedule",
            "artifact": key,
            "cached": cached,
            "graph": payload["graph"]["name"],
            "scheduler": scheduler,
            "ii": payload["ii"],
            "mii": payload["mii"],
            "maxlive": payload["maxlive"],
        }

    # ------------------------------------------------------------------
    def _suite(self, request: dict) -> dict:
        from repro.experiments.runner import run_study_parallel
        from repro.workloads.govindarajan import govindarajan_suite
        from repro.workloads.perfectclub import perfect_club_suite

        raw_name = str(request.get("suite", ""))
        # Canonicalise aliases *before* the cache key is built, so
        # "perfect_club" and "perfectclub" land on the same artifact.
        name = {
            "perfect-club": "perfectclub",
            "perfect_club": "perfectclub",
        }.get(raw_name, raw_name)
        n_loops = request.get("n_loops")
        if name == "govindarajan":
            loops = govindarajan_suite()
            default_machine = govindarajan_machine()
        elif name == "perfectclub":
            loops = perfect_club_suite(
                n_loops=int(n_loops) if n_loops is not None else 1258
            )
            default_machine = perfect_club_machine()
        else:
            raise JobError(
                f"unknown suite {raw_name!r}; available: "
                "govindarajan, perfectclub"
            )
        if n_loops is not None:
            loops = loops[: int(n_loops)]
        schedulers = tuple(
            str(s) for s in request.get("schedulers", ("hrms", "topdown"))
        )
        machine = (
            machine_from_config(request["machine"])
            if "machine" in request
            else default_machine
        )

        cache_request = {
            "kind": "suite",
            "schema": REQUEST_SCHEMA,
            "suite": name,
            "n_loops": len(loops),
            "schedulers": list(schedulers),
            "machine": machine.to_dict(),
        }
        key = self.store.key_for(cache_request)
        envelope = self.store.get(key)
        cached = envelope is not None
        if envelope is None:
            study = run_study_parallel(
                loops=loops,
                schedulers=schedulers,
                machine=machine,
                mode="thread",
                cache=self._study_cache,
            )
            payload = {
                "suite": name,
                "schedulers": list(schedulers),
                "loops": [
                    {
                        "name": record.loop.name,
                        "mii": record.mii,
                        "rows": {
                            sched: {"ii": row.ii, "maxlive": row.maxlive}
                            for sched, row in record.rows.items()
                        },
                    }
                    for record in study.records
                ],
            }
            envelope = self.store.put(key, "suite", cache_request, payload)
            self.metrics.inc("suites_computed")
        payload = envelope["payload"]
        return {
            "kind": "suite",
            "artifact": key,
            "cached": cached,
            "suite": name,
            "loops": len(payload["loops"]),
            "schedulers": list(schedulers),
        }
