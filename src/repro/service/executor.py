"""Execute service jobs: resolve inputs, consult the store, schedule.

Two job kinds exist today:

* ``"schedule"`` — one loop (a serialized DDG *or* loop-language
  source), one machine, one scheduler.  The artifact is the complete
  schedule: the II, the normalised start map, MaxLive and the MII
  bookkeeping — everything needed to rebuild a
  :class:`~repro.schedule.schedule.Schedule` without re-running the
  scheduler.  Naming the virtual ``"portfolio"`` scheduler races the
  registered methods (:mod:`repro.portfolio`) instead: member schedules
  are cached under their own individual keys, and the portfolio
  artifact carries the decision record plus the winning schedule.
* ``"suite"`` — a named workload population scheduled with several
  methods through :func:`repro.experiments.runner.run_study_parallel`
  (which fans out via ``parallel_map`` and shares the store through
  :func:`~repro.service.store.persistent_study_cache`).  The artifact
  is the study-row table.

The cache key of an artifact is the canonical request — graph
fingerprint digest × machine wire dict × scheduler × options — so a
request is computed at most once per store, across restarts.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro import cancel
from repro.engine.mindist import fingerprint_digest
from repro.engine.session import SessionCache
from repro.errors import JobError
from repro.graph.ddg import DependenceGraph
from repro.graph.serialization import graph_from_dict
from repro.machine.configs import (
    govindarajan_machine,
    machine_from_config,
    perfect_club_machine,
)
from repro.machine.machine import MachineModel
from repro.obs import trace
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule, ScheduleStats
from repro.schedulers import registry
from repro.schedulers.registry import make_scheduler
from repro.service import faults
from repro.service.jobs import Job
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import CircuitBreaker
from repro.service.store import ArtifactStore, persistent_study_cache

#: Request schema version embedded in every cache key.
REQUEST_SCHEMA = 1

#: Machine used when a request does not name one.
DEFAULT_MACHINE = "perfect-club"

#: Scheduler used when a request does not name one.
DEFAULT_SCHEDULER = "hrms"

#: The single cheap heuristic a degraded portfolio request falls back
#: to (the paper's own method — milliseconds, no MILP).
DEGRADED_SCHEDULER = "hrms"


def schedule_payload(
    schedule: Schedule, maxlive: int | None = None
) -> dict[str, Any]:
    """The JSON artifact for a computed schedule."""
    stats = schedule.stats
    return {
        "graph": {
            "name": schedule.graph.name,
            "digest": fingerprint_digest(schedule.graph),
            "operations": len(schedule.graph),
        },
        "machine": schedule.machine.to_dict(),
        "scheduler": stats.scheduler,
        "ii": schedule.ii,
        "stage_count": schedule.stage_count,
        "length": schedule.length,
        "start": dict(schedule.start),
        "maxlive": maxlive if maxlive is not None else max_live(schedule),
        "mii": stats.mii,
        "resmii": stats.resmii,
        "recmii": stats.recmii,
        "attempts": stats.attempts,
        "seconds": stats.total_seconds,
    }


def schedule_from_payload(
    payload: dict, graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Rebuild a :class:`Schedule` from a stored artifact payload.

    The caller supplies the graph (artifacts carry only its digest);
    a digest mismatch is rejected rather than silently producing a
    schedule for the wrong loop.
    """
    expected = payload.get("graph", {}).get("digest")
    if expected is not None and expected != fingerprint_digest(graph):
        raise JobError(
            f"artifact was computed for graph digest {expected[:12]}…, "
            f"not for {graph.name!r}"
        )
    machine = machine or MachineModel.from_dict(payload["machine"])
    stats = ScheduleStats(
        scheduler=payload.get("scheduler", ""),
        mii=payload.get("mii", 0),
        resmii=payload.get("resmii", 0),
        recmii=payload.get("recmii", 0),
        attempts=payload.get("attempts", 0),
        total_seconds=payload.get("seconds", 0.0),
    )
    return Schedule(
        graph,
        machine,
        ii=int(payload["ii"]),
        start={name: int(c) for name, c in payload["start"].items()},
        stats=stats,
    )


class SchedulingExecutor:
    """Resolve job requests and run them against the artifact store."""

    def __init__(
        self,
        store: ArtifactStore,
        metrics: ServiceMetrics | None = None,
        events: object | None = None,
    ) -> None:
        self.store = store
        self.metrics = metrics or ServiceMetrics()
        #: Optional :class:`repro.obs.events.EventLog` for decision events.
        self.events = events
        self._study_cache = persistent_study_cache(store)
        #: Live scheduling sessions keyed by (graph digest, machine).
        #: Requests for the same loop × machine — batch members, racing
        #: portfolio schedulers, resubmits — share one MII analysis and
        #: one sweeping MinDist frontier through here.
        self.sessions = SessionCache()
        #: Guards the portfolio race: repeated member failures trip it
        #: open and portfolio requests degrade to DEGRADED_SCHEDULER.
        self.breaker = CircuitBreaker()
        #: Optional queue-saturation probe installed by the service
        #: (``>= 1.0`` means overloaded → degrade portfolio races).
        self.load_factor: Callable[[], float] | None = None

    # ------------------------------------------------------------------
    def execute(self, job: Job) -> dict:
        """Entry point the worker pool calls."""
        return self.execute_request(job.kind, job.request)

    def execute_request(self, kind: str, request: dict) -> dict:
        """Execute one request dict (the wire form of a job)."""
        if kind == "schedule":
            return self._schedule(request)
        if kind == "suite":
            return self._suite(request)
        raise JobError(f"unknown job kind {kind!r}")

    # ------------------------------------------------------------------
    def _resolve_graph(self, request: dict) -> DependenceGraph:
        if "graph" in request:
            return graph_from_dict(request["graph"])
        if "source" in request:
            from repro.frontend.pipeline import compile_source, profile_by_name

            loop = compile_source(
                str(request["source"]),
                name=str(request.get("name", "loop")),
                profile=profile_by_name(request.get("profile")),
            )
            return loop.graph
        raise JobError(
            "a schedule request needs either 'graph' (serialized DDG) "
            "or 'source' (loop-language text)"
        )

    @staticmethod
    def _options(request: dict) -> dict:
        options: dict[str, Any] = {}
        if request.get("max_ii") is not None:
            options["max_ii"] = int(request["max_ii"])
        return options

    @staticmethod
    def _schedule_cache_request(
        graph: DependenceGraph,
        machine: MachineModel,
        scheduler: str,
        options: dict,
    ) -> dict:
        """The canonical identity of one schedule request.

        Portfolio member artifacts are keyed through here too, so a
        member schedule computed during a race is the *same* artifact a
        later individual request for that scheduler hits.
        """
        return {
            "kind": "schedule",
            "schema": REQUEST_SCHEMA,
            "graph": fingerprint_digest(graph),
            "machine": machine.to_dict(),
            "scheduler": scheduler,
            "options": options,
        }

    def _schedule_one(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        scheduler: str,
        options: dict,
    ) -> tuple[str, dict, bool]:
        """Get-or-compute one plain schedule artifact.

        Returns ``(key, payload, cached)``.  The single funnel for both
        direct schedule requests and the degraded-portfolio fallback,
        and the home of the executor's fault-injection hooks."""
        cache_request = self._schedule_cache_request(
            graph, machine, scheduler, options
        )
        key = self.store.key_for(cache_request)
        envelope = self.store.get(key)
        cached = envelope is not None
        if envelope is None:
            if faults.ACTIVE is not None:
                rule = faults.ACTIVE.should_fire("executor.latency")
                if rule is not None:
                    time.sleep(rule.delay_s)
                if faults.ACTIVE.should_fire("executor.error"):
                    raise RuntimeError(
                        "injected transient scheduler fault"
                    )
            # Honour a job deadline before starting a compute (the II
            # search polls it again per attempt).
            cancel.check()
            with trace.span("schedule.compute", scheduler=scheduler):
                session = self.sessions.get(
                    graph, machine, digest=cache_request["graph"]
                )
                schedule = make_scheduler(scheduler, **options).schedule(
                    graph, machine, session.analysis, session=session
                )
            envelope = self.store.put(
                key, "schedule", cache_request, schedule_payload(schedule)
            )
            self.metrics.inc("schedules_computed")
            self.metrics.observe(
                "scheduler_seconds",
                envelope["payload"]["seconds"],
                scheduler=scheduler,
            )
        return key, envelope["payload"], cached

    def _schedule(self, request: dict) -> dict:
        graph = self._resolve_graph(request)
        machine = machine_from_config(request.get("machine", DEFAULT_MACHINE))
        scheduler = str(request.get("scheduler", DEFAULT_SCHEDULER))
        options = self._options(request)
        if scheduler in registry.VIRTUAL_SCHEDULERS:
            return self._portfolio(request, graph, machine, options)

        key, payload, cached = self._schedule_one(
            graph, machine, scheduler, options
        )
        return {
            "kind": "schedule",
            "artifact": key,
            "cached": cached,
            "graph": payload["graph"]["name"],
            "scheduler": scheduler,
            "ii": payload["ii"],
            "mii": payload["mii"],
            "maxlive": payload["maxlive"],
        }

    def _degraded_portfolio(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        options: dict,
        reason: str,
    ) -> dict:
        """Serve a portfolio request in degraded mode: one cheap
        heuristic instead of the full race.

        The member schedule is cached under its own canonical key (it
        *is* the artifact a direct ``scheduler: "hrms"`` request would
        compute), but **no portfolio envelope is written** — a degraded
        answer must never be served as the canonical portfolio artifact
        once the breaker closes again."""
        self.metrics.inc("portfolios_degraded")
        if self.events is not None:
            self.events.emit(
                "portfolio.degraded",
                graph=graph.name,
                reason=reason,
                fallback=DEGRADED_SCHEDULER,
            )
        key, payload, cached = self._schedule_one(
            graph, machine, DEGRADED_SCHEDULER, options
        )
        return {
            "kind": "schedule",
            "artifact": key,
            "cached": cached,
            "degraded": True,
            "degrade_reason": reason,
            "graph": payload["graph"]["name"],
            "scheduler": "portfolio",
            "winner": DEGRADED_SCHEDULER,
            "policy": None,
            "members": [
                {
                    "name": DEGRADED_SCHEDULER,
                    "status": "ok",
                    "source": "degraded",
                }
            ],
            "ii": payload["ii"],
            "mii": payload["mii"],
            "maxlive": payload["maxlive"],
        }

    # ------------------------------------------------------------------
    def _portfolio(
        self,
        request: dict,
        graph: DependenceGraph,
        machine: MachineModel,
        options: dict,
    ) -> dict:
        """Race the scheduler portfolio for one loop.

        Member schedules are cached under their *own* individual request
        keys (a later ``scheduler: "hrms"`` request is a store hit, and
        a member already scheduled individually is not re-raced); the
        portfolio request itself caches the decision record plus the
        winning schedule, so a resubmit is a single store read.
        """
        from repro.portfolio import (
            DEFAULT_MEMBER_BUDGET,
            race_portfolio,
            resolve_members,
        )

        try:
            policy = request.get("policy")
            include_exact = bool(request.get("include_exact", False))
            member_budget = float(
                request.get("member_budget", DEFAULT_MEMBER_BUDGET)
            )
            register_budget = (
                int(request["register_budget"])
                if request.get("register_budget") is not None
                else None
            )
            members = resolve_members(
                request.get("members"), include_exact=include_exact
            )
        except (TypeError, ValueError) as exc:
            raise JobError(f"bad portfolio request: {exc}") from exc

        from repro.portfolio.policies import make_policy

        policy_name = make_policy(policy).name
        # Canonical policy spec for the cache key: a parameterless dict
        # collapses onto the bare name, so {"name": "lexicographic"} and
        # "lexicographic" land on the same artifact.
        if isinstance(policy, dict):
            params = {k: v for k, v in policy.items() if k != "name"}
            policy_spec: Any = (
                {"name": policy_name, **params} if params else policy_name
            )
        else:
            policy_spec = policy_name
        cache_request = self._schedule_cache_request(
            graph,
            machine,
            "portfolio",
            {
                **options,
                "policy": policy_spec,
                "members": list(members),
                "include_exact": include_exact,
                "member_budget": member_budget,
                "register_budget": register_budget,
            },
        )
        key = self.store.key_for(cache_request)
        envelope = self.store.get(key)
        cached = envelope is not None
        if envelope is None:
            # Graceful degradation: under a tripped breaker (repeated
            # member failures) or queue overload, skip the race and
            # serve the single cheap heuristic instead.
            reason = None
            if not self.breaker.allow():
                reason = "breaker-open"
            elif (
                self.load_factor is not None and self.load_factor() >= 1.0
            ):
                reason = "overload"
            if reason is not None:
                return self._degraded_portfolio(
                    graph, machine, options, reason
                )
            # Exact members race under the member budget as their MILP
            # time limit; that option is part of their request identity,
            # so a budget-limited result never masquerades as the
            # artifact an unlimited direct request would compute.
            member_requests = {
                name: self._schedule_cache_request(
                    graph,
                    machine,
                    name,
                    {**options, "time_limit": member_budget}
                    if name in registry.EXACT_SCHEDULERS
                    else options,
                )
                for name in members
            }
            precomputed: dict[str, Schedule] = {}
            for name, member_request in member_requests.items():
                member_envelope = self.store.get(
                    self.store.key_for(member_request)
                )
                if member_envelope is not None:
                    precomputed[name] = schedule_from_payload(
                        member_envelope["payload"], graph, machine
                    )
            session = self.sessions.get(
                graph, machine, digest=cache_request["graph"]
            )
            try:
                with trace.span(
                    "portfolio.race",
                    members=list(members),
                    policy=policy_name,
                ):
                    result = race_portfolio(
                        graph,
                        machine,
                        members=members,
                        policy=policy,
                        member_budget=member_budget,
                        include_exact=include_exact,
                        register_budget=register_budget,
                        precomputed=precomputed,
                        session=session,
                        **options,
                    )
            except Exception:
                # A race that produced nothing usable at all is the
                # strongest breaker signal there is (and a half-open
                # probe must always resolve, so every exception counts).
                self.breaker.record_failure()
                raise
            # Feed the breaker member health: every failed member is a
            # failure event, a fully healthy race closes the breaker.
            failed = sum(
                1 for outcome in result.outcomes if outcome.status != "ok"
            )
            if failed:
                for _ in range(failed):
                    self.breaker.record_failure()
            else:
                self.breaker.record_success()
            member_artifacts: dict[str, str] = {}
            for outcome in result.outcomes:
                # Only verified-usable schedules are cached; an
                # "invalid" member (failed verification) must not become
                # a servable individual artifact.
                if outcome.schedule is None or outcome.status != "ok":
                    continue
                member_key = self.store.key_for(member_requests[outcome.name])
                member_artifacts[outcome.name] = member_key
                if outcome.source == "raced":
                    self.store.put(
                        member_key,
                        "schedule",
                        member_requests[outcome.name],
                        schedule_payload(
                            outcome.schedule, maxlive=outcome.score.maxlive
                        ),
                    )
                    self.metrics.inc("schedules_computed")
            decision = result.decision_record()
            for member in decision["members"]:
                member["artifact"] = member_artifacts.get(member["name"])
            if self.events is not None:
                self.events.emit(
                    "portfolio.settled",
                    graph=graph.name,
                    winner=decision["winner"],
                    policy=decision["policy"],
                    members=[
                        {
                            "name": member["name"],
                            "status": member["status"],
                            "ii": (member.get("score") or {}).get("ii"),
                            "maxlive": (member.get("score") or {}).get(
                                "maxlive"
                            ),
                        }
                        for member in decision["members"]
                    ],
                )
            payload = {
                **decision,
                "schedule": schedule_payload(
                    result.schedule, maxlive=result.winner_score.maxlive
                ),
            }
            envelope = self.store.put(key, "portfolio", cache_request, payload)
            self.metrics.inc("portfolios_computed")
        payload = envelope["payload"]
        schedule_part = payload["schedule"]
        return {
            "kind": "schedule",
            "artifact": key,
            "cached": cached,
            "graph": schedule_part["graph"]["name"],
            "scheduler": "portfolio",
            "winner": payload["winner"],
            "policy": payload["policy"],
            "members": [
                {
                    "name": member["name"],
                    "status": member["status"],
                    "source": member["source"],
                }
                for member in payload["members"]
            ],
            "ii": schedule_part["ii"],
            "mii": schedule_part["mii"],
            "maxlive": schedule_part["maxlive"],
        }

    # ------------------------------------------------------------------
    def _suite(self, request: dict) -> dict:
        from repro.experiments.runner import run_study_parallel
        from repro.workloads.govindarajan import govindarajan_suite
        from repro.workloads.perfectclub import perfect_club_suite

        raw_name = str(request.get("suite", ""))
        # Canonicalise aliases *before* the cache key is built, so
        # "perfect_club" and "perfectclub" land on the same artifact.
        name = {
            "perfect-club": "perfectclub",
            "perfect_club": "perfectclub",
        }.get(raw_name, raw_name)
        n_loops = request.get("n_loops")
        if name == "govindarajan":
            loops = govindarajan_suite()
            default_machine = govindarajan_machine()
        elif name == "perfectclub":
            loops = perfect_club_suite(
                n_loops=int(n_loops) if n_loops is not None else 1258
            )
            default_machine = perfect_club_machine()
        else:
            raise JobError(
                f"unknown suite {raw_name!r}; available: "
                "govindarajan, perfectclub"
            )
        if n_loops is not None:
            loops = loops[: int(n_loops)]
        schedulers = tuple(
            str(s)
            for s in request.get(
                "schedulers", registry.DEFAULT_BATCH_SCHEDULERS
            )
        )
        machine = (
            machine_from_config(request["machine"])
            if "machine" in request
            else default_machine
        )

        cache_request = {
            "kind": "suite",
            "schema": REQUEST_SCHEMA,
            "suite": name,
            "n_loops": len(loops),
            "schedulers": list(schedulers),
            "machine": machine.to_dict(),
        }
        key = self.store.key_for(cache_request)
        envelope = self.store.get(key)
        cached = envelope is not None
        if envelope is None:
            with trace.span(
                "suite.run", suite=name, loops=len(loops)
            ):
                study = run_study_parallel(
                    loops=loops,
                    schedulers=schedulers,
                    machine=machine,
                    mode="thread",
                    cache=self._study_cache,
                )
            payload = {
                "suite": name,
                "schedulers": list(schedulers),
                "loops": [
                    {
                        "name": record.loop.name,
                        "mii": record.mii,
                        "rows": {
                            sched: {"ii": row.ii, "maxlive": row.maxlive}
                            for sched, row in record.rows.items()
                        },
                    }
                    for record in study.records
                ],
            }
            envelope = self.store.put(key, "suite", cache_request, payload)
            self.metrics.inc("suites_computed")
        payload = envelope["payload"]
        return {
            "kind": "suite",
            "artifact": key,
            "cached": cached,
            "suite": name,
            "loops": len(payload["loops"]),
            "schedulers": list(schedulers),
        }
