"""The HTTP JSON API over the scheduling service.

Built on :mod:`http.server` (no new dependencies).  Endpoints::

    GET  /healthz               liveness probe (always 200 while the
                                process serves; body carries ready too)
    GET  /readyz                readiness probe: 200 when the pool is
                                running and the queue has headroom,
                                503 {"ready": false, "reason"} otherwise
    GET  /metrics               Prometheus text (queue depth, latency
                                quantiles, store hit rate, counters)
    GET  /v1/schedulers         registry catalog: names + exact/virtual
                                flags, defaults — clients discover
                                schedulers instead of hardcoding them
    POST /v1/jobs               submit one job; body is the request dict
                                (kind defaults to "schedule") → 202 {id}
    POST /v1/batch              {"jobs": [request, …]} → 202 {ids}
    POST /v1/verify             {"artifact": key, "graph": ddg} →
                                re-run the QA oracle battery (verifier,
                                II bounds, simulator replay) on a stored
                                schedule artifact; 200 report
                                with per-oracle checks
    GET  /v1/jobs               {"counts": {...}, "jobs": [summaries]}
    GET  /v1/jobs/<id>          full job record (status, result, error)
    GET  /v1/artifacts/<key>    the stored JSON envelope

Malformed requests are 400s with ``{"error": …}``; unknown ids/keys are
404s; a full (bounded) job queue is a 429 with a ``Retry-After``
header.  Submissions accept a ``timeout`` control field (seconds) that
becomes the job's deadline — a blown deadline settles the job in the
``timeout`` status.  The server is a
:class:`~http.server.ThreadingHTTPServer`
(thread per connection) in front of the worker pool, so submissions
return immediately and clients poll ``/v1/jobs/<id>``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.errors import JobError, QueueFullError, ReproError
from repro.obs import trace
from repro.obs.events import EventLog
from repro.schedulers import registry
from repro.service import faults
from repro.service.executor import (
    DEFAULT_SCHEDULER,
    SchedulingExecutor,
)
from repro.service.jobs import Job, JobQueue, JobStatus
from repro.service.metrics import ServiceMetrics
from repro.service.procpool import ExecutorConfig, make_worker_pool
from repro.service.resilience import CircuitBreaker
from repro.service.store import ArtifactStore

#: Job kinds the API accepts.
JOB_KINDS = ("schedule", "suite")

#: Per-request fields that configure the job rather than the work.
_CONTROL_FIELDS = ("kind", "priority", "max_attempts", "timeout")

#: Seconds a 429 response tells the client to back off before retrying.
RETRY_AFTER_S = 1


class SchedulingService:
    """Store + queue + workers + metrics behind one façade.

    This object is the API the HTTP layer (and in-process callers, e.g.
    the tests and the perf smoke tier) talk to; it owns no sockets.
    """

    #: Settled (done/failed) jobs kept for polling before eviction.  The
    #: artifacts themselves live in the store forever; this only bounds
    #: the in-memory job records a long-running server accumulates.
    FINISHED_JOBS_KEPT = 10_000

    def __init__(
        self,
        store: ArtifactStore | str | Path,
        *,
        workers: int | None = None,
        max_attempts: int = 2,
        finished_jobs_kept: int | None = None,
        backend: str = "thread",
        config: ExecutorConfig | None = None,
    ) -> None:
        self.store = (
            store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        )
        # An explicit ExecutorConfig wins; the loose kwargs exist for
        # callers (and older code) that only care about one knob.
        self.config = config or ExecutorConfig(
            backend=backend, workers=workers, max_attempts=max_attempts
        )
        self.metrics = ServiceMetrics()
        #: Append-only audit journal beside the artifacts.
        self.events = EventLog(self.store.root / "events.jsonl")
        self.store.events = self.events
        self.executor = SchedulingExecutor(
            self.store, self.metrics, events=self.events
        )
        self.executor.breaker.on_transition = (
            lambda old, new: self.events.emit(
                "breaker.transition", old=old, new=new
            )
        )
        #: Where ``GET /v1/traces/<id>`` reads from (the process-wide
        #: collector, so traces survive a service stop); ``None`` only
        #: when tracing is configured off.
        self.tracer = trace.COLLECTOR if self.config.tracing else None
        self._tracing_armed = False
        self.queue = JobQueue(max_depth=self.config.max_queue_depth)
        # The executor degrades portfolio races when the queue is at
        # (or past) its depth cap — saturation is the overload signal.
        if self.config.max_queue_depth is not None:
            cap = self.config.max_queue_depth
            self.executor.load_factor = lambda: self.queue.depth / cap
        self.max_attempts = self.config.max_attempts
        self.finished_jobs_kept = (
            finished_jobs_kept
            if finished_jobs_kept is not None
            else self.FINISHED_JOBS_KEPT
        )
        self._jobs: dict[str, Job] = {}
        self._finished_order: deque[str] = deque()
        self._jobs_lock = threading.Lock()
        self.pool = make_worker_pool(
            self.queue,
            config=self.config,
            execute=self.executor.execute,
            store_root=self.store.root,
            metrics=self.metrics,
            on_finish=self._finished,
            events=self.events,
        )

    # ------------------------------------------------------------------
    def start(self) -> "SchedulingService":
        """Start the worker pool; returns ``self`` for chaining."""
        if self.config.tracing and not self._tracing_armed:
            self.tracer = trace.arm()
            self._tracing_armed = True
        self.pool.start()
        return self

    def stop(self, wait: bool = True, abort: bool = False) -> None:
        """Close the queue and (optionally) wait for the workers.

        ``abort=True`` settles queued jobs as failed instead of running
        them and bounds how long in-flight work may delay shutdown —
        the Ctrl-C/SIGTERM path of ``hrms-serve``.
        """
        self.pool.stop(wait=wait, abort=abort)
        if self._tracing_armed:
            trace.disarm()
            self._tracing_armed = False
        self.events.close()

    # ------------------------------------------------------------------
    def _build_job(self, body: dict) -> Job:
        """Validate *body* and build (but not enqueue) a job; raises
        :class:`JobError` on malformed submissions (the HTTP layer maps
        that to a 400)."""
        if not isinstance(body, dict):
            raise JobError("a job submission must be a JSON object")
        kind = str(body.get("kind", "schedule"))
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r}; available: {', '.join(JOB_KINDS)}"
            )
        request = {
            key: value
            for key, value in body.items()
            if key not in _CONTROL_FIELDS
        }
        if kind == "schedule" and "graph" not in request and "source" not in request:
            raise JobError(
                "a schedule request needs either 'graph' (serialized DDG) "
                "or 'source' (loop-language text)"
            )
        try:
            priority = int(body.get("priority", 0))
            max_attempts = int(body.get("max_attempts", self.max_attempts))
            timeout = (
                float(body["timeout"])
                if body.get("timeout") is not None
                else None
            )
        except (TypeError, ValueError) as exc:
            raise JobError(f"bad control field: {exc}") from exc
        if timeout is not None and timeout <= 0:
            raise JobError(f"timeout must be > 0 seconds, got {timeout}")
        return Job(
            kind=kind,
            request=request,
            priority=priority,
            max_attempts=max(1, max_attempts),
            deadline=None if timeout is None else time.time() + timeout,
        )

    def _begin_trace(self, job: Job, trace_id: str | None = None) -> None:
        """Mint (or adopt) a trace id and open the root span for *job*."""
        if trace.ACTIVE is None:
            return
        job.trace_id = str(trace_id) if trace_id else trace.new_trace_id()
        job.trace_root = trace.begin_root(
            "request",
            job.trace_id,
            {
                "job": job.id,
                "kind": job.kind,
                "scheduler": str(
                    job.request.get("scheduler", DEFAULT_SCHEDULER)
                ),
            },
        )

    def _job_event_fields(self, job: Job) -> dict:
        fields: dict = {"job": job.id, "kind": job.kind}
        if job.trace_id is not None:
            fields["trace_id"] = job.trace_id
        return fields

    def _enqueue(self, job: Job) -> Job:
        try:
            self.queue.push(job)
        except QueueFullError:
            self.metrics.inc("jobs_rejected")
            if job.trace_root is not None:
                trace.finish(job.trace_root, status="rejected")
                job.trace_root = None
            self.events.emit("job.rejected", **self._job_event_fields(job))
            raise
        with self._jobs_lock:
            self._jobs[job.id] = job
        self.metrics.inc("jobs_submitted")
        self.events.emit(
            "job.submitted",
            priority=job.priority,
            **self._job_event_fields(job),
        )
        return job

    def submit(self, body: dict, trace_id: str | None = None) -> Job:
        """Validate *body* and enqueue a job.

        *trace_id* adopts a caller-supplied trace (the
        ``X-Hrms-Trace-Id`` header); otherwise a fresh one is minted
        when tracing is armed.
        """
        job = self._build_job(body)
        self._begin_trace(job, trace_id)
        return self._enqueue(job)

    def submit_batch(self, bodies: list[dict]) -> list[Job]:
        """Submit a suite of jobs in order; all-or-nothing validation.

        Every entry is fully validated (including control fields) before
        the first is enqueued, so a bad entry mid-list rejects the whole
        batch without running anything.
        """
        if not isinstance(bodies, list) or not bodies:
            raise JobError("'jobs' must be a non-empty list of requests")
        jobs = [self._build_job(body) for body in bodies]
        for job in jobs:
            self._begin_trace(job)
        return [self._enqueue(job) for job in jobs]

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job | None:
        """The job record for *job_id*, or ``None`` if unknown/evicted."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def jobs(self, status: str | None = None) -> list[Job]:
        """Every known job record, optionally filtered by status."""
        with self._jobs_lock:
            everything = list(self._jobs.values())
        if status is None:
            return everything
        return [job for job in everything if job.status == status]

    def artifact(self, key: str) -> dict | None:
        """The stored envelope for *key* (a store read)."""
        return self.store.get(key)

    def verify_artifact(self, body: dict) -> dict | None:
        """Re-verify a stored schedule artifact against the QA oracle
        battery (``POST /v1/verify``).

        *body* carries ``artifact`` (a store key) and ``graph`` (the
        serialized DDG the artifact was computed for — artifacts store
        only the graph's digest, so the caller supplies the structure
        and the digest check rejects mismatches).  Returns ``None``
        for an unknown key (the HTTP layer's 404); raises
        :class:`~repro.errors.JobError` on malformed requests or
        non-schedule artifacts.
        """
        if not isinstance(body, dict):
            raise JobError("a verify request must be a JSON object")
        key = body.get("artifact")
        if not key:
            raise JobError(
                "a verify request needs 'artifact' (a stored artifact key)"
            )
        envelope = self.store.get(str(key))
        if envelope is None:
            return None
        if "graph" not in body:
            raise JobError(
                "a verify request needs 'graph' (the serialized DDG the "
                "artifact was computed for; artifacts only store its "
                "digest)"
            )
        from repro.graph.serialization import graph_from_dict
        from repro.qa.oracles import verify_artifact_payload

        graph = graph_from_dict(body["graph"])
        kind = envelope.get("kind")
        if kind == "portfolio":
            payload = envelope["payload"]["schedule"]
        elif kind == "schedule":
            payload = envelope["payload"]
        else:
            raise JobError(
                f"artifact {key!r} has kind {kind!r}; only schedule and "
                "portfolio artifacts can be re-verified"
            )
        report = verify_artifact_payload(payload, graph)
        report["artifact"] = str(key)
        report["artifact_kind"] = kind
        self.metrics.inc("artifacts_verified")
        return report

    # ------------------------------------------------------------------
    def _finished(self, job: Job) -> None:
        degraded = bool(job.result is not None and job.result.get("degraded"))
        if job.status == JobStatus.DONE:
            self.metrics.inc("jobs_done")
        elif job.status == JobStatus.TIMEOUT:
            self.metrics.inc("jobs_timeout")
        else:
            self.metrics.inc("jobs_failed")
        if degraded:
            self.metrics.inc("jobs_degraded")
        if job.attempts > 1:
            self.metrics.inc("jobs_retried", job.attempts - 1)
        if job.latency is not None:
            self.metrics.observe_latency(job.latency)
        # Per-phase latency families for /metrics.
        if job.started_at is not None:
            self.metrics.observe(
                "phase_seconds",
                max(0.0, job.started_at - job.submitted_at),
                phase="queue",
            )
            if job.finished_at is not None:
                self.metrics.observe(
                    "phase_seconds",
                    max(0.0, job.finished_at - job.started_at),
                    phase="execute",
                )
        if job.trace_root is not None:
            trace.finish(
                job.trace_root, status=job.status, attempts=job.attempts
            )
            job.trace_root = None
        settled = self._job_event_fields(job)
        settled.update(
            status=job.status,
            attempts=job.attempts,
            degraded=degraded,
            scheduler=str(job.request.get("scheduler", DEFAULT_SCHEDULER)),
        )
        if job.request.get("profile") is not None:
            settled["profile"] = str(job.request["profile"])
        if job.latency is not None:
            settled["latency"] = round(job.latency, 6)
        if job.error is not None:
            settled["error"] = job.error.get("type")
        self.events.emit("job.settled", **settled)
        if degraded:
            self.events.emit(
                "job.degraded",
                reason=(job.result or {}).get("degrade_reason"),
                **self._job_event_fields(job),
            )
        # Bound the in-memory registry: settled jobs are evicted oldest
        # first once the retention window is full (queued/running jobs
        # are never touched — they only enter this path when they settle).
        with self._jobs_lock:
            self._finished_order.append(job.id)
            while len(self._finished_order) > self.finished_jobs_kept:
                evicted = self._finished_order.popleft()
                self._jobs.pop(evicted, None)

    def stats(
        self,
        group_by: list[str] | None = None,
        measures: list[str] | None = None,
    ) -> dict:
        """The ``GET /v1/stats`` body: the semantic model queried over
        this service's artifact store and event journal."""
        from repro.obs.stats import StatsModel

        model = StatsModel(self.store, events_path=self.events.path)
        return model.query(group_by=group_by, measures=measures)

    def trace_spans(self, trace_id: str) -> list[dict] | None:
        """Finished spans of *trace_id* (``GET /v1/traces/<id>``), or
        ``None`` when unknown or tracing is configured off."""
        if self.tracer is None:
            return None
        return self.tracer.trace(trace_id)

    def readiness(self) -> tuple[bool, str]:
        """``(ready, reason)`` for the ``/readyz`` probe.

        Ready means: the worker pool is running and a bounded queue
        still has headroom.  Liveness (``/healthz``) stays 200 in
        either case — an unready server is alive, just shedding."""
        if not self.pool.started:
            return False, "worker pool is not running"
        cap = self.queue.max_depth
        if cap is not None and self.queue.depth >= cap:
            return False, f"queue is full ({cap} waiting)"
        return True, "ok"

    #: Breaker states as a numeric gauge (Prometheus has no strings).
    _BREAKER_GAUGE = {
        CircuitBreaker.CLOSED: 0,
        CircuitBreaker.HALF_OPEN: 1,
        CircuitBreaker.OPEN: 2,
    }

    def metrics_text(self) -> str:
        """The Prometheus exposition text ``GET /metrics`` serves."""
        stats = self.store.stats()
        gauges = {
            "queue_depth": self.queue.depth,
            "store_hits": stats.hits,
            "store_misses": stats.misses,
            "store_writes": stats.writes,
            "store_hit_rate": stats.hit_rate,
            "store_quarantined": stats.quarantined,
            "breaker_state": self._BREAKER_GAUGE[self.executor.breaker.state],
            "breaker_trips": self.executor.breaker.trips,
        }
        if faults.ACTIVE is not None:
            gauges["faults_injected"] = faults.ACTIVE.total_fired
        return self.metrics.render_prometheus(gauges=gauges)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto a :class:`SchedulingService`."""

    server_version = "hrms-service/1"
    protocol_version = "HTTP/1.1"
    service: SchedulingService  # injected by make_server

    # Silence the default stderr-per-request logging; with
    # ``--access-log`` each request lands in the structured event
    # journal instead (log_request fires from send_response).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def log_request(self, code: object = "-", size: object = "-") -> None:
        service = getattr(self, "service", None)
        if service is None or not service.config.access_log:
            return
        try:
            status = int(code)  # HTTPStatus is an IntEnum
        except (TypeError, ValueError):
            status = str(code)
        service.events.emit(
            "http.access",
            method=self.command,
            path=self.path,
            code=status,
            client=self.client_address[0],
        )

    # -- helpers -------------------------------------------------------
    def _reply(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(
        self,
        code: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._reply(
            code,
            json.dumps(payload).encode("utf-8"),
            "application/json; charset=utf-8",
            headers=headers,
        )

    def _error(
        self,
        code: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        if code >= 500:
            service = getattr(self, "service", None)
            if service is not None:
                service.metrics.inc("http_errors")
        self._json(code, {"error": message}, headers=headers)

    def _handler_error(self, exc: BaseException) -> None:
        """A handler blew up: journal it and answer 500 (best effort —
        the connection may already be half-written)."""
        service = getattr(self, "service", None)
        if service is not None:
            service.events.emit(
                "http.error",
                method=getattr(self, "command", "?"),
                path=getattr(self, "path", "?"),
                error=type(exc).__name__,
                message=str(exc),
            )
        try:
            # _error counts the 5xx before writing, so the counter is
            # right even when the reply channel is already broken.
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")
        except Exception:  # noqa: BLE001 - reply channel already broken
            pass

    def _injected_fault(self) -> bool:
        """Apply armed api.* faults; ``True`` when a 500 was served."""
        if faults.ACTIVE is None:
            return False
        rule = faults.ACTIVE.should_fire("api.latency")
        if rule is not None:
            time.sleep(rule.delay_s)
        if faults.ACTIVE.should_fire("api.error"):
            self._error(500, "injected handler fault")
            return True
        return False

    def _read_body(self) -> dict | list:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise JobError(f"bad Content-Length header: {exc}") from exc
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobError("request body is empty")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if self._injected_fault():
                return
            if url.path == "/healthz":
                # Liveness: always 200 while the process can answer at
                # all; readiness rides along in the body for humans.
                ready, reason = self.service.readiness()
                self._json(
                    200,
                    {
                        "ok": True,
                        "live": True,
                        "ready": ready,
                        "reason": reason,
                        "backend": self.service.config.backend,
                    },
                )
            elif url.path == "/readyz":
                ready, reason = self.service.readiness()
                self._json(
                    200 if ready else 503,
                    {"ready": ready, "reason": reason},
                )
            elif url.path == "/metrics":
                self._reply(
                    200,
                    self.service.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts == ["v1", "schedulers"]:
                self._json(
                    200,
                    {
                        "schedulers": registry.scheduler_catalog(),
                        "default": DEFAULT_SCHEDULER,
                        "batch_default": list(
                            registry.DEFAULT_BATCH_SCHEDULERS
                        ),
                    },
                )
            elif parts[:2] == ["v1", "jobs"] and len(parts) == 3:
                job = self.service.job(parts[2])
                if job is None:
                    self._error(404, f"no such job {parts[2]!r}")
                else:
                    self._json(200, job.to_dict())
            elif parts == ["v1", "jobs"]:
                query = parse_qs(url.query)
                status = query.get("status", [None])[0]
                if status is not None and status not in JobStatus.ALL:
                    self._error(400, f"unknown status {status!r}")
                    return
                jobs = self.service.jobs(status)
                counts: dict[str, int] = {}
                for job in self.service.jobs():
                    counts[job.status] = counts.get(job.status, 0) + 1
                self._json(
                    200,
                    {
                        "counts": counts,
                        "jobs": [
                            {
                                "id": job.id,
                                "kind": job.kind,
                                "status": job.status,
                                "priority": job.priority,
                            }
                            for job in jobs
                        ],
                    },
                )
            elif parts[:2] == ["v1", "artifacts"] and len(parts) == 3:
                envelope = self.service.artifact(parts[2])
                if envelope is None:
                    self._error(404, f"no such artifact {parts[2]!r}")
                else:
                    self._json(200, envelope)
            elif parts == ["v1", "stats"]:
                query = parse_qs(url.query)
                group_by = [
                    name
                    for raw in query.get("group_by", [])
                    for name in raw.split(",")
                    if name
                ]
                measures = [
                    name
                    for raw in query.get("measures", [])
                    for name in raw.split(",")
                    if name
                ]
                self._json(
                    200,
                    self.service.stats(
                        group_by=group_by or None,
                        measures=measures or None,
                    ),
                )
            elif parts[:2] == ["v1", "traces"] and len(parts) == 3:
                spans = self.service.trace_spans(parts[2])
                if not spans:
                    self._error(404, f"no trace {parts[2]!r}")
                else:
                    self._json(
                        200, {"trace_id": parts[2], "spans": spans}
                    )
            else:
                self._error(404, f"no route for GET {url.path}")
        except ReproError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - journal + 500
            self._handler_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        try:
            if self._injected_fault():
                return
            if url.path == "/v1/jobs":
                body = self._read_body()
                if not isinstance(body, dict):
                    raise JobError("a job submission must be a JSON object")
                job = self.service.submit(
                    body, trace_id=self.headers.get("X-Hrms-Trace-Id")
                )
                payload = {"id": job.id, "status": job.status}
                headers = None
                if job.trace_id is not None:
                    payload["trace"] = job.trace_id
                    headers = {"X-Hrms-Trace-Id": job.trace_id}
                self._json(202, payload, headers=headers)
            elif url.path == "/v1/batch":
                body = self._read_body()
                if not isinstance(body, dict):
                    raise JobError("a batch submission must be a JSON object")
                jobs = self.service.submit_batch(body.get("jobs"))
                batch_payload = {
                    "ids": [job.id for job in jobs],
                    "count": len(jobs),
                }
                if any(job.trace_id is not None for job in jobs):
                    batch_payload["traces"] = [
                        job.trace_id for job in jobs
                    ]
                self._json(202, batch_payload)
            elif url.path == "/v1/verify":
                body = self._read_body()
                if not isinstance(body, dict):
                    raise JobError("a verify request must be a JSON object")
                report = self.service.verify_artifact(body)
                if report is None:
                    self._error(
                        404, f"no such artifact {body.get('artifact')!r}"
                    )
                else:
                    self._json(200, report)
            else:
                self._error(404, f"no route for POST {url.path}")
        except QueueFullError as exc:
            # Backpressure: shed the submission with an explicit
            # back-off hint instead of deepening a saturated queue.
            self._error(
                429, str(exc), headers={"Retry-After": str(RETRY_AFTER_S)}
            )
        except ReproError as exc:
            self._error(400, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # noqa: BLE001 - journal + 500
            self._handler_error(exc)


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server tuned for bursty clients.

    The stdlib default listen backlog of 5 drops (resets) connections
    when e.g. a batch submitter opens dozens of sockets at once; a
    deeper backlog just queues them for the accept loop.
    """

    request_queue_size = 128
    daemon_threads = True


def make_server(
    service: SchedulingService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to *host:port* (0 = ephemeral) serving
    *service*.  The caller owns ``serve_forever``/``shutdown``."""
    handler = type("Handler", (_ServiceHandler,), {"service": service})
    return _ServiceHTTPServer((host, port), handler)


class ServiceServer:
    """Service + HTTP server + serving thread, as one context manager.

    The tests, the quickstart example and the perf smoke tier all want
    "a live server on localhost, torn down afterwards"::

        with ServiceServer(store_dir) as server:
            client = ServiceClient(server.url)
            ...
    """

    def __init__(
        self,
        store: ArtifactStore | str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        max_attempts: int = 2,
        backend: str = "thread",
        config: ExecutorConfig | None = None,
    ) -> None:
        self.service = SchedulingService(
            store,
            workers=workers,
            max_attempts=max_attempts,
            backend=backend,
            config=config,
        )
        self._host = host
        self._port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("server is not running")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Start the service and the HTTP serving thread (idempotent)."""
        if self._server is not None:
            return self
        self.service.start()
        self._server = make_server(self.service, self._host, self._port)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="hrms-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, abort: bool = False) -> None:
        """Shut down the HTTP server, then the service workers."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.stop(abort=abort)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
