"""Job model, priority FIFO queue, and thread worker pool.

A :class:`Job` is one unit of service work (schedule a loop, run a
suite).  Jobs flow ``queued → running → done | failed | timeout``;
transient failures are retried up to ``max_attempts`` with exponential
backoff (:class:`~repro.service.resilience.RetryPolicy`), while
deterministic domain failures (:class:`~repro.errors.ReproError` — a
malformed graph will be exactly as malformed on the second try) fail
immediately with the error captured on the job.  A job carrying a
deadline is cancelled cooperatively (:mod:`repro.cancel`) and settles
in the distinct ``timeout`` state.

The queue is a *priority FIFO*: higher ``priority`` pops first, equal
priorities pop in submission order (a monotonically increasing sequence
number breaks ties, so the heap never compares jobs).  It can be
bounded: past ``max_depth`` external pushes raise
:class:`~repro.errors.QueueFullError` (the API maps this to HTTP 429),
while internal retry requeues bypass the cap — shedding a retry would
turn backpressure into a lost job.

Workers are plain threads — scheduling paper-scale loops is
milliseconds of NumPy-heavy work, and batch jobs fan out internally
through :func:`repro.experiments.runner.parallel_map`.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable

from repro import cancel
from repro.errors import DeadlineExceededError, QueueFullError, ReproError
from repro.obs import trace
from repro.service.resilience import RetryPolicy

logger = logging.getLogger(__name__)


class JobStatus:
    """String constants for the job lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"

    ALL = (QUEUED, RUNNING, DONE, FAILED, TIMEOUT)
    #: Terminal states — a poller may stop watching.
    SETTLED = (DONE, FAILED, TIMEOUT)


def new_job_id() -> str:
    """A short, unique, URL-safe job id."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One unit of service work and its full lifecycle record."""

    kind: str
    request: dict
    id: str = field(default_factory=new_job_id)
    priority: int = 0
    max_attempts: int = 2
    #: Absolute wall-clock deadline (``time.time()``), or ``None``.
    deadline: float | None = None
    status: str = JobStatus.QUEUED
    attempts: int = 0
    #: Crash re-enqueues consumed (worker death is forgiven exactly once
    #: without charging the retry budget).
    crash_requeues: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: dict | None = None
    #: Trace id stamped at submission when tracing is armed.
    trace_id: str | None = None
    #: The live root ("request") span — internal, not serialized.
    trace_root: object | None = field(default=None, repr=False, compare=False)

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall time, once the job is finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict:
        """The public (API) view of the job."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "attempts": self.attempts,
            "deadline": self.deadline,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "trace_id": self.trace_id,
        }


class JobQueue:
    """Thread-safe priority FIFO of :class:`Job` objects.

    ``max_depth`` bounds *external* submissions (``push``); the retry
    path uses :meth:`requeue`, which ignores the bound.
    """

    def __init__(self, max_depth: int | None = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self._heap: list[tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False
        self.max_depth = max_depth

    def push(self, job: Job) -> None:
        """Enqueue *job* (higher priority first, FIFO within a level).

        Raises :class:`~repro.errors.QueueFullError` when a depth cap
        is configured and already reached (backpressure)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if (
                self.max_depth is not None
                and len(self._heap) >= self.max_depth
            ):
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} waiting); "
                    f"retry later"
                )
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def requeue(self, job: Job) -> None:
        """Re-enqueue a job the pool already accepted (retry path).

        Exempt from ``max_depth``: the job was admitted once, and
        dropping it now would lose it."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Dequeue the next job, blocking; ``None`` on close/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Wake every blocked consumer; further pushes are errors."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[Job]:
        """Close the queue and return every job still waiting, in pop
        order.  Used by abort-style shutdown to settle queued jobs as
        failed instead of leaving them ``queued`` forever."""
        with self._cond:
            self._closed = True
            drained = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
            self._cond.notify_all()
        return drained

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def depth(self) -> int:
        """Jobs currently waiting (the /metrics gauge)."""
        return len(self)


class WorkerPool:
    """Threads draining a :class:`JobQueue` through an execute callable.

    ``execute(job) -> dict`` produces the job's result.  Exceptions are
    captured on the job: :class:`~repro.errors.ReproError` fails the job
    immediately (deterministic), :class:`DeadlineExceededError` settles
    it as ``timeout``, anything else requeues it — after the
    ``retry_policy`` backoff — until ``job.max_attempts`` is exhausted.
    An exception tagged ``worker_crash=True`` (a process-backend worker
    died under the job) is forgiven exactly once per job without
    consuming an attempt.  ``on_finish(job)`` fires exactly once per
    job, after it reaches a settled status.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], dict],
        *,
        workers: int | None = None,
        on_finish: Callable[[Job], None] | None = None,
        join_timeout: float = 10.0,
        retry_policy: RetryPolicy | None = None,
        events: object | None = None,
    ) -> None:
        import os

        self.queue = queue
        self._execute = execute
        self._on_finish = on_finish
        #: Optional :class:`repro.obs.events.EventLog` for lifecycle events.
        self.events = events
        self.workers = workers or min(8, os.cpu_count() or 1)
        self.join_timeout = join_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self._threads: list[threading.Thread] = []
        self._timers_lock = threading.Lock()
        self._timers: dict[int, tuple[threading.Timer, Job]] = {}
        self._timer_seq = itertools.count()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"hrms-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    @property
    def started(self) -> bool:
        """Whether worker threads are running (readiness probe)."""
        return bool(self._threads)

    def stop(self, wait: bool = True, abort: bool = False) -> None:
        """Close the queue and (optionally) join the workers.

        The default is graceful: workers finish everything already
        queued before exiting.  ``abort=True`` is the Ctrl-C/SIGTERM
        path — jobs still waiting in the queue are settled as *failed*
        (with the shutdown captured as their error) rather than run, so
        no poller is left watching a job that will never settle.
        """
        self._flush_timers(abort=abort)
        if abort:
            self._abort_queued()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=self.join_timeout)
                if thread.is_alive():
                    # A wedged worker is an observability event, not a
                    # silent leak: say which thread and how long we gave it.
                    logger.warning(
                        "worker thread %s did not join within %.1fs; "
                        "abandoning it (daemon)",
                        thread.name,
                        self.join_timeout,
                    )
        self._threads = []

    def _flush_timers(self, abort: bool) -> None:
        """Cancel pending backoff timers; their jobs are either
        requeued now (graceful: they still get their retry, without the
        delay) or failed (abort)."""
        from repro.errors import ServiceError

        with self._timers_lock:
            pending = list(self._timers.values())
            self._timers.clear()
        for timer, job in pending:
            timer.cancel()
            if abort:
                self._fail(
                    job,
                    ServiceError(
                        f"service stopped before job {job.id} was retried"
                    ),
                )
            else:
                try:
                    self.queue.requeue(job)
                except RuntimeError:
                    self._fail(
                        job,
                        ServiceError(
                            f"service stopped before job {job.id} was retried"
                        ),
                    )

    def _abort_queued(self) -> None:
        """Drain the queue and fail every job that never started."""
        from repro.errors import ServiceError

        for job in self.queue.drain():
            self._fail(
                job,
                ServiceError(
                    f"service stopped before job {job.id} was executed"
                ),
            )

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                return
            self.run_job(job)

    def run_job(self, job: Job) -> None:
        """Execute one job with retry + failure capture (synchronous)."""
        if job.deadline is not None and time.time() >= job.deadline:
            # Expired while waiting in the queue: never start it.
            self._timeout(
                job,
                DeadlineExceededError(
                    f"job {job.id} deadline expired before execution"
                ),
            )
            return
        job.attempts += 1
        job.status = JobStatus.RUNNING
        job.started_at = time.time()
        if self.events is not None:
            self._emit("job.started", job, attempt=job.attempts)
        try:
            root = job.trace_root
            if root is not None and trace.ACTIVE is not None:
                with trace.attach(job.trace_id, root.span_id):
                    if job.attempts == 1:
                        # The wait was not bracketed by code; synthesize
                        # it from the job's own timestamps.
                        trace.record_span(
                            "queue.wait",
                            job.trace_id,
                            root.span_id,
                            start=job.submitted_at,
                            end=job.started_at,
                        )
                    with trace.span("executor", attempt=job.attempts):
                        with cancel.deadline_scope(job.deadline):
                            result = self._execute(job)
            else:
                with cancel.deadline_scope(job.deadline):
                    result = self._execute(job)
        except DeadlineExceededError as exc:
            self._timeout(job, exc)
        except ReproError as exc:
            # Domain failures are deterministic; retrying cannot help.
            self._fail(job, exc)
        except Exception as exc:  # noqa: BLE001 - captured on the job
            if getattr(exc, "worker_crash", False) and job.crash_requeues == 0:
                # A worker died under the job — forgiven exactly once,
                # without consuming an attempt.
                job.crash_requeues = 1
                job.attempts -= 1
                self._requeue_after(job, exc, delay=0.0)
            elif job.attempts < job.max_attempts:
                delay = self.retry_policy.delay(job.attempts, job.id)
                if (
                    job.deadline is not None
                    and time.time() + delay >= job.deadline
                ):
                    # The backoff alone would blow the deadline.
                    self._timeout(
                        job,
                        DeadlineExceededError(
                            f"job {job.id} deadline leaves no room for "
                            f"retry backoff ({delay:.3f}s)"
                        ),
                    )
                else:
                    self._requeue_after(job, exc, delay=delay)
            else:
                self._fail(job, exc)
        else:
            job.result = result
            job.finished_at = time.time()
            # Status flips last: pollers return on a settled status, so
            # result/finished_at must already be visible by then.
            job.status = JobStatus.DONE
            if self._on_finish is not None:
                self._on_finish(job)

    def _emit(self, type_: str, job: Job, **fields: object) -> None:
        """Journal a job-lifecycle event (no-op without an event log)."""
        if self.events is None:
            return
        if job.trace_id is not None:
            fields.setdefault("trace_id", job.trace_id)
        self.events.emit(type_, job=job.id, kind=job.kind, **fields)

    def _requeue_after(
        self, job: Job, exc: BaseException, delay: float
    ) -> None:
        """Put *job* back on the queue after *delay* seconds (0 = now)."""
        if self.events is not None:
            self._emit(
                "job.retried",
                job,
                attempt=job.attempts,
                delay=round(delay, 6),
                crash=bool(getattr(exc, "worker_crash", False)),
                error=type(exc).__name__,
            )
        job.status = JobStatus.QUEUED
        if delay <= 0.0:
            try:
                self.queue.requeue(job)
            except RuntimeError:
                self._fail(job, exc)
            return
        token = next(self._timer_seq)

        def fire() -> None:
            with self._timers_lock:
                if self._timers.pop(token, None) is None:
                    return  # stop() already flushed this retry
            try:
                self.queue.requeue(job)
            except RuntimeError:
                self._fail(job, exc)

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        with self._timers_lock:
            self._timers[token] = (timer, job)
        timer.start()

    def _fail(self, job: Job, exc: BaseException) -> None:
        job.error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "attempts": job.attempts,
        }
        job.finished_at = time.time()
        # Status flips last (see run_job): a "failed" observer must
        # already see the captured error and timestamp.
        job.status = JobStatus.FAILED
        if self._on_finish is not None:
            self._on_finish(job)

    def _timeout(self, job: Job, exc: DeadlineExceededError) -> None:
        """Settle *job* in the distinct ``timeout`` state."""
        job.error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "attempts": job.attempts,
        }
        job.finished_at = time.time()
        # Status flips last, as everywhere.
        job.status = JobStatus.TIMEOUT
        if self._on_finish is not None:
            self._on_finish(job)
