"""Job model, priority FIFO queue, and thread worker pool.

A :class:`Job` is one unit of service work (schedule a loop, run a
suite).  Jobs flow ``queued → running → done | failed``; transient
failures are retried up to ``max_attempts``, while deterministic domain
failures (:class:`~repro.errors.ReproError` — a malformed graph will be
exactly as malformed on the second try) fail immediately with the error
captured on the job.

The queue is a *priority FIFO*: higher ``priority`` pops first, equal
priorities pop in submission order (a monotonically increasing sequence
number breaks ties, so the heap never compares jobs).  Workers are
plain threads — scheduling paper-scale loops is milliseconds of
NumPy-heavy work, and batch jobs fan out internally through
:func:`repro.experiments.runner.parallel_map`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError


class JobStatus:
    """String constants for the job lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    ALL = (QUEUED, RUNNING, DONE, FAILED)


def new_job_id() -> str:
    """A short, unique, URL-safe job id."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One unit of service work and its full lifecycle record."""

    kind: str
    request: dict
    id: str = field(default_factory=new_job_id)
    priority: int = 0
    max_attempts: int = 2
    status: str = JobStatus.QUEUED
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: dict | None = None

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall time, once the job is finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict:
        """The public (API) view of the job."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }


class JobQueue:
    """Thread-safe priority FIFO of :class:`Job` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False

    def push(self, job: Job) -> None:
        """Enqueue *job* (higher priority first, FIFO within a level)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Dequeue the next job, blocking; ``None`` on close/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Wake every blocked consumer; further pushes are errors."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[Job]:
        """Close the queue and return every job still waiting, in pop
        order.  Used by abort-style shutdown to settle queued jobs as
        failed instead of leaving them ``queued`` forever."""
        with self._cond:
            self._closed = True
            drained = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
            self._cond.notify_all()
        return drained

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def depth(self) -> int:
        """Jobs currently waiting (the /metrics gauge)."""
        return len(self)


class WorkerPool:
    """Threads draining a :class:`JobQueue` through an execute callable.

    ``execute(job) -> dict`` produces the job's result.  Exceptions are
    captured on the job: :class:`~repro.errors.ReproError` fails the job
    immediately (deterministic), anything else requeues it until
    ``job.max_attempts`` is exhausted.  ``on_finish(job)`` fires exactly
    once per job, after it reaches ``done`` or ``failed``.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], dict],
        *,
        workers: int | None = None,
        on_finish: Callable[[Job], None] | None = None,
    ) -> None:
        import os

        self.queue = queue
        self._execute = execute
        self._on_finish = on_finish
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"hrms-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True, abort: bool = False) -> None:
        """Close the queue and (optionally) join the workers.

        The default is graceful: workers finish everything already
        queued before exiting.  ``abort=True`` is the Ctrl-C/SIGTERM
        path — jobs still waiting in the queue are settled as *failed*
        (with the shutdown captured as their error) rather than run, so
        no poller is left watching a job that will never settle.
        """
        if abort:
            self._abort_queued()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
        self._threads = []

    def _abort_queued(self) -> None:
        """Drain the queue and fail every job that never started."""
        from repro.errors import ServiceError

        for job in self.queue.drain():
            self._fail(
                job,
                ServiceError(
                    f"service stopped before job {job.id} was executed"
                ),
            )

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                return
            self.run_job(job)

    def run_job(self, job: Job) -> None:
        """Execute one job with retry + failure capture (synchronous)."""
        job.attempts += 1
        job.status = JobStatus.RUNNING
        job.started_at = time.time()
        try:
            result = self._execute(job)
        except ReproError as exc:
            # Domain failures are deterministic; retrying cannot help.
            self._fail(job, exc)
        except Exception as exc:  # noqa: BLE001 - captured on the job
            if job.attempts < job.max_attempts:
                job.status = JobStatus.QUEUED
                try:
                    self.queue.push(job)
                except RuntimeError:
                    self._fail(job, exc)
            else:
                self._fail(job, exc)
        else:
            job.result = result
            job.finished_at = time.time()
            # Status flips last: pollers return on a settled status, so
            # result/finished_at must already be visible by then.
            job.status = JobStatus.DONE
            if self._on_finish is not None:
                self._on_finish(job)

    def _fail(self, job: Job, exc: BaseException) -> None:
        job.error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "attempts": job.attempts,
        }
        job.finished_at = time.time()
        # Status flips last (see run_job): a "failed" observer must
        # already see the captured error and timestamp.
        job.status = JobStatus.FAILED
        if self._on_finish is not None:
            self._on_finish(job)
