"""Stdlib HTTP client for the scheduling service.

``urllib.request`` only — usable from the ``hrms-submit`` CLI, the
examples and plain scripts without any dependency.  The client speaks
the JSON API of :mod:`repro.service.api` and adds the two conveniences
every caller wants: building a request dict from in-memory objects
(:meth:`ServiceClient.submit_graph` / :meth:`submit_source`) and
blocking until a job settles (:meth:`wait` / :meth:`result`).

Resilience: every request carries a *connect* timeout (fail fast when
the host is gone) and a *read* timeout (an accepted-but-silent server
cannot hang the caller), plus a small retry budget — idempotent GETs
retry on transport failures and 5xx, any method retries on connection
refusal (nothing was sent) and on 429 backpressure (the server
rejected the work, honouring its ``Retry-After`` hint).
"""

from __future__ import annotations

import functools
import http.client
import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.graph.ddg import DependenceGraph
from repro.graph.serialization import graph_to_dict
from repro.machine.machine import MachineModel
from repro.service.jobs import JobStatus

#: Default per-request read timeout (seconds).
DEFAULT_TIMEOUT = 30.0

#: Default connection-establishment timeout (seconds) — much tighter
#: than the read timeout: connects either succeed fast or never.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Default retry budget (attempts beyond the first).
DEFAULT_RETRIES = 2


class _SplitTimeoutConnection(http.client.HTTPConnection):
    """An HTTPConnection whose socket switches from the connect timeout
    (``self.timeout``, applied by the stdlib during connect) to the
    read timeout once the connection is up."""

    def __init__(self, *args, read_timeout: float | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._read_timeout = read_timeout

    def connect(self) -> None:
        super().connect()
        if self._read_timeout is not None:
            self.sock.settimeout(self._read_timeout)


class _SplitTimeoutHandler(urllib.request.HTTPHandler):
    """Opens plain-HTTP requests through :class:`_SplitTimeoutConnection`."""

    def __init__(self, read_timeout: float | None) -> None:
        super().__init__()
        self._read_timeout = read_timeout

    def http_open(self, req):
        return self.do_open(
            functools.partial(
                _SplitTimeoutConnection, read_timeout=self._read_timeout
            ),
            req,
        )


class ServiceClient:
    """Talk to a running scheduling service over HTTP."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        connect_timeout: float | None = None,
        retries: int = DEFAULT_RETRIES,
        retry_backoff: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # Never wait longer to connect than we would to read.
        self.connect_timeout = min(
            timeout,
            connect_timeout
            if connect_timeout is not None
            else DEFAULT_CONNECT_TIMEOUT,
        )
        self.retries = max(0, retries)
        self.retry_backoff = retry_backoff
        self._opener = urllib.request.build_opener(
            _SplitTimeoutHandler(read_timeout=timeout)
        )

    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        expect: str = "json",
    ):
        """One logical request (with the retry budget applied); every
        failure surfaces as a clear :class:`~repro.errors.ServiceError`.

        ``expect="json"`` (everything but ``/metrics``) parses and
        returns the JSON body; a non-JSON content type or an
        unparseable body — a proxy error page, a wrong port, a
        truncated response — raises instead of leaking a raw
        ``TypeError``/``JSONDecodeError`` traceback to the caller.
        ``expect="text"`` returns the decoded body as-is.
        """
        last: ServiceError | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._call_once(method, path, body, expect=expect)
            except ServiceError as exc:
                last = exc
                if attempt >= self.retries or not getattr(
                    exc, "retryable", False
                ):
                    raise
                hinted = getattr(exc, "retry_after", None)
                delay = (
                    hinted
                    if hinted is not None
                    else self.retry_backoff * 2**attempt
                )
                time.sleep(delay)
        raise last  # pragma: no cover - loop always returns or raises

    @staticmethod
    def _retryable(exc: ServiceError, retry_after: float | None = None):
        """Tag *exc* for the retry loop and return it."""
        exc.retryable = True
        exc.retry_after = retry_after
        return exc

    def _call_once(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        expect: str = "json",
    ):
        """One HTTP round-trip (no retries)."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with self._opener.open(
                request, timeout=self.connect_timeout
            ) as resp:
                raw = resp.read()
                kind = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            retry_after = exc.headers.get("Retry-After")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            error = ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: {detail}"
            )
            if exc.code == 429:
                # Backpressure: nothing was accepted — safe for any
                # method, and the server told us how long to back off.
                try:
                    hinted = float(retry_after) if retry_after else None
                except ValueError:
                    hinted = None
                self._retryable(error, retry_after=hinted)
            elif exc.code >= 500 and method == "GET":
                self._retryable(error)
            raise error from exc
        except urllib.error.URLError as exc:
            error = ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason} "
                "(is hrms-serve running there?)"
            )
            if method == "GET" or isinstance(
                exc.reason, ConnectionRefusedError
            ):
                # GETs are idempotent; a refused connection never
                # delivered the request, so any method may retry it.
                self._retryable(error)
            raise error from exc
        except (http.client.HTTPException, OSError) as exc:
            # Truncated bodies (IncompleteRead), protocol violations,
            # timeouts mid-read, connection resets, …
            error = ServiceError(
                f"{method} {path} to {self.base_url} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            if method == "GET":
                self._retryable(error)
            raise error from exc
        if expect == "text":
            return raw.decode("utf-8", "replace")
        if not kind.startswith("application/json"):
            raise ServiceError(
                f"{method} {path} returned a non-JSON response "
                f"(Content-Type {kind or 'missing'!r}) — is "
                f"{self.base_url} really an hrms scheduling service?"
            )
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"{method} {path} returned an unparseable JSON body "
                f"({exc}) — is {self.base_url} really an hrms "
                "scheduling service?"
            ) from exc

    # ------------------------------------------------------------------
    def health(self) -> bool:
        """``True`` when the server answers its liveness probe."""
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except ServiceError:
            return False

    def metrics(self) -> str:
        """The raw Prometheus text from ``/metrics``."""
        return self._call("GET", "/metrics", expect="text")

    # ------------------------------------------------------------------
    def schedulers(self) -> list[dict]:
        """The server's scheduler catalog (name + exact/virtual flags).

        Clients should discover scheduler names here instead of
        hardcoding them; the ``hrms-submit`` CLI validates its
        ``--scheduler`` argument against this list.
        """
        return self._call("GET", "/v1/schedulers")["schedulers"]

    def scheduler_names(self) -> list[str]:
        """Just the names from :meth:`schedulers`."""
        return [entry["name"] for entry in self.schedulers()]

    # ------------------------------------------------------------------
    def submit(self, request: dict) -> str:
        """Submit one raw job request; returns the job id."""
        return self.submit_record(request)["id"]

    def submit_record(self, request: dict) -> dict:
        """Submit one raw job request and return the full acceptance
        record — ``{"id", "status"}`` plus ``"trace"`` (the end-to-end
        trace id) when the server has tracing armed."""
        return self._call("POST", "/v1/jobs", request)

    def submit_batch(self, requests: list[dict]) -> list[str]:
        """Submit a suite of requests; returns the job ids in order."""
        return self._call("POST", "/v1/batch", {"jobs": requests})["ids"]

    def submit_graph(
        self,
        graph: DependenceGraph,
        *,
        machine: MachineModel | dict | str | None = None,
        scheduler: str = "hrms",
        priority: int = 0,
        **options,
    ) -> str:
        """Serialise *graph* and submit a schedule job for it."""
        request: dict = {
            "kind": "schedule",
            "graph": graph_to_dict(graph),
            "scheduler": scheduler,
            "priority": priority,
            **options,
        }
        if machine is not None:
            request["machine"] = (
                machine.to_dict()
                if isinstance(machine, MachineModel)
                else machine
            )
        return self.submit(request)

    def submit_source(
        self,
        source: str,
        *,
        name: str = "loop",
        profile: str | None = None,
        machine: MachineModel | dict | str | None = None,
        scheduler: str = "hrms",
        priority: int = 0,
        **options,
    ) -> str:
        """Submit loop-language *source* to be compiled and scheduled."""
        request: dict = {
            "kind": "schedule",
            "source": source,
            "name": name,
            "scheduler": scheduler,
            "priority": priority,
            **options,
        }
        if profile is not None:
            request["profile"] = profile
        if machine is not None:
            request["machine"] = (
                machine.to_dict()
                if isinstance(machine, MachineModel)
                else machine
            )
        return self.submit(request)

    # ------------------------------------------------------------------
    def job(self, job_id: str) -> dict:
        """The full job record (status, result, error)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, *, timeout: float = 60.0, poll: float = 0.02
    ) -> dict:
        """Poll until the job settles; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in JobStatus.SETTLED:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(poll)

    def artifact(self, key: str) -> dict:
        """The stored JSON envelope for *key*."""
        return self._call("GET", f"/v1/artifacts/{key}")

    def stats(
        self,
        group_by: list[str] | None = None,
        measures: list[str] | None = None,
    ) -> dict:
        """Query the server's semantic stats layer (``GET /v1/stats``)."""
        query = []
        if group_by:
            query.append("group_by=" + ",".join(group_by))
        if measures:
            query.append("measures=" + ",".join(measures))
        path = "/v1/stats" + ("?" + "&".join(query) if query else "")
        return self._call("GET", path)

    def trace(self, trace_id: str) -> list[dict]:
        """The finished spans of *trace_id* (``GET /v1/traces/<id>``)."""
        return self._call("GET", f"/v1/traces/{trace_id}")["spans"]

    def verify(self, key: str, graph: DependenceGraph | dict) -> dict:
        """Re-verify a stored schedule artifact (``POST /v1/verify``).

        *graph* is the dependence graph the artifact was computed for
        (artifacts carry only its digest); pass either the in-memory
        graph or its serialized dict.  Returns the oracle report:
        ``{"ok": bool, "checks": [{"oracle", "ok", "detail"}, …], …}``.
        """
        serialized = (
            graph_to_dict(graph)
            if isinstance(graph, DependenceGraph)
            else graph
        )
        return self._call(
            "POST", "/v1/verify", {"artifact": key, "graph": serialized}
        )

    def result(self, job_id: str, *, timeout: float = 60.0) -> dict:
        """Wait for *job_id* and return its artifact envelope.

        A failed job raises :class:`ServiceError` carrying the captured
        error, so callers never mistake a failure for an empty result.
        """
        record = self.wait(job_id, timeout=timeout)
        if record["status"] != JobStatus.DONE:
            error = record.get("error") or {}
            raise ServiceError(
                f"job {job_id} {record['status']}: "
                f"{error.get('type', 'Error')}: "
                f"{error.get('message', 'unknown error')}"
            )
        return self.artifact(record["result"]["artifact"])
