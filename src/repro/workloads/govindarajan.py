"""A 24-kernel stand-in for the dependence graphs of Govindarajan et al.

Section 4.1 evaluates HRMS on "24 dependence graphs from [8]" — loops
supplied privately by the SPILP authors and never published in
machine-readable form.  Per DESIGN.md §3 we substitute 24 hand-written
kernels drawn from the families that suite was built from: Livermore
kernels, Whetstone cycles, classic BLAS-1 loops, SPICE-style device-model
fragments and small recurrences.  They use the paper's Section 4.1 machine
(1 FP add, 1 FP mul, 1 FP divide, 1 load/store) and latencies (add/sub/
store 1, mul/load 2, divide 17).

The suite deliberately covers:

* recurrence-free graphs of 4–16 operations (liv1, liv7, fir4, …),
* first- and second-order recurrences (liv2, liv5, recur2, …) — recur2's
  two backward edges exercise the Figure 8c/8d subgraph classification,
* divide chains (spice1, liv23s) — ``liv23s`` is the suite's SPILP
  stress case, echoing the paper's Livermore-23 anecdote,
* reduction self-dependences (liv3, liv4) — trivial circuits.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.machine.configs import GOVINDARAJAN_LATENCIES, STORE_LATENCY
from repro.workloads.loops import Loop


def _builder(name: str) -> GraphBuilder:
    builder = GraphBuilder(name)
    builder.defaults(**GOVINDARAJAN_LATENCIES)
    return builder


def _store(builder: GraphBuilder, name: str, deps) -> GraphBuilder:
    return builder.store(name, deps=deps, latency=STORE_LATENCY)


def liv1() -> Loop:
    """Livermore 1 (hydro): x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])."""
    b = _builder("liv1")
    b.load("ly").load("lz1").load("lz2")
    b.mul("m1", deps=["lz1"])  # r * z[k+10]
    b.mul("m2", deps=["lz2"])  # t * z[k+11]
    b.add("a1", deps=["m1", "m2"])
    b.mul("m3", deps=["ly", "a1"])
    b.add("a2", deps=["m3"])  # q + ...
    _store(b, "st", ["a2"])
    return Loop(b.build(), iterations=400, invariants=3, source="livermore")


def liv2() -> Loop:
    """Livermore 2 (ICCG step): x[i] = x[i] - v[i]*x[i-1]."""
    b = _builder("liv2")
    b.load("lv").load("lx")
    b.mul("m", deps=["lv", ("a", 1)])
    b.add("a", deps=["lx", "m"])
    _store(b, "st", ["a"])
    return Loop(b.build(), iterations=250, invariants=0, source="livermore")


def liv3() -> Loop:
    """Livermore 3 (inner product): q += z[k]*x[k]."""
    b = _builder("liv3")
    b.load("lz").load("lx")
    b.mul("m", deps=["lz", "lx"])
    b.add("acc", deps=["m", ("acc", 1)])
    return Loop(b.build(), iterations=1000, invariants=0, source="livermore")


def liv4() -> Loop:
    """Livermore 4 (banded linear eq.): double-width reduction."""
    b = _builder("liv4")
    b.load("lz1").load("lx1").load("lz2").load("lx2")
    b.mul("m1", deps=["lz1", "lx1"])
    b.mul("m2", deps=["lz2", "lx2"])
    b.add("a1", deps=["m1", "m2"])
    b.add("acc", deps=["a1", ("acc", 1)])
    return Loop(b.build(), iterations=300, invariants=0, source="livermore")


def liv5() -> Loop:
    """Livermore 5 (tridiagonal): x[i] = z[i]*(y[i] - x[i-1])."""
    b = _builder("liv5")
    b.load("lz").load("ly")
    b.add("sub", deps=["ly", ("m", 1)])
    b.mul("m", deps=["lz", "sub"])
    _store(b, "st", ["m"])
    return Loop(b.build(), iterations=500, invariants=0, source="livermore")


def liv6() -> Loop:
    """Livermore 6 (general linear recurrence, inner step)."""
    b = _builder("liv6")
    b.load("lb").load("lw")
    b.mul("m1", deps=["lb", ("a2", 1)])
    b.add("a1", deps=["lw", "m1"])
    b.add("a2", deps=["a1"])
    _store(b, "st", ["a2"])
    return Loop(b.build(), iterations=200, invariants=1, source="livermore")


def liv7() -> Loop:
    """Livermore 7 (equation of state): wide recurrence-free expression."""
    b = _builder("liv7")
    b.load("lu1").load("lu2").load("lu3").load("lz").load("ly")
    b.mul("m1", deps=["lu1"])      # r * u[k+3]
    b.mul("m2", deps=["lu2"])      # t * u[k+6]
    b.add("a1", deps=["lu3", "m1"])
    b.add("a2", deps=["a1", "m2"])
    b.mul("m3", deps=["lz", "a2"])
    b.add("a3", deps=["ly", "m3"])
    b.mul("m4", deps=["a3"])       # * r
    b.add("a4", deps=["m4", "a2"])
    _store(b, "st", ["a4"])
    return Loop(b.build(), iterations=120, invariants=2, source="livermore")


def liv11() -> Loop:
    """Livermore 11 (first sum): x[k] = x[k-1] + y[k]."""
    b = _builder("liv11")
    b.load("ly")
    b.add("a", deps=["ly", ("a", 1)])
    _store(b, "st", ["a"])
    return Loop(b.build(), iterations=1000, invariants=0, source="livermore")


def liv12() -> Loop:
    """Livermore 12 (first difference): x[k] = y[k+1] - y[k]."""
    b = _builder("liv12")
    b.load("ly1").load("ly2")
    b.add("d", deps=["ly1", "ly2"])
    _store(b, "st", ["d"])
    return Loop(b.build(), iterations=1000, invariants=0, source="livermore")


def liv23s() -> Loop:
    """Livermore 23 (implicit hydro, simplified): divide inside a recurrence.

    The suite's SPILP stress case: a 17-cycle divide on the critical path
    of a loop-carried recurrence forces a large II and a long MILP horizon,
    reproducing the paper's report that Loop 23 dominates SPILP's time.
    """
    b = _builder("liv23s")
    b.load("lza").load("lzb").load("lzu").load("lzv").load("lzr")
    b.mul("m1", deps=["lza", "lzu"])
    b.mul("m2", deps=["lzb", "lzv"])
    b.add("a1", deps=["m1", "m2"])
    b.add("a2", deps=["a1", "lzr"])
    b.mul("m3", deps=["a2", ("qa", 1)])
    b.add("a3", deps=["m3", "lzu"])
    b.div("qa", deps=["a3", "a1"])
    b.add("a4", deps=["qa"])       # relaxation blend with invariant factor
    b.mul("m4", deps=["a4"])
    _store(b, "st", ["m4"])
    return Loop(b.build(), iterations=150, invariants=2, source="livermore")


def daxpy() -> Loop:
    """BLAS-1 daxpy: y[i] += a * x[i]."""
    b = _builder("daxpy")
    b.load("lx").load("ly")
    b.mul("m", deps=["lx"])  # a * x[i]
    b.add("s", deps=["ly", "m"])
    _store(b, "st", ["s"])
    return Loop(b.build(), iterations=1000, invariants=1, source="blas")


def dscal() -> Loop:
    """BLAS-1 dscal: x[i] *= a."""
    b = _builder("dscal")
    b.load("lx")
    b.mul("m", deps=["lx"])
    _store(b, "st", ["m"])
    return Loop(b.build(), iterations=800, invariants=1, source="blas")


def ddot2() -> Loop:
    """Dot product unrolled by two (two partial accumulators)."""
    b = _builder("ddot2")
    b.load("lx1").load("ly1").load("lx2").load("ly2")
    b.mul("m1", deps=["lx1", "ly1"])
    b.mul("m2", deps=["lx2", "ly2"])
    b.add("acc1", deps=["m1", ("acc1", 1)])
    b.add("acc2", deps=["m2", ("acc2", 1)])
    return Loop(b.build(), iterations=500, invariants=0, source="blas")


def fir4() -> Loop:
    """Four-tap FIR filter: y[i] = sum_j c[j] * x[i+j]."""
    b = _builder("fir4")
    b.load("lx0").load("lx1").load("lx2").load("lx3")
    b.mul("m0", deps=["lx0"])
    b.mul("m1", deps=["lx1"])
    b.mul("m2", deps=["lx2"])
    b.mul("m3", deps=["lx3"])
    b.add("a0", deps=["m0", "m1"])
    b.add("a1", deps=["m2", "m3"])
    b.add("a2", deps=["a0", "a1"])
    _store(b, "st", ["a2"])
    return Loop(b.build(), iterations=600, invariants=4, source="dsp")


def stencil3() -> Loop:
    """Three-point stencil: a[i] = (b[i-1] + b[i] + b[i+1]) * third."""
    b = _builder("stencil3")
    b.load("lb0").load("lb1").load("lb2")
    b.add("a0", deps=["lb0", "lb1"])
    b.add("a1", deps=["a0", "lb2"])
    b.mul("m", deps=["a1"])
    _store(b, "st", ["m"])
    return Loop(b.build(), iterations=700, invariants=1, source="stencil")


def cmul() -> Loop:
    """Complex multiply: (a+bi)(c+di) with interleaved stores."""
    b = _builder("cmul")
    b.load("la").load("lb").load("lc").load("ld")
    b.mul("ac", deps=["la", "lc"])
    b.mul("bd", deps=["lb", "ld"])
    b.mul("ad", deps=["la", "ld"])
    b.mul("bc", deps=["lb", "lc"])
    b.add("re", deps=["ac", "bd"])
    b.add("im", deps=["ad", "bc"])
    _store(b, "st_re", ["re"])
    _store(b, "st_im", ["im"])
    return Loop(b.build(), iterations=400, invariants=0, source="dsp")


def horner4() -> Loop:
    """Degree-4 Horner evaluation: deep mul/add chain, no recurrence."""
    b = _builder("horner4")
    b.load("lx")
    b.mul("m1", deps=["lx"])
    b.add("a1", deps=["m1"])
    b.mul("m2", deps=["lx", "a1"])
    b.add("a2", deps=["m2"])
    b.mul("m3", deps=["lx", "a2"])
    b.add("a3", deps=["m3"])
    b.mul("m4", deps=["lx", "a3"])
    b.add("a4", deps=["m4"])
    _store(b, "st", ["a4"])
    return Loop(b.build(), iterations=300, invariants=5, source="poly")


def recur2() -> Loop:
    """Second-order recurrence y[i] = a*y[i-1] + b*y[i-2].

    Two backward edges with distinct distances create two recurrence
    subgraphs sharing nodes — the Figure 8c/8d classification case.
    """
    b = _builder("recur2")
    b.mul("m1", deps=[("a2", 1)])
    b.mul("m2", deps=[("a2", 2)])
    b.add("a2", deps=["m1", "m2"])
    _store(b, "st", ["a2"])
    return Loop(b.build(), iterations=400, invariants=2, source="recurrence")


def expavg() -> Loop:
    """Exponential moving average: s = alpha*x[i] + beta*s."""
    b = _builder("expavg")
    b.load("lx")
    b.mul("m1", deps=["lx"])
    b.mul("m2", deps=[("s", 1)])
    b.add("s", deps=["m1", "m2"])
    _store(b, "st", ["s"])
    return Loop(b.build(), iterations=600, invariants=2, source="dsp")


def spice1() -> Loop:
    """SPICE-style device model: divide chain, no recurrence."""
    b = _builder("spice1")
    b.load("lv").load("lg")
    b.add("a1", deps=["lv"])
    b.div("d1", deps=["lg", "a1"])
    b.mul("m1", deps=["d1", "lv"])
    b.add("a2", deps=["m1"])
    _store(b, "st", ["a2"])
    return Loop(b.build(), iterations=80, invariants=2, source="spice")


def spice2() -> Loop:
    """SPICE-style conductance update: two divides feeding a sum."""
    b = _builder("spice2")
    b.load("li").load("lv1").load("lv2")
    b.div("d1", deps=["li", "lv1"])
    b.div("d2", deps=["li", "lv2"])
    b.add("a1", deps=["d1", "d2"])
    b.mul("m1", deps=["a1"])
    _store(b, "st", ["m1"])
    return Loop(b.build(), iterations=60, invariants=1, source="spice")


def whet1() -> Loop:
    """Whetstone cycle 1: x = (x + y + z - w) * t, cross-iteration."""
    b = _builder("whet1")
    b.add("a1", deps=[("m", 1)])
    b.add("a2", deps=["a1", ("m", 1)])
    b.add("a3", deps=["a2"])
    b.mul("m", deps=["a3"])
    _store(b, "st", ["m"])
    return Loop(b.build(), iterations=500, invariants=2, source="whetstone")


def whet2() -> Loop:
    """Whetstone cycle 2: alternating adds/muls over two state values."""
    b = _builder("whet2")
    b.add("a1", deps=[("m2", 1)])
    b.mul("m1", deps=["a1"])
    b.add("a2", deps=["m1", ("m2", 1)])
    b.mul("m2", deps=["a2"])
    _store(b, "st", ["m2"])
    return Loop(b.build(), iterations=500, invariants=1, source="whetstone")


def tri_nest() -> Loop:
    """Triangular solve inner loop: acc -= l[i,j] * x[j] then divide."""
    b = _builder("tri_nest")
    b.load("ll").load("lx").load("ld")
    b.mul("m", deps=["ll", "lx"])
    b.add("a", deps=["m", ("a", 1)])
    b.div("d", deps=["a", "ld"])
    _store(b, "st", ["d"])
    return Loop(b.build(), iterations=100, invariants=0, source="linalg")


def grad2() -> Loop:
    """2-D gradient magnitude (no sqrt on this machine: sum of squares)."""
    b = _builder("grad2")
    b.load("lgx").load("lgy")
    b.mul("mx", deps=["lgx", "lgx"])
    b.mul("my", deps=["lgy", "lgy"])
    b.add("s", deps=["mx", "my"])
    _store(b, "st", ["s"])
    return Loop(b.build(), iterations=900, invariants=0, source="imaging")


#: The 24 kernels of the Table-1 comparison, fixed order.
KERNELS = [
    liv1, liv2, liv3, liv4, liv5, liv6, liv7, liv11, liv12, liv23s,
    daxpy, dscal, ddot2, fir4, stencil3, cmul, horner4, recur2,
    expavg, spice1, spice2, whet1, whet2, tri_nest,
]


def govindarajan_suite() -> list[Loop]:
    """All 24 loops in Table-1 order."""
    suite = [kernel() for kernel in KERNELS]
    assert len(suite) == 24
    return suite
