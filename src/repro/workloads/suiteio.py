"""Persisting whole loop suites to disk.

Experiments are reproducible from seeds alone, but exporting the exact
loop population (graphs + iteration counts + invariants) lets results be
compared across library versions or fed to external tools.  Format: one
JSON document with a list of loop entries, each embedding the graph in
:mod:`repro.graph.serialization`'s format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import WorkloadError
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.workloads.loops import Loop

SUITE_FORMAT_VERSION = 1


def suite_to_dict(loops: list[Loop]) -> dict[str, Any]:
    """Serialise a loop suite to a plain dict."""
    return {
        "format": SUITE_FORMAT_VERSION,
        "loops": [
            {
                "graph": graph_to_dict(loop.graph),
                "iterations": loop.iterations,
                "invariants": loop.invariants,
                "source": loop.source,
            }
            for loop in loops
        ],
    }


def suite_from_dict(data: dict[str, Any]) -> list[Loop]:
    """Rebuild a suite serialised by :func:`suite_to_dict`."""
    version = data.get("format", SUITE_FORMAT_VERSION)
    if version != SUITE_FORMAT_VERSION:
        raise WorkloadError(f"unsupported suite format version {version}")
    loops = []
    for entry in data.get("loops", []):
        loops.append(
            Loop(
                graph=graph_from_dict(entry["graph"]),
                iterations=int(entry.get("iterations", 100)),
                invariants=int(entry.get("invariants", 0)),
                source=entry.get("source", ""),
            )
        )
    return loops


def dump_suite(loops: list[Loop], path: str | Path) -> None:
    """Write a suite to *path* as JSON."""
    Path(path).write_text(
        json.dumps(suite_to_dict(loops)) + "\n", encoding="utf-8"
    )


def load_suite(path: str | Path) -> list[Loop]:
    """Load a suite written by :func:`dump_suite`."""
    return suite_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
