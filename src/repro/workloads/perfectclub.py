"""Synthetic Perfect-Club-like loop suite (Section 4.2's population).

The paper schedules 1258 innermost DO loops extracted from the Perfect
Club Benchmark Suite with the ICTINEO compiler — an artefact we cannot
re-run (see DESIGN.md §3).  This module generates a **seeded, synthetic
population of 1258 loop bodies** whose aggregate statistics follow what
the paper and its companion report [15] describe for that suite:

* loop bodies are mostly small (median ≈ 8 operations) with a long tail
  a small-body majority with a heavy tail to ~200 operations (mixture
  distribution, see ``_loop_size``);
* roughly a quarter of the loops carry a recurrence;
* the operation mix is dominated by memory traffic and adds, with
  occasional divides and rare square roots;
* every loop reads a handful of loop invariants;
* iteration counts span two orders of magnitude and weight the "dynamic"
  statistics of Figures 12–14.

The default seed pins the population, so every experiment, test and
benchmark sees the same 1258 loops.
"""

from __future__ import annotations

import math
import random

from repro.graph.ops import FADD, FDIV, FMUL, FSQRT
from repro.workloads.loops import Loop
from repro.workloads.synthetic import GeneratorProfile, random_ddg

#: Number of loops the paper's suite contains.
DEFAULT_SUITE_SIZE = 1258

#: Fixed seed: the date of MICRO-28's proceedings.
DEFAULT_SEED = 19951128


def perfect_club_suite(
    n_loops: int = DEFAULT_SUITE_SIZE,
    seed: int = DEFAULT_SEED,
) -> list[Loop]:
    """Generate the synthetic Perfect-Club-like loop population."""
    rng = random.Random(seed)
    loops: list[Loop] = []
    for index in range(n_loops):
        size = _loop_size(rng)
        graph = random_ddg(
            rng, size, name=f"pc{index:04d}", profile=_profile_for(size)
        )
        loops.append(
            Loop(
                graph=graph,
                iterations=_iteration_count(rng, size),
                invariants=_invariant_count(rng, size),
                source="perfect-club-synthetic",
            )
        )
    return loops


def _profile_for(size: int) -> GeneratorProfile:
    """Per-size generator statistics.

    Large scientific loop bodies (unrolled/fused source loops) consume
    operands produced much earlier in the body, which is what drives
    their register pressure; the operand window therefore scales with
    the body size.  Divide/sqrt frequencies are kept low enough that the
    unpipelined units do not dominate every large loop's ResMII.
    """
    return GeneratorProfile(
        compute_mix=[
            (FADD, 4, 0.55),
            (FMUL, 4, 0.38),
            (FDIV, 17, 0.05),
            (FSQRT, 30, 0.02),
        ],
        # Scientific inner loops are memory-bound: the load/store units
        # are the ResMII bottleneck, so spill traffic costs II directly
        # (the effect Figure 14 measures).
        load_fraction=0.34,
        store_fraction=0.14,
        two_operand_probability=0.75,
        operand_window=max(6, size),
    )


def _loop_size(rng: random.Random) -> int:
    """Mixture body-size distribution: mostly small, heavy tail to 160.

    85 % of loops are ordinary small bodies (log-normal, median ~9 ops);
    15 % model the unrolled/fused scientific kernels that dominate the
    Perfect Club's execution time (uniform 40–160 ops).  The tail
    matters: the paper observes that loops with high register
    requirements account for an important share of execution time, and
    Figures 13/14 hinge on loops needing more than 32 and 64 registers
    existing in the population.
    """
    if rng.random() < 0.18:
        return rng.randint(48, 200)
    size = int(round(math.exp(rng.gauss(math.log(9.0), 0.6))))
    return max(4, min(40, size))


def _iteration_count(rng: random.Random, size: int) -> int:
    """Log-normal trip count: median ~64, clipped to [4, 5000].

    Large scientific bodies tend to iterate over big arrays, so the
    median trip count grows mildly with the body size — this correlation
    is what makes the high-pressure loops matter dynamically (Figures
    12–14 weight by execution time).
    """
    median = 64.0 * (1.0 + size / 40.0)
    count = int(round(math.exp(rng.gauss(math.log(median), 1.0))))
    return max(4, min(5000, count))


def _invariant_count(rng: random.Random, size: int) -> int:
    """Small loops read a couple of invariants, large ones many more."""
    lam = 2.0 + size / 10.0
    # Knuth's bounded Poisson sampler is overkill; a clipped geometric
    # mixture reproduces the needed spread.
    value = 0
    threshold = math.exp(-lam)
    product = rng.random()
    while product > threshold and value < 24:
        value += 1
        product *= rng.random()
    return value
