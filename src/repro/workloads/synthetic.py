"""Seeded random dependence-graph generator.

Used by the Perfect-Club-like suite (:mod:`repro.workloads.perfectclub`)
and by the property-based tests.  The generator produces valid loop bodies
by construction:

* operations are emitted in program order; intra-iteration (distance-0)
  edges always point forward, so the distance-0 subgraph is acyclic;
* recurrences are injected as *backward* edges with distance >= 1 from an
  operation to one of its (transitive) ancestors, so every circuit has a
  positive total distance;
* stores terminate value chains and produce no values.

**Seed stability is a contract.**  A ``(seed, n_ops, profile)`` triple
must reproduce the bit-identical graph on every supported Python — the
QA corpus (``tests/corpus/``), the perf baselines and the Perfect-Club
population all depend on it.  Two rules keep it true: the RNG is only
ever consumed in program order, and no draw may range over a ``set`` or
``dict`` whose iteration order is not itself deterministic (ancestor
*sets* are sorted before any choice is made from them; every other
collection is a list or an insertion-ordered dict).  The golden
fingerprints in ``tests/test_workloads.py`` enforce the contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import FADD, FDIV, FMUL, FSQRT, MEM, Operation


@dataclass
class GeneratorProfile:
    """Tunable statistics of the generated loop population."""

    #: (opclass, latency, weight) candidates for compute operations.
    compute_mix: list[tuple[str, int, float]] = field(
        default_factory=lambda: [
            (FADD, 4, 0.52),
            (FMUL, 4, 0.36),
            (FDIV, 17, 0.10),
            (FSQRT, 30, 0.02),
        ]
    )
    load_latency: int = 2
    store_latency: int = 1
    #: Fraction of operations that are loads (value sources).
    load_fraction: float = 0.30
    #: Fraction of operations that are stores (value sinks).
    store_fraction: float = 0.12
    #: Probability a compute op takes two operands instead of one.
    two_operand_probability: float = 0.65
    #: How far back an operand is drawn from (locality window).
    operand_window: int = 6
    #: Probability the loop carries at least one recurrence.
    recurrence_probability: float = 0.25
    #: Maximum extra recurrences beyond the first.
    max_extra_recurrences: int = 2
    #: Iteration distances for backward edges, with weights.
    distances: list[tuple[int, float]] = field(
        default_factory=lambda: [(1, 0.8), (2, 0.15), (3, 0.05)]
    )


def _weighted(rng: random.Random, table: list[tuple]) -> tuple:
    total = sum(entry[-1] for entry in table)
    point = rng.random() * total
    cumulative = 0.0
    for entry in table:
        cumulative += entry[-1]
        if point <= cumulative:
            return entry
    return table[-1]


def random_ddg(
    rng: random.Random,
    n_ops: int,
    name: str = "synthetic",
    profile: GeneratorProfile | None = None,
) -> DependenceGraph:
    """Generate a valid loop body with *n_ops* operations."""
    if n_ops < 2:
        raise ValueError("need at least two operations")
    profile = profile or GeneratorProfile()
    graph = DependenceGraph(name)

    producers: list[str] = []  # value-producing op names, program order
    ancestors: dict[str, set[str]] = {}

    n_loads = max(1, round(n_ops * profile.load_fraction))
    # At least one load and one compute always fit; the store count
    # yields whatever is left so the graph has exactly n_ops operations
    # (a 2-op request used to emit 3 — found by the QA campaign's
    # tiny-graph profile, pinned by tests/corpus/).
    n_stores = min(
        max(0, n_ops - n_loads - 1),
        max(1, round(n_ops * profile.store_fraction)),
    )
    n_compute = max(1, n_ops - n_loads - n_stores)

    def pick_operands(count: int) -> list[str]:
        if not producers:
            return []
        window = producers[-profile.operand_window :]
        return [rng.choice(window) for _ in range(count)]

    index = 0

    def fresh(prefix: str) -> str:
        nonlocal index
        index += 1
        return f"{prefix}{index}"

    for _ in range(n_loads):
        op = Operation(fresh("ld"), profile.load_latency, MEM)
        graph.add_operation(op)
        ancestors[op.name] = set()
        producers.append(op.name)

    for _ in range(n_compute):
        opclass, latency, _ = _weighted(rng, profile.compute_mix)
        op = Operation(fresh(opclass[:1] + "x"), latency, opclass)
        graph.add_operation(op)
        ancestors[op.name] = set()
        operand_count = (
            2 if rng.random() < profile.two_operand_probability else 1
        )
        for operand in pick_operands(operand_count):
            graph.add_edge(Edge(operand, op.name, 0))
            ancestors[op.name] |= ancestors[operand] | {operand}
        producers.append(op.name)

    for _ in range(n_stores):
        op = Operation(
            fresh("st"), profile.store_latency, MEM, produces_value=False
        )
        graph.add_operation(op)
        ancestors[op.name] = set()
        for operand in pick_operands(1):
            graph.add_edge(Edge(operand, op.name, 0))
            ancestors[op.name] |= ancestors[operand] | {operand}

    _inject_recurrences(rng, graph, ancestors, profile)
    graph.validate()
    return graph


def _inject_recurrences(
    rng: random.Random,
    graph: DependenceGraph,
    ancestors: dict[str, set[str]],
    profile: GeneratorProfile,
) -> None:
    if rng.random() >= profile.recurrence_probability:
        return
    count = 1 + rng.randint(0, profile.max_extra_recurrences)
    # Program-order candidates (ancestors is an insertion-ordered dict);
    # the shuffle below is the ONLY thing that reorders them, so the RNG
    # stream — and with it the generated graph — is seed-deterministic.
    candidates = [
        name for name, anc in ancestors.items() if anc and name in graph
    ]
    rng.shuffle(candidates)
    made = 0
    for tail in candidates:
        if made >= count:
            break
        # Sorted before rng.choice: ancestor *sets* must never leak
        # their hash-dependent iteration order into the RNG stream.
        pool = sorted(ancestors[tail])
        if not pool:
            continue
        head = rng.choice(pool)
        if not graph.operation(head).produces_value:
            continue
        distance, _ = _weighted(rng, profile.distances)
        # Backward register edge: `head` (early op) consumes the value
        # `tail` produced `distance` iterations ago — but only value
        # producers can close a register recurrence.
        if graph.operation(tail).produces_value:
            graph.add_edge(
                Edge(tail, head, distance, DependenceKind.REGISTER)
            )
        else:
            graph.add_edge(
                Edge(tail, head, distance, DependenceKind.MEMORY)
            )
        made += 1
