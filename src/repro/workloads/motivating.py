"""The paper's worked examples, reconstructed from the narrative.

Three graphs:

* :func:`motivating_example` — Section 2 / Figure 1.  The printed figure is
  garbled in the archival scan, but the scheduling walk-through pins the
  structure down uniquely (see DESIGN.md §4): seven operations A–G of
  latency 2 on four general-purpose units, where C and G are stores.  With
  this graph the library reproduces the paper's numbers exactly — 8
  registers for Top-Down, 7 for Bottom-Up, 6 for HRMS, with HRMS placing
  A@0, B@2, C@4, D@4, E@5, F@7, G@9 at II = 2.

* :func:`figure7_graph` — the recurrence-free ordering walk-through of
  Section 3.1.  The pre-ordering must emit
  ``A, C, G, H, D, J, I, E, B, F``.

* :func:`figure10_graph` — the two-recurrence walk-through of Section 3.2.
  The pre-ordering must emit
  ``A, C, D, F, I, G, J, M, H, E, B, L, K``.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.ddg import DependenceGraph
from repro.graph.ops import GENERIC


def motivating_example() -> DependenceGraph:
    """Figure 1's dependence graph (values V1, V2, V4, V5, V6).

    A produces V1 (used by B); B produces V2 (used by C and D); C is a
    store (hence no V3); D produces V4 and E produces V5 (both used by F);
    F produces V6, consumed by the store G.
    """
    builder = GraphBuilder("motivating")
    for name in "ABCDEFG":
        builder.op(
            name,
            GENERIC,
            latency=2,
            produces_value=name not in ("C", "G"),
        )
    return (
        builder.edge("A", "B")
        .edge("B", "C")
        .edge("B", "D")
        .edge("D", "F")
        .edge("E", "F")
        .edge("F", "G")
        .build()
    )


#: The node order Figure 2's Top-Down scheduler uses (program order).
MOTIVATING_PROGRAM_ORDER = ["A", "B", "C", "D", "E", "F", "G"]

#: The pre-ordering the paper derives for the motivating example.
MOTIVATING_HRMS_ORDER = ["A", "B", "C", "D", "F", "E", "G"]

#: The paper's HRMS placement (Figure 4a) at II = 2.
MOTIVATING_HRMS_SCHEDULE = {
    "A": 0,
    "B": 2,
    "C": 4,
    "D": 4,
    "E": 5,
    "F": 7,
    "G": 9,
}

#: Register requirements reported in Section 2 (Figures 2d, 3d, 4d).
MOTIVATING_REGISTERS = {"topdown": 8, "bottomup": 7, "hrms": 6}


def figure7_graph() -> DependenceGraph:
    """Section 3.1's ordering example (no recurrences)."""
    builder = GraphBuilder("figure7")
    for name in "ABCDEFGHIJ":
        builder.op(name, GENERIC, latency=1)
    return (
        builder.edge("A", "C")
        .edge("C", "G")
        .edge("C", "H")
        .edge("D", "H")
        .edge("G", "J")
        .edge("B", "J")
        .edge("I", "J")
        .edge("B", "E")
        .edge("E", "I")
        .edge("F", "I")
        .build()
    )


#: The ordering Section 3.1 derives step by step for Figure 7.
FIGURE7_ORDER = ["A", "C", "G", "H", "D", "J", "I", "E", "B", "F"]


def figure10_graph() -> DependenceGraph:
    """Section 3.2's ordering example (two recurrence subgraphs).

    Recurrence {A, C, D, F} (RecMII 4) outranks {G, J, M} (RecMII 3);
    node I connects them; H, E, B, L, K hang off the reduced hypernode.
    """
    builder = GraphBuilder("figure10")
    for name in "ABCDEFGHIJKLM":
        builder.op(name, GENERIC, latency=1)
    return (
        builder.edge("A", "C")
        .edge("C", "D")
        .edge("D", "F")
        .edge("F", "A", distance=1)
        .edge("G", "J")
        .edge("J", "M")
        .edge("M", "G", distance=1)
        .edge("D", "I")
        .edge("I", "G")
        .edge("M", "H")
        .edge("E", "H")
        .edge("B", "E")
        .edge("B", "L")
        .edge("L", "K")
        .build()
    )


#: The ordering Section 3.2 derives step by step for Figure 10.
FIGURE10_ORDER = [
    "A", "C", "D", "F", "I", "G", "J", "M", "H", "E", "B", "L", "K",
]
