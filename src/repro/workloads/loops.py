"""The Loop container: a dependence graph plus run-time metadata.

Sections 4.1/4.2 weight loops by properties a DDG alone does not carry:
how many times the loop body executes (for the "dynamic" distributions of
Figures 12–14) and how many loop *invariants* it reads (each invariant
occupies one register for the whole execution regardless of scheduling —
Figure 13 adds them to the variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.ddg import DependenceGraph


@dataclass
class Loop:
    """One innermost loop of a benchmark suite."""

    graph: DependenceGraph
    #: Number of times the loop body executes (drives dynamic weighting).
    iterations: int = 100
    #: Loop-invariant values read by the body; one register each.
    invariants: int = 0
    #: Optional provenance tag (benchmark / kernel family).
    source: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.graph.name

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(
                f"loop {self.graph.name!r}: iterations must be >= 1"
            )
        if self.invariants < 0:
            raise ValueError(
                f"loop {self.graph.name!r}: invariants must be >= 0"
            )
