"""Workloads: the paper's examples and evaluation loop suites.

* :mod:`repro.workloads.motivating` — Section 2's seven-operation example
  (reconstructed; reproduces the 8/7/6 register comparison) and the
  ordering walk-throughs of Figures 7 and 10.
* :mod:`repro.workloads.govindarajan` — a 24-kernel stand-in for the
  dependence graphs of Govindarajan et al. [8] used by Tables 1–3.
* :mod:`repro.workloads.synthetic` — seeded random DDG generator.
* :mod:`repro.workloads.perfectclub` — the 1258-loop synthetic suite that
  stands in for the Perfect Club innermost loops of Section 4.2.
* :class:`repro.workloads.loops.Loop` — a graph plus the run-time metadata
  (iteration count, loop invariants) the dynamic experiments weight by.
"""

from repro.workloads.loops import Loop
from repro.workloads.motivating import (
    figure7_graph,
    figure10_graph,
    motivating_example,
)

__all__ = [
    "Loop",
    "figure10_graph",
    "figure7_graph",
    "motivating_example",
]
