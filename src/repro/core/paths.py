"""Search_All_Paths (Section 3.1).

Given a seed set ``V'`` (the current predecessors or successors of the
hypernode, or the hypernode plus the next recurrence subgraph), return every
node lying on a directed path between two seeds.  On an acyclic graph this
is exactly::

    forward_reachable(V') ∩ backward_reachable(V')

— a node ``x`` is on some path ``u -> ... -> x -> ... -> v`` with
``u, v ∈ V'`` iff it is reachable from a seed and reaches a seed.  Seeds
are trivially included (length-0 paths).  Two linear passes give the
``O(|V| + |E|)`` bound the paper quotes.

The hypernode itself must never act as an *intermediate* node: after a few
reductions it is adjacent to most of the graph and would smuggle unrelated
nodes into the batch.  Callers therefore pass ``exclude`` (the hypernode)
whenever it is not itself a seed.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.traversal import GraphLike


def search_all_paths(
    graph: GraphLike,
    seeds: Iterable[str],
    exclude: Iterable[str] = (),
) -> set[str]:
    """Nodes on any directed path between members of *seeds*.

    ``exclude`` nodes are removed from the traversal entirely (unless they
    are seeds themselves, which would be a caller bug and raises).
    """
    seed_set = set(seeds)
    blocked = set(exclude) - seed_set
    if seed_set & set(exclude) and blocked != set(exclude):
        # A node cannot be both a seed and excluded; being a seed wins,
        # which is what the recurrence-ordering caller wants.
        pass

    forward = _reach(graph, seed_set, blocked, forward=True)
    backward = _reach(graph, seed_set, blocked, forward=False)
    return forward & backward


def _reach(
    graph: GraphLike,
    seeds: set[str],
    blocked: set[str],
    forward: bool,
) -> set[str]:
    step = graph.successors if forward else graph.predecessors
    seen = set(seeds)
    stack = list(seeds)
    while stack:
        node = stack.pop()
        for nxt in step(node):
            if nxt in seen or nxt in blocked:
                continue
            seen.add(nxt)
            stack.append(nxt)
    return seen
