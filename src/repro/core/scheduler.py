"""The HRMS scheduler (Section 3.3).

Operations are placed in the pre-ordering's sequence.  Because of the
ordering invariant, each operation (except recurrence closers) sees only
predecessors or only successors in the partial schedule:

* only predecessors — place **as soon as possible**: scan EarlyStart …
  EarlyStart+II−1;
* only successors — place **as late as possible**: scan LateStart …
  LateStart−II+1;
* both (recurrence closers) — scan EarlyStart … min(LateStart,
  EarlyStart+II−1);
* neither (the very first node of a component) — scan 0 … II−1.

The modulo constraint makes windows longer than II pointless.  If any
operation finds no slot the attempt fails and the driver retries with
II+1 — *reusing the same ordering*, the asymmetry the paper highlights
against ordering-per-II methods.

One deliberate strengthening over the paper's formulas (see DESIGN.md):
EarlyStart/LateStart are computed from the **MinDist matrix** (longest
dependence paths at the candidate II) rather than from direct edges only.
Direct-edge bounds are incomplete when a path between two recurrence
nodes runs through a not-yet-scheduled operation — the gap they leave is
II-invariant, so the paper's II+1 retry can loop forever on loops with
several overlapping recurrence subgraphs.  Transitive bounds are exact:
by the longest-path triangle inequality every window is non-empty, so
only resource conflicts can fail an attempt and the II search always
terminates.  On graphs where the direct bounds suffice (every example in
the paper, and any loop whose scheduled neighbours mediate all paths) the
two formulations place operations identically.
"""

from __future__ import annotations

from typing import Any

from repro.core.ordering import OrderingResult, hrms_order
from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.schedulers.base import (
    ModuloScheduler,
    bidirectional_attempt,
    neighbor_directed_attempt,
)


class HRMSScheduler(ModuloScheduler):
    """Hypernode Reduction Modulo Scheduling."""

    name = "hrms"

    def __init__(
        self,
        max_ii: int | None = None,
        initial_hypernode: str | None = None,
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._initial_hypernode = initial_hypernode

    def prepare(self, session: SchedulingSession) -> OrderingResult:
        return hrms_order(
            session.graph,
            mii_result=session.analysis,
            initial_hypernode=self._initial_hypernode,
        )

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        ordering: OrderingResult = context
        result = bidirectional_attempt(session, ii, ordering.order,
                                       both_down=False)
        if result is not None:
            return result
        # Fallback for overlapping recurrences: a node constrained from
        # both sides that the paper's ES-upward scan pins at its earliest
        # cycle can leave a later recurrence node an *empty* window that
        # no II increase repairs (the gap between the two bounds is
        # II-invariant).  Retrying with the two-sided windows scanned from
        # the LateStart end resolves those cases without affecting
        # recurrence-free loops, which never produce two-sided windows.
        result = bidirectional_attempt(session, ii, ordering.order,
                                       both_down=True)
        if result is not None:
            return result
        # Last resort: the paper's own direction rule.  The transitive
        # MinDist bounds give almost every operation *both* an ES and an
        # LS once a recurrence node is placed, so the directional
        # attempts above scan nearly everything ASAP — and an operation
        # whose only *scheduled direct neighbours* are successors gets
        # pinned at its transitive EarlyStart, which can freeze a later
        # recurrence closer into a one-cycle window parked on an occupied
        # row at every II (found by the QA fuzzing campaign; see
        # tests/corpus/).  Classifying the scan direction by scheduled
        # direct neighbours — Section 3.3's actual rule — while keeping
        # the transitive bounds as the window *limits* resolves those
        # loops, usually at the MII itself.  It runs only after both
        # standard attempts failed, so every previously-schedulable loop
        # keeps its bit-identical schedule.
        for closers_down, stagger in (
            (False, 0), (True, 0), (False, 1), (True, 1),
        ):
            result = neighbor_directed_attempt(
                session, ii, ordering.order,
                closers_down=closers_down, stagger=stagger,
            )
            if result is not None:
                return result
        return None

    def ordering_for(
        self, graph: DependenceGraph, machine: MachineModel
    ) -> list[str]:
        """Expose the pre-ordering (tests and the ablation study use this)."""
        return self.prepare(SchedulingSession(graph, machine)).order
