"""The HRMS scheduler (Section 3.3).

Operations are placed in the pre-ordering's sequence.  Because of the
ordering invariant, each operation (except recurrence closers) sees only
predecessors or only successors in the partial schedule:

* only predecessors — place **as soon as possible**: scan EarlyStart …
  EarlyStart+II−1;
* only successors — place **as late as possible**: scan LateStart …
  LateStart−II+1;
* both (recurrence closers) — scan EarlyStart … min(LateStart,
  EarlyStart+II−1);
* neither (the very first node of a component) — scan 0 … II−1.

The modulo constraint makes windows longer than II pointless.  If any
operation finds no slot the attempt fails and the driver retries with
II+1 — *reusing the same ordering*, the asymmetry the paper highlights
against ordering-per-II methods.

One deliberate strengthening over the paper's formulas (see DESIGN.md):
EarlyStart/LateStart are computed from the **MinDist matrix** (longest
dependence paths at the candidate II) rather than from direct edges only.
Direct-edge bounds are incomplete when a path between two recurrence
nodes runs through a not-yet-scheduled operation — the gap they leave is
II-invariant, so the paper's II+1 retry can loop forever on loops with
several overlapping recurrence subgraphs.  Transitive bounds are exact:
by the longest-path triangle inequality every window is non-empty, so
only resource conflicts can fail an attempt and the II search always
terminates.  On graphs where the direct bounds suffice (every example in
the paper, and any loop whose scheduled neighbours mediate all paths) the
two formulations place operations identically.
"""

from __future__ import annotations

from typing import Any

from repro.core.ordering import OrderingResult, hrms_order
from repro.engine.windows import StartBounds
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.machine.mrt import ModuloReservationTable
from repro.mii.analysis import MIIResult
from repro.schedulers.base import (
    ModuloScheduler,
    downward_window,
    neighbor_directed_attempt,
    scan_place,
    upward_window,
)
from repro.schedulers.mindist import mindist_matrix


class HRMSScheduler(ModuloScheduler):
    """Hypernode Reduction Modulo Scheduling."""

    name = "hrms"

    def __init__(
        self,
        max_ii: int | None = None,
        initial_hypernode: str | None = None,
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._initial_hypernode = initial_hypernode

    def prepare(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: MIIResult,
    ) -> OrderingResult:
        return hrms_order(
            graph,
            mii_result=analysis,
            initial_hypernode=self._initial_hypernode,
        )

    def attempt(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        result = self._attempt_directional(graph, machine, ii, context,
                                           both_down=False)
        if result is not None:
            return result
        # Fallback for overlapping recurrences: a node constrained from
        # both sides that the paper's ES-upward scan pins at its earliest
        # cycle can leave a later recurrence node an *empty* window that
        # no II increase repairs (the gap between the two bounds is
        # II-invariant).  Retrying with the two-sided windows scanned from
        # the LateStart end resolves those cases without affecting
        # recurrence-free loops, which never produce two-sided windows.
        result = self._attempt_directional(graph, machine, ii, context,
                                           both_down=True)
        if result is not None:
            return result
        # Last resort: the paper's own direction rule.  The transitive
        # MinDist bounds give almost every operation *both* an ES and an
        # LS once a recurrence node is placed, so the directional
        # attempts above scan nearly everything ASAP — and an operation
        # whose only *scheduled direct neighbours* are successors gets
        # pinned at its transitive EarlyStart, which can freeze a later
        # recurrence closer into a one-cycle window parked on an occupied
        # row at every II (found by the QA fuzzing campaign; see
        # tests/corpus/).  Classifying the scan direction by scheduled
        # direct neighbours — Section 3.3's actual rule — while keeping
        # the transitive bounds as the window *limits* resolves those
        # loops, usually at the MII itself.  It runs only after both
        # standard attempts failed, so every previously-schedulable loop
        # keeps its bit-identical schedule.
        ordering: OrderingResult = context
        for closers_down, stagger in (
            (False, 0), (True, 0), (False, 1), (True, 1),
        ):
            result = neighbor_directed_attempt(
                graph, machine, ii, ordering.order,
                closers_down=closers_down, stagger=stagger,
            )
            if result is not None:
                return result
        return None

    def _attempt_directional(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        ii: int,
        context: Any,
        both_down: bool,
    ) -> dict[str, int] | None:
        ordering: OrderingResult = context
        solved = mindist_matrix(graph, ii)
        if solved is None:
            return None  # II below RecMII; cannot happen from the driver
        dist, names = solved
        index = {name: i for i, name in enumerate(names)}
        bounds = StartBounds(dist)
        mrt = ModuloReservationTable(machine, ii)
        start: dict[str, int] = {}
        for name in ordering.order:
            op = graph.operation(name)
            es = bounds.early_start(index[name])
            ls = bounds.late_start(index[name])
            if es is not None and ls is None:
                window = upward_window(es, ii)
            elif ls is not None and es is None:
                window = downward_window(ls, ii)
            elif es is not None and ls is not None:
                if es > ls:
                    return None
                if both_down:
                    # Anchor the II-length scan at the LateStart end: the
                    # upward window [ES, ES+II-1] can miss the feasible
                    # region entirely when LS - ES exceeds II.
                    window = downward_window(ls, ii, es)
                else:
                    window = upward_window(es, ii, ls)
            else:
                window = upward_window(0, ii)
            cycle = scan_place(mrt, op, window)
            if cycle is None:
                return None
            start[name] = cycle
            bounds.place(index[name], cycle)
        return start

    def ordering_for(
        self, graph: DependenceGraph, machine: MachineModel
    ) -> list[str]:
        """Expose the pre-ordering (tests and the ablation study use this)."""
        from repro.mii.analysis import compute_mii

        return self.prepare(graph, machine, compute_mii(graph, machine)).order
