"""Pre-ordering of graphs without recurrence circuits (Figure 5).

Starting from the hypernode, the algorithm alternately drains the
hypernode's predecessors and successors.  Each sweep:

1. takes the current predecessor (successor) set of the hypernode,
2. widens it with every node on a path between two of its members
   (:func:`~repro.core.paths.search_all_paths`),
3. reduces the widened set into the hypernode (Figure 6), capturing the
   induced subgraph,
4. topologically sorts the captured subgraph — **PALA** (ALAP order, list
   inverted) for predecessors, **ASAP** for successors — and appends the
   result to the ordered list.

The invariant this establishes is the heart of HRMS: when the scheduler
later places a node, the partial schedule contains only that node's
predecessors or only its successors, never both (recurrence closers aside),
so the node always has a reference operation and is never pushed too early
or too late.
"""

from __future__ import annotations

from repro.core.hypernode import HypernodeGraph
from repro.core.paths import search_all_paths
from repro.graph.traversal import asap_order, pala_order


def pre_ordering(
    hgraph: HypernodeGraph,
    ordered: list[str],
    hypernode: str,
) -> list[str]:
    """Order every node of *hgraph* reachable from *hypernode*.

    *ordered* is the partial list built so far (mutated in place and also
    returned).  On return, *hgraph* has been reduced to the hypernode (for
    the nodes connected to it).
    """
    while True:
        preds = hgraph.predecessors(hypernode)
        if preds:
            batch = search_all_paths(hgraph, preds, exclude=(hypernode,))
            captured = hgraph.reduce(batch, hypernode)
            ordered.extend(pala_order(captured))

        succs = hgraph.successors(hypernode)
        if succs:
            batch = search_all_paths(hgraph, succs, exclude=(hypernode,))
            captured = hgraph.reduce(batch, hypernode)
            ordered.extend(asap_order(captured))

        if not preds and not succs:
            return ordered
