"""The complete HRMS pre-ordering driver.

Combines the pieces of Section 3: the graph is decomposed into
weakly-connected components; each component is ordered separately —
recurrence subgraphs first (by decreasing RecMII), the acyclic remainder
after — and the per-component orders are concatenated, giving priority to
the component with the most restrictive recurrence circuit.

The resulting order has two properties the scheduler relies on:

* every node appears exactly once;
* when a node is scheduled, the already-scheduled nodes among its
  neighbours are only predecessors or only successors (except recurrence
  closers), so bidirectional placement always has a reference operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hypernode import HypernodeGraph
from repro.core.recurrence_order import order_recurrences, order_with_hypernode
from repro.graph.components import connected_components
from repro.graph.ddg import DependenceGraph
from repro.mii.analysis import MIIResult, compute_mii
from repro.mii.recurrences import RecurrenceSubgraph, all_backward_edge_keys


@dataclass
class OrderingResult:
    """The pre-ordering output plus the analysis it was derived from."""

    order: list[str]
    mii: MIIResult
    #: Per-component orders, for diagnostics and tests.
    component_orders: list[list[str]] = field(default_factory=list)


def hrms_order(
    graph: DependenceGraph,
    mii_result: MIIResult | None = None,
    machine=None,
    initial_hypernode: str | None = None,
) -> OrderingResult:
    """Compute the HRMS scheduling order for *graph*.

    ``mii_result`` may be passed to reuse a previous analysis; otherwise
    ``machine`` is required to compute one.  ``initial_hypernode`` overrides
    the default starting node (the paper's footnote 1 observes the choice
    barely matters; the ablation experiment exercises this knob).
    """
    if mii_result is None:
        if machine is None:
            raise ValueError("need either mii_result or machine")
        mii_result = compute_mii(graph, machine)

    dropped = all_backward_edge_keys(mii_result.subgraphs)
    components = connected_components(graph)
    position = {name: i for i, name in enumerate(graph.node_names())}

    # Priority: most restrictive recurrence first, then program order.
    def component_priority(members: list[str]) -> tuple[int, int]:
        member_set = set(members)
        recmii = max(
            (
                s.recmii
                for s in mii_result.subgraphs
                if not s.is_trivial and set(s.nodes) <= member_set
            ),
            default=0,
        )
        return (-recmii, position[members[0]])

    ordered_components = sorted(components, key=component_priority)

    full_order: list[str] = []
    component_orders: list[list[str]] = []
    for members in ordered_components:
        member_set = set(members)
        subgraphs = [
            s
            for s in mii_result.subgraphs
            if set(s.nodes) <= member_set
        ]
        order = _order_component(
            graph, members, subgraphs, dropped, initial_hypernode
        )
        component_orders.append(order)
        full_order.extend(order)

    return OrderingResult(
        order=full_order,
        mii=mii_result,
        component_orders=component_orders,
    )


def _order_component(
    graph: DependenceGraph,
    members: list[str],
    subgraphs: list[RecurrenceSubgraph],
    dropped: set,
    initial_hypernode: str | None,
) -> list[str]:
    """Order one weakly-connected component."""
    hgraph = HypernodeGraph(graph, nodes=members, dropped_edge_keys=dropped)
    ordered: list[str] = []

    hypernode = order_recurrences(hgraph, subgraphs, ordered)
    if hypernode is None:
        # Recurrence-free component: start from its first node in program
        # order (or the caller-specified override when it lies here).
        if initial_hypernode is not None and initial_hypernode in hgraph:
            hypernode = initial_hypernode
        else:
            hypernode = hgraph.first_node
        ordered.append(hypernode)

    order_with_hypernode(hgraph, ordered, hypernode)
    return ordered
