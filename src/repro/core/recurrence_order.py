"""Pre-ordering of graphs with recurrence circuits (Figure 9, Section 3.2).

Recurrence subgraphs are processed by decreasing RecMII so the most
restrictive circuit is never stretched by nodes ordered before it:

1. The first subgraph (backward edges already removed from the working
   graph) is ordered with the acyclic algorithm, its first node becoming
   the component's hypernode, and then reduced into the hypernode.
2. Every following subgraph is reached through
   ``Search_All_Paths({hypernode} ∪ subgraph)`` so the connector nodes are
   ordered together with the circuit, then the whole batch is reduced.
   When no path exists, a *virtual edge* from the hypernode to the
   subgraph's first node is added, making the subgraph an (artificial)
   successor — the paper reduces an arbitrary node into the hypernode
   instead; the virtual edge has the same connective effect while keeping
   every node in the ordering (see DESIGN.md).
3. What remains is an acyclic graph with a single hypernode; the caller
   finishes it with the recurrence-free algorithm.

Cross-subgraph simplification can leave a subgraph's surviving node list
weakly disconnected; :func:`order_with_hypernode` therefore keeps adding
virtual edges until the batch is fully ordered, guaranteeing every node is
emitted exactly once.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.hypernode import HypernodeGraph
from repro.core.paths import search_all_paths
from repro.core.preorder import pre_ordering
from repro.graph.traversal import backward_reachable, forward_reachable
from repro.mii.recurrences import RecurrenceSubgraph


def order_with_hypernode(
    hgraph: HypernodeGraph,
    ordered: list[str],
    hypernode: str,
) -> None:
    """Run :func:`pre_ordering` until *hgraph* is reduced to the hypernode.

    Nodes with no path to or from the hypernode (possible after
    simplification or in stray acyclic fragments) are attached with a
    virtual edge and swept again, so the routine always terminates with
    every node ordered.
    """
    while True:
        pre_ordering(hgraph, ordered, hypernode)
        leftovers = [n for n in hgraph.node_names() if n != hypernode]
        if not leftovers:
            return
        hgraph.add_virtual_edge(hypernode, leftovers[0])


def order_recurrences(
    hgraph: HypernodeGraph,
    subgraphs: list[RecurrenceSubgraph],
    ordered: list[str],
) -> str | None:
    """Order all recurrence nodes of *hgraph*; returns the hypernode name.

    *subgraphs* must be sorted by decreasing RecMII with simplified node
    lists (as produced by :func:`repro.mii.find_recurrence_subgraphs`) and
    restricted to this working graph's component.  Returns ``None`` when no
    non-trivial recurrence exists (the caller then starts from the
    component's first node).
    """
    pending = [
        s
        for s in subgraphs
        if not s.is_trivial
        and any(name in hgraph for name in s.ordering_nodes)
    ]
    if not pending:
        return None

    first, *rest = pending
    seeds = [name for name in first.ordering_nodes if name in hgraph]
    inner = _clone_induced(hgraph, seeds)
    hypernode = inner.first_node
    ordered.append(hypernode)
    order_with_hypernode(inner, ordered, hypernode)
    hgraph.reduce([s for s in seeds if s != hypernode], hypernode)

    for subgraph in rest:
        seeds = [name for name in subgraph.ordering_nodes if name in hgraph]
        if not seeds:
            continue
        if not _connected(hgraph, hypernode, seeds):
            hgraph.add_virtual_edge(hypernode, seeds[0])
        batch_nodes = search_all_paths(hgraph, {hypernode, *seeds})
        inner = _clone_induced(hgraph, batch_nodes)
        order_with_hypernode(inner, ordered, hypernode)
        hgraph.reduce(batch_nodes - {hypernode}, hypernode)

    return hypernode


def _connected(
    hgraph: HypernodeGraph, hypernode: str, seeds: list[str]
) -> bool:
    """Is any seed on a directed path from or to the hypernode?"""
    forward = forward_reachable(hgraph, [hypernode])
    if any(seed in forward for seed in seeds):
        return True
    backward = backward_reachable(hgraph, [hypernode])
    return any(seed in backward for seed in seeds)


def _clone_induced(
    hgraph: HypernodeGraph, names: Iterable[str]
) -> HypernodeGraph:
    """Clone the induced subgraph over *names* as a mutable working graph.

    Adjacency mirrors the *current* working graph (which may contain
    virtual edges and earlier reductions), not the base dependence graph.
    """
    view = hgraph.subview(names)
    clone = HypernodeGraph(hgraph._base, nodes=view.node_names())
    for name in view.node_names():
        clone._succ[name] = set(view.successors(name))
        clone._pred[name] = set(view.predecessors(name))
    return clone
