"""The mutable working graph used by the pre-ordering phase.

:class:`HypernodeGraph` is a light adjacency-set view over a
:class:`~repro.graph.ddg.DependenceGraph`.  It supports the one rewriting
operation the paper's Figure 6 defines — **hypernode reduction** — plus the
virtual edges Section 3.2 needs to connect otherwise-unreachable recurrence
subgraphs.

Edge distances and kinds are irrelevant here: ordering happens on the
backward-edge-free (acyclic) graph, and the topological sorts only need
adjacency plus node latencies (read through to the base graph).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import UnknownOperationError
from repro.graph.ddg import DependenceGraph
from repro.graph.ops import Operation


class HypernodeGraph:
    """Adjacency view supporting hypernode reduction.

    Parameters
    ----------
    base:
        The original dependence graph (for latencies and program order).
    nodes:
        Subset of base nodes this working graph covers.
    dropped_edge_keys:
        Keys of edges to omit (the recurrence backward edges).
    """

    def __init__(
        self,
        base: DependenceGraph,
        nodes: Iterable[str] | None = None,
        dropped_edge_keys: set[tuple[str, str, int, str]] | None = None,
    ) -> None:
        self._base = base
        keep = set(base.node_names() if nodes is None else nodes)
        self._position = {
            name: i for i, name in enumerate(base.node_names())
        }
        self._nodes: set[str] = keep
        dropped = dropped_edge_keys or set()
        self._succ: dict[str, set[str]] = {name: set() for name in keep}
        self._pred: dict[str, set[str]] = {name: set() for name in keep}
        for edge in base.edges():
            if edge.key in dropped:
                continue
            if edge.src in keep and edge.dst in keep and edge.src != edge.dst:
                self._succ[edge.src].add(edge.dst)
                self._pred[edge.dst].add(edge.src)

    # ------------------------------------------------------------------
    # Graph protocol (shared with DependenceGraph)
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node_names(self) -> list[str]:
        """Remaining nodes in program order."""
        return sorted(self._nodes, key=self._position.__getitem__)

    def predecessors(self, name: str) -> list[str]:
        self._check(name)
        return sorted(self._pred[name], key=self._position.__getitem__)

    def successors(self, name: str) -> list[str]:
        self._check(name)
        return sorted(self._succ[name], key=self._position.__getitem__)

    def operation(self, name: str) -> Operation:
        return self._base.operation(name)

    @property
    def first_node(self) -> str:
        names = self.node_names()
        if not names:
            raise UnknownOperationError("<empty hypernode graph>")
        return names[0]

    def _check(self, name: str) -> None:
        if name not in self._nodes:
            raise UnknownOperationError(name)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_virtual_edge(self, src: str, dst: str) -> None:
        """Connect *src* -> *dst* (Section 3.2's disconnected-recurrence fix).

        Virtual edges exist only in the working graph; the scheduler never
        sees them, so they bias the ordering without constraining placement.
        """
        self._check(src)
        self._check(dst)
        if src == dst:
            return
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def subview(self, names: Iterable[str]) -> "_SubView":
        """Read-only induced subgraph over *names* (for topological sorts)."""
        keep = set(names)
        for name in keep:
            self._check(name)
        return _SubView(self, keep)

    def reduce(self, names: Iterable[str], hypernode: str) -> "_SubView":
        """Figure 6: reduce *names* into *hypernode*.

        Returns the induced subgraph over *names* (captured before
        deletion) so the caller can topologically sort the batch.  In the
        working graph, edges among ``names + {hypernode}`` disappear and
        edges crossing the boundary are re-attached to the hypernode.
        """
        self._check(hypernode)
        batch = set(names)
        batch.discard(hypernode)
        for name in batch:
            self._check(name)
        captured = _SubView(self, set(batch))

        merged = batch | {hypernode}
        for name in batch:
            for succ in self._succ[name]:
                self._pred[succ].discard(name)
                if succ not in merged:
                    self._succ[hypernode].add(succ)
                    self._pred[succ].add(hypernode)
            for pred in self._pred[name]:
                self._succ[pred].discard(name)
                if pred not in merged:
                    self._pred[hypernode].add(pred)
                    self._succ[pred].add(hypernode)
            del self._succ[name]
            del self._pred[name]
            self._nodes.discard(name)
        # The reduction may have created h -> h artefacts; drop them.
        self._succ[hypernode].discard(hypernode)
        self._pred[hypernode].discard(hypernode)
        return captured


class _SubView:
    """Frozen induced subgraph of a :class:`HypernodeGraph`.

    Implements the traversal protocol so ASAP/ALAP/PALA sorts apply
    directly.  Adjacency is copied at construction time, so later
    reductions of the parent do not disturb it.
    """

    def __init__(self, parent: HypernodeGraph, keep: set[str]) -> None:
        self._position = parent._position
        self._nodes = set(keep)
        self._succ = {
            name: {s for s in parent._succ[name] if s in keep}
            for name in keep
        }
        self._pred = {
            name: {p for p in parent._pred[name] if p in keep}
            for name in keep
        }
        self._base = parent._base

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node_names(self) -> list[str]:
        return sorted(self._nodes, key=self._position.__getitem__)

    def predecessors(self, name: str) -> list[str]:
        return sorted(self._pred[name], key=self._position.__getitem__)

    def successors(self, name: str) -> list[str]:
        return sorted(self._succ[name], key=self._position.__getitem__)

    def operation(self, name: str) -> Operation:
        return self._base.operation(name)
