"""HRMS — the paper's primary contribution.

The algorithm splits scheduling into two phases (Section 3):

1. A **pre-ordering** phase (:mod:`repro.core.preorder`,
   :mod:`repro.core.recurrence_order`, driven by
   :func:`repro.core.ordering.hrms_order`) that emits the operations in an
   order guaranteeing each one — except recurrence closers — sees only
   previously-scheduled predecessors *or* only previously-scheduled
   successors.
2. A **scheduling** phase (:mod:`repro.core.scheduler`) that places each
   operation as soon as possible when its scheduled neighbours are
   predecessors and as late as possible when they are successors, on a
   shared modulo reservation table, retrying with ``II + 1`` when a slot
   cannot be found.  The ordering is computed once per loop regardless of
   how many II values are attempted.
"""

from repro.core.hypernode import HypernodeGraph
from repro.core.ordering import hrms_order
from repro.core.paths import search_all_paths
from repro.core.preorder import pre_ordering
from repro.core.scheduler import HRMSScheduler

__all__ = [
    "HRMSScheduler",
    "HypernodeGraph",
    "hrms_order",
    "pre_ordering",
    "search_all_paths",
]
