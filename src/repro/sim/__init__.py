"""Kernel simulator: executes a modulo schedule cycle by cycle.

Used to cross-validate the analytical machinery: the simulator replays N
overlapped iterations, checks that every consumer reads a value its
producer has finished computing, and measures the peak number of
simultaneously-live values in steady state — which must equal the
closed-form MaxLive of :mod:`repro.schedule.maxlive`.
"""

from repro.sim.simulator import SimulationReport, simulate

__all__ = ["SimulationReport", "simulate"]
