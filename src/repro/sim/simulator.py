"""Cycle-accurate replay of a software-pipelined schedule.

The simulator expands a modulo schedule over *iterations* overlapped loop
iterations and walks the event list:

* every operation instance issues at ``start(op) + i * II``;
* a register consumer of edge ``(u, v, delta)`` in iteration ``i`` reads
  the value ``(u, i - delta)`` — the read must occur at or after the
  producing instance's completion (issue + latency), otherwise the
  schedule is semantically broken (this re-derives the dependence check
  of :mod:`repro.schedule.verify` by execution rather than algebra);
* a value instance becomes live at its producer's issue and dies at its
  last reader's issue; the simulator tracks the live set per cycle.

``peak_live_steady`` — the maximum live count across the steady-state
window — must equal the closed-form MaxLive, which the test-suite asserts
on every workload family.

The steady-state window excludes the pipeline *fill* (the first
iterations, where not every overlapped stage is populated yet) and the
*drain* (the last iterations, whose loop-carried readers fall beyond the
simulated horizon and would truncate lifetimes).  Both margins span
``stage_count + max edge distance`` iterations, so a run needs at least
:func:`minimum_iterations` of them to contain a full steady kernel
window; ``simulate`` extends short runs automatically (or rejects them
when ``auto_extend=False``), instead of silently reporting the peak of
an empty window as zero the way a fixed default iteration count would
on schedules whose length spans many IIs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleVerificationError
from repro.schedule.schedule import Schedule


@dataclass
class SimulationReport:
    """What one simulated run observed."""

    iterations: int
    total_cycles: int
    peak_live: int
    peak_live_steady: int
    reads_checked: int
    #: absolute-cycle half-open window ``[lo, hi)`` that was treated as
    #: steady state (``hi - lo`` is a positive multiple of II).
    steady_window: tuple[int, int]
    #: live-value count per absolute cycle (diagnostic; empty when the
    #: caller disabled tracing).
    live_trace: list[int]


def _warm_margin(schedule: Schedule) -> int:
    """Iterations a steady window must keep clear of either horizon.

    One iteration's issues span ``stage_count`` stages, and a value can
    stay live another ``max(delta)`` iterations waiting for its most
    distant loop-carried reader — so live counts are only guaranteed
    steady once that many iterations have filled (and, symmetrically,
    while that many iterations are still left to drain).
    """
    max_distance = max(
        (edge.distance for edge in schedule.graph.edges()), default=0
    )
    return schedule.stage_count + max_distance


def minimum_iterations(schedule: Schedule) -> int:
    """Fewest overlapped iterations whose simulation contains a full
    steady-state kernel window (one whole II of cycles)."""
    return 2 * _warm_margin(schedule)


def simulate(
    schedule: Schedule,
    iterations: int = 20,
    check_reads: bool = True,
    keep_trace: bool = False,
    auto_extend: bool = True,
) -> SimulationReport:
    """Replay *schedule* for *iterations* overlapped iterations.

    When *iterations* is too small for a steady-state window to exist
    (fewer than :func:`minimum_iterations`), the run is extended to
    that minimum — or rejected with :class:`ValueError` when
    ``auto_extend=False``, for callers that need the requested horizon
    taken literally.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    needed = minimum_iterations(schedule)
    if iterations < needed:
        if not auto_extend:
            raise ValueError(
                f"{schedule.graph.name}: {iterations} iterations cannot "
                f"contain a steady-state window — the schedule spans "
                f"{schedule.stage_count} stage(s) and needs at least "
                f"{needed} (pass auto_extend=True to extend)"
            )
        iterations = needed
    graph = schedule.graph
    ii = schedule.ii

    def issue(name: str, iteration: int) -> int:
        return schedule.issue_cycle(name) + iteration * ii

    reads_checked = 0
    # (producer, iteration) -> last read cycle
    last_read: dict[tuple[str, int], int] = {}
    for op in graph.operations():
        if not op.produces_value:
            continue
        for i in range(iterations):
            last_read[(op.name, i)] = issue(op.name, i)

    for op in graph.operations():
        for consumer, distance in graph.value_consumers(op.name):
            for i in range(iterations):
                # Iteration i reads the instance produced `distance`
                # iterations earlier (self-dependences included).
                src_iter = i - distance
                if src_iter < 0:
                    continue  # fed by pre-loop live-in, not simulated
                read_cycle = issue(consumer, i)
                ready = issue(op.name, src_iter) + op.latency
                if check_reads and read_cycle < ready:
                    raise ScheduleVerificationError(
                        f"{graph.name}: {consumer} (iter {i}) reads "
                        f"{op.name} (iter {src_iter}) at cycle "
                        f"{read_cycle}, before it completes at {ready}"
                    )
                reads_checked += 1
                key = (op.name, src_iter)
                if key in last_read:
                    last_read[key] = max(last_read[key], read_cycle)

    # Live-range sweep.
    total_cycles = max(
        (
            issue(op.name, iterations - 1) + op.latency
            for op in graph.operations()
        ),
        default=0,
    )
    deltas = [0] * (total_cycles + 2)
    for (producer, iteration), end in last_read.items():
        start = issue(producer, iteration)
        if end > start:
            deltas[start] += 1
            deltas[end] -= 1

    live = 0
    trace: list[int] = []
    peak = 0
    peak_steady = 0
    margin = _warm_margin(schedule)
    steady_lo = (margin - 1) * ii
    steady_hi = (iterations - margin) * ii
    for cycle in range(total_cycles + 1):
        live += deltas[cycle]
        if keep_trace:
            trace.append(live)
        peak = max(peak, live)
        if steady_lo <= cycle < steady_hi:
            peak_steady = max(peak_steady, live)

    return SimulationReport(
        iterations=iterations,
        total_cycles=total_cycles,
        peak_live=peak,
        peak_live_steady=peak_steady,
        reads_checked=reads_checked,
        steady_window=(steady_lo, steady_hi),
        live_trace=trace,
    )
