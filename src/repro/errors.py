"""Exception hierarchy for the HRMS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A dependence graph is malformed or an operation on it is invalid."""


class DuplicateOperationError(GraphError):
    """An operation name was added to a graph twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"operation {name!r} already exists in the graph")
        self.name = name


class UnknownOperationError(GraphError):
    """An edge or query referenced an operation not present in the graph."""

    def __init__(self, name: str) -> None:
        super().__init__(f"operation {name!r} is not in the graph")
        self.name = name


class CyclicGraphError(GraphError):
    """An algorithm that requires an acyclic graph was handed a cycle."""


class ZeroDistanceCycleError(GraphError):
    """The graph contains a dependence cycle whose total distance is zero.

    Such a loop body is impossible to execute (an operation would depend on
    itself within the same iteration), so it is rejected at validation time.
    """


class MachineError(ReproError):
    """A machine model description is invalid."""


class UnknownResourceError(MachineError):
    """An operation requests a functional-unit class the machine lacks."""

    def __init__(self, resource: str) -> None:
        super().__init__(f"machine has no functional-unit class {resource!r}")
        self.resource = resource


class SchedulingError(ReproError):
    """A scheduler failed to produce a valid schedule."""


class IterationLimitError(SchedulingError):
    """The II search exceeded its upper bound without finding a schedule."""

    def __init__(self, ii_limit: int) -> None:
        super().__init__(
            f"no feasible schedule found for any II up to {ii_limit}"
        )
        self.ii_limit = ii_limit


class ScheduleVerificationError(ReproError):
    """A produced schedule violates a dependence or resource constraint."""


class AllocationError(ReproError):
    """Register allocation could not satisfy the request."""


class SpillError(ReproError):
    """Spill insertion failed to bring register pressure under the budget."""


class SolverError(SchedulingError):
    """The ILP backend (SPILP) failed or timed out."""


class SolverTimeoutError(SolverError):
    """The MILP hit its time limit before finding any incumbent.

    Distinct from :class:`SolverError` so callers can tell "the budget
    ran out — inconclusive" apart from "the solver failed"; the QA
    campaign counts the former as a skip, not an oracle failure.
    """


class WorkloadError(ReproError):
    """A workload definition or generator was misused."""


class ServiceError(ReproError):
    """Base class for errors raised by the scheduling service layer."""


class ArtifactError(ServiceError):
    """A stored artifact is unreadable or has an unsupported schema."""


class JobError(ServiceError):
    """A job request is malformed or references unknown entities."""


class DeadlineExceededError(ServiceError):
    """A job ran past its per-request deadline and was cancelled.

    Raised cooperatively (the scheduler's II search polls
    :func:`repro.cancel.check` between attempts), so a timed-out job
    stops at the next attempt boundary rather than mid-placement.
    Settles the job in the distinct ``timeout`` state — retrying cannot
    help, but the failure is the budget's fault, not the request's.
    """


class QueueFullError(ServiceError):
    """The job queue is at its configured depth cap (backpressure).

    Mapped to HTTP 429 + ``Retry-After`` by the API layer so clients
    shed load instead of deepening an already-saturated queue.
    """


class FrontendError(ReproError):
    """Base class for errors raised by the loop-language front end."""


class LexError(FrontendError):
    """The source text contains a character sequence that is not a token."""


class ParseError(FrontendError):
    """The token stream does not match the loop-language grammar."""


class SemanticError(FrontendError):
    """The program is grammatical but violates a language rule."""
