"""Incremental MinDist across an upward II sweep.

The driver's II search solves MinDist at ``mii, mii+1, …`` — a fresh
O(n³) Floyd–Warshall per candidate even though the edge weights are an
affine function of the II (``W(II) = L - II*Δ`` per edge).  Every
MinDist entry is therefore the upper envelope of lines with slope
``-Δ(path)``: moving from II to II+1 shifts the value of *every* path
down by exactly its distance sum.  :class:`MinDistSweep` exploits that
structure:

* the first solve of a sweep is the plain vectorized Floyd–Warshall
  (identical cost to the memoized solver — single-attempt searches pay
  nothing);
* the first *advance* (a request for ``base+1``) runs one
  slope-augmented Floyd–Warshall over the lexicographic
  ``(max value, min slope)`` semiring, recording for every pair the
  distance sum ``S`` of a value-maximising path;
* every later advance is O(n²) + O(n·|E|): the candidate matrix is
  ``C = D - S`` (each entry the genuine value of a known path at the
  new II, hence a pointwise lower bound on the true closure), verified
  exact by checking that no single edge and no edge relaxation
  improves any entry — if ``C`` dominates every edge relaxation it
  dominates every walk, so a verified ``C`` *is* the closure,
  bit-identical to a fresh solve by construction;
* any verification miss (slopes can go stale after repeated shifts)
  falls back to a fresh slope-augmented solve and re-bases the sweep —
  counted, never silent.

The sweep is lock-guarded and memoizes recent IIs, so concurrent
portfolio members racing the same loop share one advancing frontier
instead of each re-solving the matrix ladder.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.engine.mindist import (
    NO_PATH,
    _NO_PATH_CUTOFF,
    MinDistSolver,
    _factorise,
    graph_fingerprint,
)
from repro.graph.ddg import DependenceGraph

#: Matrices memoized per sweep beyond the advancing base (HRMS's second
#: directional pass and a lagging portfolio member are re-hits; a full
#: replay re-solves).
_DEFAULT_MEMO_ENTRIES = 8

#: Cache-miss sentinel (``None`` is a valid memo value: infeasible II).
_MISSING = object()


class SweepCrossCheckError(AssertionError):
    """An incremental advance disagreed with a fresh solve.

    Only raised in cross-check mode; the verification step makes this
    impossible unless the sweep itself is buggy, which is exactly what
    the hook exists to surface in QA runs.
    """


class MinDistSweep:
    """Sweeping MinDist state for one graph.

    ``solve(ii)`` matches :meth:`MinDistSolver.solve`'s contract —
    ``(dist, names)`` read-only, or ``None`` for an infeasible II — but
    consecutive IIs are advanced incrementally instead of re-solved.

    ``incremental=False`` disables the advance path (every miss is a
    fresh plain solve); the ``engine_sweep`` perf tier uses it as the
    like-for-like baseline.  ``cross_check=True`` re-solves after every
    advance and asserts element-wise equality (QA hook).
    """

    def __init__(
        self,
        graph: DependenceGraph,
        *,
        incremental: bool = True,
        cross_check: bool = False,
        memo_entries: int = _DEFAULT_MEMO_ENTRIES,
    ) -> None:
        self._graph = graph
        self._incremental = incremental
        self._cross_check = cross_check
        self._memo_entries = max(1, memo_entries)
        self._lock = threading.Lock()
        self._fingerprint = graph_fingerprint(graph)
        self._factors = _factorise(graph, self._fingerprint)
        #: II -> (dist, names) | None, LRU oldest-first.
        self._memo: "OrderedDict[int, tuple[np.ndarray, list[str]] | None]" = (
            OrderedDict()
        )
        self._base_ii: int | None = None
        self._base_dist: np.ndarray | None = None
        self._slope: np.ndarray | None = None
        self._reach: np.ndarray | None = None
        self.fresh_solves = 0
        self.incremental_steps = 0
        self.fallbacks = 0
        self.memo_hits = 0

    # ------------------------------------------------------------------
    def solve(
        self, ii: int
    ) -> tuple[np.ndarray, list[str]] | None:
        """MinDist at *ii* — memoized, advanced incrementally when the
        request extends the current sweep by one II."""
        with self._lock:
            self._check_fingerprint()
            cached = self._memo.get(ii, _MISSING)
            if cached is not _MISSING:
                self.memo_hits += 1
                self._memo.move_to_end(ii)
                return cached
            result = self._solve_locked(ii)
            self._memo[ii] = result
            while len(self._memo) > self._memo_entries:
                self._memo.popitem(last=False)
            return result

    def stats(self) -> dict[str, int]:
        """Counters for the perf tier and the QA fallback tests."""
        return {
            "fresh_solves": self.fresh_solves,
            "incremental_steps": self.incremental_steps,
            "fallbacks": self.fallbacks,
            "memo_hits": self.memo_hits,
        }

    # ------------------------------------------------------------------
    def _check_fingerprint(self) -> None:
        fingerprint = graph_fingerprint(self._graph)
        if fingerprint != self._fingerprint:
            # The graph mutated under the sweep: every derived state is
            # stale.  Match MinDistSolver's semantics and start over.
            self._fingerprint = fingerprint
            self._factors = _factorise(self._graph, fingerprint)
            self._memo.clear()
            self._base_ii = None
            self._base_dist = None
            self._slope = None
            self._reach = None

    def _solve_locked(
        self, ii: int
    ) -> tuple[np.ndarray, list[str]] | None:
        factors = self._factors
        if factors.self_lat.size and np.any(
            factors.self_lat - factors.self_delta * ii > 0
        ):
            return None  # self-dependence violated: no matrix exists
        if (
            self._incremental
            and self._base_ii is not None
            and ii == self._base_ii + 1
        ):
            if self._slope is None:
                # First advance of the sweep: pay the one slope-augmented
                # solve that makes every later step O(n²).
                return self._fresh(ii, with_slopes=True)
            cand = self._advance(ii)
            if cand is not None:
                self.incremental_steps += 1
                if self._cross_check:
                    self._assert_matches_fresh(ii, cand)
                return cand, factors.names
            self.fallbacks += 1
            return self._fresh(ii, with_slopes=True)
        return self._fresh(ii, with_slopes=False)

    # ------------------------------------------------------------------
    def _fresh(
        self, ii: int, with_slopes: bool
    ) -> tuple[np.ndarray, list[str]] | None:
        self.fresh_solves += 1
        factors = self._factors
        if with_slopes:
            solved = self._solve_with_slopes(ii)
            if solved is None:
                return None
            dist, slope = solved
            dist.setflags(write=False)
            self._adopt(ii, dist, slope)
            return dist, factors.names
        result = MinDistSolver._solve_uncached(factors, ii)
        if result is None:
            return None
        if self._base_ii is None or ii >= self._base_ii:
            self._adopt(ii, result[0], None)
        return result

    def _adopt(
        self, ii: int, dist: np.ndarray, slope: np.ndarray | None
    ) -> None:
        self._base_ii = ii
        self._base_dist = dist
        self._slope = slope
        if self._reach is None:
            # Reachability is II-invariant: paths never appear or vanish
            # as the II grows, only their values shift.
            self._reach = dist > _NO_PATH_CUTOFF

    def _advance(self, ii: int) -> np.ndarray | None:
        """``C = D - S`` shifted candidate, verified exact; ``None``
        sends the caller to the fresh-solve fallback."""
        base = self._base_dist
        slope = self._slope
        reach = self._reach
        factors = self._factors
        cand = np.where(reach, base - slope, np.int64(NO_PATH))
        if factors.src.size:
            weights = factors.lat - factors.delta * ii
            # A single edge is itself a path: the shifted candidate must
            # dominate every direct edge (rows that reach nothing are
            # not covered by the relaxation pass below).
            if np.any(weights > cand[factors.src, factors.dst]):
                return None
            # One edge-relaxation pass over every row: if no relaxation
            # improves any entry, C dominates every walk by induction on
            # path length — and every entry is a genuine path value, so
            # C is exactly the closure.
            lhs = cand[:, factors.src] + weights[None, :]
            if np.any(
                (lhs > cand[:, factors.dst]) & reach[:, factors.src]
            ):
                return None
        if np.any(np.diag(cand) > 0):
            # Cannot happen on an upward sweep (feasibility is monotone
            # in the II) — defensive: report infeasible, keep the base.
            return None
        cand.setflags(write=False)
        self._base_ii = ii
        self._base_dist = cand
        return cand

    def _assert_matches_fresh(self, ii: int, cand: np.ndarray) -> None:
        fresh = MinDistSolver._solve_uncached(self._factors, ii)
        if fresh is None or not np.array_equal(cand, fresh[0]):
            raise SweepCrossCheckError(
                f"incremental MinDist advance diverged from the fresh "
                f"solve at II={ii} for graph {self._graph.name!r}"
            )

    # ------------------------------------------------------------------
    def _solve_with_slopes(
        self, ii: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Floyd–Warshall over the lexicographic ``(max value, min
        slope)`` semiring.

        The slope of a path is its distance sum — exactly how much the
        path's value drops per unit of II.  Selecting the *minimum*
        slope among value-maximising paths keeps ``D - S`` the best
        possible lower bound at II+1 (the maximiser that decays
        slowest), which is what lets the shifted candidate stay exact
        across long sweeps.
        """
        factors = self._factors
        n = len(factors.names)
        dist = np.full((n, n), NO_PATH, dtype=np.int64)
        slope = np.zeros((n, n), dtype=np.int64)
        if factors.src.size:
            weights = factors.lat - factors.delta * ii
            np.maximum.at(dist, (factors.src, factors.dst), weights)
            # Min distance among the value-maximising parallel edges.
            big = np.iinfo(np.int64).max
            seed = np.full((n, n), big, dtype=np.int64)
            best = weights == dist[factors.src, factors.dst]
            np.minimum.at(
                seed,
                (factors.src[best], factors.dst[best]),
                factors.delta[best],
            )
            slope = np.where(seed == big, np.int64(0), seed)

        for k in range(n):
            via = dist[:, k, None] + dist[None, k, :]
            via_s = slope[:, k, None] + slope[None, k, :]
            better = via > dist
            np.copyto(dist, via, where=better)
            np.copyto(slope, via_s, where=better)
            # Equal-value paths through k with a smaller slope win the
            # tie (genuine paths only — saturated sums are below the
            # cutoff and never tie a real value).
            tie = (via == dist) & (via_s < slope) & (via > _NO_PATH_CUTOFF)
            np.copyto(slope, via_s, where=tie)
            bad = dist < _NO_PATH_CUTOFF
            if bad.any():
                dist[bad] = NO_PATH
                slope[bad] = 0

        if np.any(np.diag(dist) > 0):
            return None
        return dist, slope
