"""The scheduling-engine performance layer.

Every modulo scheduler in the library leans on the same two geometric
primitives: the all-pairs MinDist matrix (longest dependence distances at
a candidate II) and the EarlyStart/LateStart windows it induces over a
partial schedule.  The seed implementation recomputed both from scratch
inside every II attempt; this package factors the II-independent
structure out once per graph and keeps the per-II work vectorized:

* :class:`~repro.engine.mindist.MinDistSolver` — factors a graph into
  per-edge index/latency/distance arrays, assembles ``W(II) = L - II*Δ``
  vectorized, runs the Floyd–Warshall sweep with NO_PATH saturation, and
  memoizes ``(graph, II) -> (dist, names)`` (including infeasible ``None``
  results) so the driver's II+1 retries and the two-pass HRMS attempt hit
  the cache instead of re-solving.
* :class:`~repro.engine.sweep.MinDistSweep` — the II-sweep solver: it
  materialises MinDist once at the search's base II and advances to each
  successive II with an O(n²) shift of the (value, slope) closure plus an
  O(n·|E|) exactness verification, falling back to a fresh Floyd–Warshall
  solve whenever the shifted matrix cannot be proven exact.  Results are
  bit-identical to fresh solves by construction.
* :class:`~repro.engine.session.SchedulingSession` — one object per
  (graph, machine) pair owning the MII analysis, the sweep, and the
  per-thread attempt scratch (StartBounds, reservation tables).
  :class:`~repro.engine.session.SessionCache` maps request identities
  onto live sessions so batch submissions and portfolio races share
  them.
* :class:`~repro.engine.windows.StartBounds` — incremental, fully
  vectorized transitive EarlyStart/LateStart bounds: one O(n) NumPy
  update per placement instead of an O(n) Python loop per *query*.

The cached matrices are returned read-only and shared between callers;
treat them as immutable.
"""

from repro.engine.mindist import (
    NO_PATH,
    MinDistSolver,
    cyclic_asap,
    default_solver,
    fingerprint_digest,
    graph_fingerprint,
    mindist_matrix,
    warm_start,
)
from repro.engine.session import (
    SchedulingSession,
    SessionCache,
    session_for,
    shared_session_cache,
)
from repro.engine.sweep import MinDistSweep, SweepCrossCheckError
from repro.engine.windows import StartBounds

__all__ = [
    "NO_PATH",
    "MinDistSolver",
    "MinDistSweep",
    "SchedulingSession",
    "SessionCache",
    "StartBounds",
    "SweepCrossCheckError",
    "cyclic_asap",
    "default_solver",
    "fingerprint_digest",
    "graph_fingerprint",
    "mindist_matrix",
    "session_for",
    "shared_session_cache",
    "warm_start",
]
