"""Per-(graph, machine) scheduling sessions.

A :class:`SchedulingSession` is the engine's unit of reuse: one object
per (graph, machine) pair owning everything the II search derives from
that pair — the MII analysis (computed once, shared), the sweeping
MinDist state (:class:`~repro.engine.sweep.MinDistSweep`), and the
per-attempt scratch structures (StartBounds, the modulo reservation
table) that used to be rebuilt from scratch inside every attempt.

The split of responsibilities is deliberate:

* **session-wide, lock-guarded** — the MII analysis and the MinDist
  sweep.  Portfolio members race the same loop from several threads;
  they share one analysis and one advancing matrix frontier.
* **per-thread scratch** — StartBounds and MRT instances.  Both are
  mutated during an attempt, so concurrent searches must never share
  one; each thread keeps its latest and resets it in place when the
  next attempt asks for the same II/matrix.

:class:`SessionCache` maps (graph fingerprint digest, machine wire
form) onto live sessions with LRU eviction — the service executor keys
every request through one, which is what turns a ``POST /v1/batch`` of
same-graph requests into one shared MII analysis and one shared sweep
across scheduler members and portfolio races.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.mindist import fingerprint_digest
from repro.engine.sweep import MinDistSweep
from repro.engine.windows import StartBounds
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.machine.mrt import ModuloReservationTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mii.analysis import MIIResult

#: Live sessions the shared process-wide cache keeps.
_DEFAULT_MAX_SESSIONS = 64


class SchedulingSession:
    """All derived scheduling state for one (graph, machine) pair."""

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: "MIIResult | None" = None,
        *,
        incremental: bool = True,
        cross_check: bool = False,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self._analysis = analysis
        self._analysis_lock = threading.Lock()
        self._sweep = MinDistSweep(
            graph, incremental=incremental, cross_check=cross_check
        )
        self._digest: str | None = None
        self._names: list[str] | None = None
        self._op_index: dict[str, int] | None = None
        self._scratch = threading.local()

    # ------------------------------------------------------------------
    @property
    def analysis(self) -> "MIIResult":
        """The MII analysis, computed once per session and shared."""
        with self._analysis_lock:
            if self._analysis is None:
                from repro.mii.analysis import compute_mii

                self._analysis = compute_mii(self.graph, self.machine)
            return self._analysis

    @property
    def digest(self) -> str:
        """Content address of the session's graph (wire/cache key)."""
        if self._digest is None:
            self._digest = fingerprint_digest(self.graph)
        return self._digest

    @property
    def names(self) -> list[str]:
        """Operation names in matrix row order (program order)."""
        if self._names is None:
            self._names = self.graph.node_names()
        return self._names

    @property
    def op_index(self) -> dict[str, int]:
        """Name -> matrix row, built once per session."""
        if self._op_index is None:
            self._op_index = {
                name: i for i, name in enumerate(self.names)
            }
        return self._op_index

    # ------------------------------------------------------------------
    def mindist(self, ii: int):
        """MinDist at *ii* through the sweep (``None``: infeasible)."""
        return self._sweep.solve(ii)

    def cyclic_asap(self, ii: int) -> dict[str, int] | None:
        """Cyclic-ASAP row of the MinDist matrix (fresh dict per call)."""
        solved = self.mindist(ii)
        if solved is None:
            return None
        dist, names = solved
        asap = np.maximum(dist.max(axis=0), 0)
        return {name: int(asap[i]) for i, name in enumerate(names)}

    def start_bounds(self, ii: int) -> StartBounds | None:
        """A clean :class:`StartBounds` over the matrix at *ii*.

        Reuses this thread's previous instance (reset in place) when it
        was built over the *same* matrix — the common case of a
        scheduler's several placement passes at one II.
        """
        solved = self.mindist(ii)
        if solved is None:
            return None
        dist, _ = solved
        cached: StartBounds | None = getattr(
            self._scratch, "bounds", None
        )
        if cached is not None and cached.dist is dist:
            cached.reset()
            return cached
        bounds = StartBounds(dist)
        self._scratch.bounds = bounds
        return bounds

    def mrt(self, ii: int) -> ModuloReservationTable:
        """A clean reservation table at *ii* (per-thread, reset reuse)."""
        cached: ModuloReservationTable | None = getattr(
            self._scratch, "mrt", None
        )
        if cached is not None and cached.ii == ii:
            cached.reset()
            return cached
        mrt = ModuloReservationTable(self.machine, ii)
        self._scratch.mrt = mrt
        return mrt

    def sweep_stats(self) -> dict[str, int]:
        """The sweep's solve counters (perf tier, QA assertions)."""
        return self._sweep.stats()


def _machine_key(machine: MachineModel) -> str:
    return json.dumps(
        machine.to_dict(), separators=(",", ":"), sort_keys=True
    )


class SessionCache:
    """LRU of live sessions keyed by (graph digest, machine wire form).

    Two equivalent graphs (equal fingerprints) share one session even
    when they are distinct objects — matrix row order is part of the
    fingerprint, so every derived structure transfers.
    """

    def __init__(self, max_sessions: int = _DEFAULT_MAX_SESSIONS) -> None:
        self._max_sessions = max(1, max_sessions)
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[tuple[str, str], SchedulingSession]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: "MIIResult | None" = None,
        *,
        digest: str | None = None,
    ) -> SchedulingSession:
        """The session for (graph, machine), created on first use.

        ``digest`` lets callers that already content-addressed the
        graph (the executor's cache keys) skip re-fingerprinting.
        """
        if digest is None:
            digest = fingerprint_digest(graph)
        key = (digest, _machine_key(machine))
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                self._sessions.move_to_end(key)
                return session
            self.misses += 1
            session = SchedulingSession(graph, machine, analysis)
            session._digest = digest
            self._sessions[key] = session
            while len(self._sessions) > self._max_sessions:
                self._sessions.popitem(last=False)
            return session

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "sessions": len(self._sessions),
            }

    def clear(self) -> None:
        with self._lock:
            self._sessions.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide cache for callers outside the service (the QA oracle
#: battery, ad-hoc library use) that want MII/matrix dedup for free.
_SHARED_SESSIONS = SessionCache()


def session_for(
    graph: DependenceGraph,
    machine: MachineModel,
    analysis: "MIIResult | None" = None,
) -> SchedulingSession:
    """The process-wide shared session for (graph, machine)."""
    return _SHARED_SESSIONS.get(graph, machine, analysis)


def shared_session_cache() -> SessionCache:
    """The process-wide session cache itself (tests, diagnostics)."""
    return _SHARED_SESSIONS
