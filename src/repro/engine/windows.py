"""Vectorized, incremental EarlyStart/LateStart bounds.

For a partial schedule, the transitive bounds of Section 3.3 are::

    EarlyStart(v) = max over scheduled u:  t_u + mindist[u][v]
    LateStart(v)  = min over scheduled u:  t_u - mindist[v][u]

The seed recomputed both with a Python loop over every scheduled
operation *per placement query* — O(n) dict lookups per query, O(n^2)
per attempt.  :class:`StartBounds` keeps the running max/min for **all**
operations as NumPy arrays and folds each new placement in with one
vectorized row/column update, making every query O(1) and every
placement O(n).

Placements are monotone (bounds only tighten), which is exactly how the
window-scanning schedulers (HRMS, SMS) use them; ejection-based methods
that un-place operations recompute their bounds per pick instead.
"""

from __future__ import annotations

import numpy as np

from repro.engine.mindist import _NO_PATH_CUTOFF

_NEG = np.iinfo(np.int64).min
_POS = np.iinfo(np.int64).max


class StartBounds:
    """Running transitive EarlyStart/LateStart over a MinDist matrix."""

    def __init__(self, dist: np.ndarray) -> None:
        n = dist.shape[0]
        #: The matrix the bounds were built over (read-only, shared);
        #: sessions use its identity to decide whether a cached
        #: instance can be reset instead of rebuilt.
        self.dist = dist
        self._dist = dist
        self._reach = dist > _NO_PATH_CUTOFF
        self._es = np.full(n, _NEG, dtype=np.int64)
        self._has_es = np.zeros(n, dtype=bool)
        self._ls = np.full(n, _POS, dtype=np.int64)
        self._has_ls = np.zeros(n, dtype=bool)

    def reset(self) -> None:
        """Forget every placement; equivalent to a fresh construction
        over the same matrix (the reachability mask is kept)."""
        self._es.fill(_NEG)
        self._has_es.fill(False)
        self._ls.fill(_POS)
        self._has_ls.fill(False)

    def place(self, i: int, cycle: int) -> None:
        """Fold ``operation i scheduled at cycle`` into every bound."""
        out = self._reach[i, :]
        np.maximum(self._es, cycle + self._dist[i, :],
                   where=out, out=self._es)
        self._has_es |= out
        into = self._reach[:, i]
        np.minimum(self._ls, cycle - self._dist[:, i],
                   where=into, out=self._ls)
        self._has_ls |= into

    def early_start(self, i: int) -> int | None:
        """EarlyStart of operation *i*, or ``None`` if unconstrained."""
        return int(self._es[i]) if self._has_es[i] else None

    def late_start(self, i: int) -> int | None:
        """LateStart of operation *i*, or ``None`` if unconstrained."""
        return int(self._ls[i]) if self._has_ls[i] else None
