"""Cached, vectorized MinDist solving.

``mindist[u][v]`` is the maximum, over all dependence paths from ``u`` to
``v``, of ``sum(latency(x) for x on the path except v) - II * sum(delta)``
— the minimum number of cycles ``v`` must issue after ``u``.  At a
feasible II (``II >= RecMII``) every dependence cycle has non-positive
weight, so Floyd–Warshall converges; a positive diagonal entry flags an
infeasible II.

The matrix is expensive (O(n^3)) and the II search recomputes it at every
candidate II — twice per II for HRMS's two directional passes.  The edge
weights, however, are an affine function of the II: ``W(II) = L - II*Δ``
per edge.  :class:`MinDistSolver` therefore factors each graph **once**
into per-edge index/latency/distance arrays, assembles ``W(II)``
vectorized, and memoizes the solved matrix per ``(graph, II)`` — repeated
queries (the driver's II+1 retries, HRMS's second pass, ``cyclic_asap``)
return the cached array in O(1).

Cached matrices are marked read-only and shared between callers.  A
structural fingerprint (operations, latencies, edge keys) is re-checked
on every query, so mutating a graph between queries safely invalidates
its cache entry.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.graph.ddg import DependenceGraph
from repro.obs import trace

#: Sentinel for "no path" — avoids -inf arithmetic warnings.
NO_PATH = -(10**9)

#: Entries at or below this threshold mean "no constraint".
_NO_PATH_CUTOFF = NO_PATH // 2

#: Default per-graph byte budget of the (II -> matrix) memo.  Paper-scale
#: loops (tens of operations, KB-sized matrices) never evict, and even
#: the 512-op scalability tier's ~55-II search (~115 MB) fits, so warm
#: re-runs replay the whole sweep from cache.  The budget exists to
#: bound pathological cases: an LRU shorter than a monotone II sweep
#: would evict exactly the entries the *next* sweep asks for first, so
#: prefer a budget that fits the sweep over a tight window.
_DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

#: Entries every graph may keep regardless of the byte budget (the
#: current II's second directional pass and its close neighbours).
_MIN_CACHED_IIS = 4

#: Cache-miss sentinel (``None`` is a valid cached value: infeasible II).
_MISSING = object()


def graph_fingerprint(graph: DependenceGraph) -> tuple:
    """Structural identity of a graph: operations and edge keys.

    Covers every operation field that influences scheduling or the
    derived metrics (latency for MinDist, opclass for resource binding,
    ``produces_value`` for lifetimes/MaxLive), so two graphs with equal
    fingerprints schedule identically on the same machine.  The solver
    uses it for cache invalidation and the parallel experiment runner
    for per-loop result caching.
    """
    return (
        tuple(
            (op.name, op.latency, op.opclass, op.produces_value)
            for op in graph.operations()
        ),
        tuple(sorted(
            (edge.src, edge.dst, edge.distance, edge.kind.value)
            for edge in graph.edges()
        )),
    )


def fingerprint_digest(graph: DependenceGraph) -> str:
    """Stable hex content-address of a graph's structural fingerprint.

    Two graphs share a digest exactly when :func:`graph_fingerprint`
    says they schedule identically, so the digest is usable as a durable
    cache key (the artifact store) and as a wire-safe graph identity.
    """
    canonical = json.dumps(
        graph_fingerprint(graph), separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class _GraphFactors:
    """II-independent factorisation of one graph.

    ``W(II)`` for every edge is ``lat - II * delta``; self-dependences
    are kept apart because they only feed the feasibility check, never
    the matrix.
    """

    fingerprint: tuple
    names: list[str]
    src: np.ndarray
    dst: np.ndarray
    lat: np.ndarray
    delta: np.ndarray
    self_lat: np.ndarray
    self_delta: np.ndarray
    #: II -> (dist, names) or None (infeasible II — also memoized),
    #: insertion-ordered oldest-first (LRU via move-to-end on hit).
    cache: dict[int, tuple[np.ndarray, list[str]] | None] = field(
        default_factory=dict
    )
    #: Bytes held by the cached matrices (None entries cost nothing).
    cached_bytes: int = 0


def _factorise(graph: DependenceGraph, fingerprint: tuple) -> _GraphFactors:
    names = graph.node_names()
    index = {name: i for i, name in enumerate(names)}
    src: list[int] = []
    dst: list[int] = []
    lat: list[int] = []
    delta: list[int] = []
    self_lat: list[int] = []
    self_delta: list[int] = []
    for edge in graph.edges():
        i, j = index[edge.src], index[edge.dst]
        latency = graph.operation(edge.src).latency
        if i == j:
            self_lat.append(latency)
            self_delta.append(edge.distance)
        else:
            src.append(i)
            dst.append(j)
            lat.append(latency)
            delta.append(edge.distance)
    return _GraphFactors(
        fingerprint=fingerprint,
        names=names,
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        lat=np.asarray(lat, dtype=np.int64),
        delta=np.asarray(delta, dtype=np.int64),
        self_lat=np.asarray(self_lat, dtype=np.int64),
        self_delta=np.asarray(self_delta, dtype=np.int64),
    )


class MinDistSolver:
    """Memoizing MinDist solver shared by every scheduler.

    One solver instance can serve any number of graphs; entries are held
    through weak references, so dropping a graph drops its cache.
    """

    def __init__(self, cache_bytes: int = _DEFAULT_CACHE_BYTES) -> None:
        self._graphs: "weakref.WeakKeyDictionary[DependenceGraph, _GraphFactors]" = (
            weakref.WeakKeyDictionary()
        )
        self._cache_bytes = cache_bytes
        # Guards the cache bookkeeping (lookup/insert/evict, counters,
        # byte accounting): the portfolio racer solves the *same* graph
        # from several threads at once.  The O(n^3) solve itself runs
        # outside the lock.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def solve(
        self, graph: DependenceGraph, ii: int
    ) -> tuple[np.ndarray, list[str]] | None:
        """Cached equivalent of the seed's ``mindist_matrix``.

        Returns ``(matrix, names)`` with rows/columns indexed by *names*
        (program order), or ``None`` if *ii* is infeasible.  The matrix
        is read-only and shared; ``matrix[i, j] <= NO_PATH / 2`` means
        "no constraint".
        """
        # The fingerprint is O(ops+edges) and touches no shared state;
        # computing it outside the lock keeps unrelated graphs (service
        # workers, the parallel runner) from serializing on it.
        fingerprint = graph_fingerprint(graph)
        sentinel = _MISSING
        with self._lock:
            factors = self._factors(graph, fingerprint)
            cached = factors.cache.get(ii, sentinel)
            if cached is not sentinel:
                self.hits += 1
                factors.cache.pop(ii)  # LRU: move to the young end
                factors.cache[ii] = cached
                return cached
            self.misses += 1
        # Solve outside the lock; concurrent first requests for the same
        # (graph, II) may duplicate this work, but the results are
        # identical and only the first writer charges the byte budget.
        # Only the miss path is traced: warm hits are microseconds and
        # sit inside the per-attempt hot loop.
        if trace.ACTIVE is None:
            result = self._solve_uncached(factors, ii)
        else:
            with trace.span("mindist.solve", ii=ii, ops=len(graph)):
                result = self._solve_uncached(factors, ii)
        with self._lock:
            if ii not in factors.cache:
                factors.cache[ii] = result
                factors.cached_bytes += (
                    0 if result is None else result[0].nbytes
                )
                while (
                    factors.cached_bytes > self._cache_bytes
                    and len(factors.cache) > _MIN_CACHED_IIS
                ):
                    evicted = factors.cache.pop(next(iter(factors.cache)))
                    factors.cached_bytes -= (
                        0 if evicted is None else evicted[0].nbytes
                    )
        return result

    def cyclic_asap(
        self, graph: DependenceGraph, ii: int
    ) -> dict[str, int] | None:
        """Earliest issue cycles respecting loop-carried dependences.

        ``t(v) = max(0, max_u mindist[u][v])`` — the unconstrained-resource
        ASAP schedule of the cyclic graph.  ``None`` when *ii* is
        infeasible.  A fresh dict is returned on every call.
        """
        result = self.solve(graph, ii)
        if result is None:
            return None
        dist, names = result
        asap = np.maximum(dist.max(axis=0), 0)
        return {name: int(asap[i]) for i, name in enumerate(names)}

    def clear(self) -> None:
        """Drop every cached factorisation and matrix."""
        with self._lock:
            self._graphs.clear()
            self.hits = 0
            self.misses = 0

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters plus the number of live graph entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "graphs": len(self._graphs),
        }

    # ------------------------------------------------------------------
    def _factors(
        self, graph: DependenceGraph, fingerprint: tuple | None = None
    ) -> _GraphFactors:
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
        factors = self._graphs.get(graph)
        if factors is None or factors.fingerprint != fingerprint:
            factors = _factorise(graph, fingerprint)
            self._graphs[graph] = factors
        return factors

    @staticmethod
    def _solve_uncached(
        factors: _GraphFactors, ii: int
    ) -> tuple[np.ndarray, list[str]] | None:
        if factors.self_lat.size and np.any(
            factors.self_lat - factors.self_delta * ii > 0
        ):
            return None  # self-dependence violated at this II
        n = len(factors.names)
        dist = np.full((n, n), NO_PATH, dtype=np.int64)
        if factors.src.size:
            weights = factors.lat - factors.delta * ii
            np.maximum.at(dist, (factors.src, factors.dst), weights)

        for k in range(n):
            via = dist[:, k, None] + dist[None, k, :]
            np.maximum(dist, via, out=dist)
            # Keep "no path" saturated so chained NO_PATH values cannot
            # creep upward into the feasible range.
            dist[dist < _NO_PATH_CUTOFF] = NO_PATH

        if np.any(np.diag(dist) > 0):
            return None
        dist.setflags(write=False)
        return dist, factors.names


def warm_start() -> None:
    """Exercise the engine's hot code paths once, in this process.

    Process-pool backends (:mod:`repro.service.procpool`,
    :mod:`repro.experiments.procmap`) call this from their worker
    initializers so the first *real* request does not pay the one-time
    costs: importing the scheduler stack, materialising the lazy
    registry, and the first NumPy ufunc dispatch of the Floyd–Warshall
    sweep.  The probe graph is local to this function, so its weakly
    referenced cache entry evaporates as soon as the warm-up returns —
    the shared solver stays empty of persistent state.
    """
    from repro.graph.builder import GraphBuilder
    from repro.schedulers.registry import _factories

    _factories()  # import every scheduler (incl. the lazy HRMS/portfolio)
    graph = (
        GraphBuilder("engine-warmup")
        .op("a")
        .op("b", deps=("a",))
        .edge("b", "a", distance=1)
        .build()
    )
    solver = MinDistSolver()
    solver.solve(graph, 1)
    solver.cyclic_asap(graph, 2)


#: Process-wide solver every scheduler shares by default.
_DEFAULT_SOLVER = MinDistSolver()


def default_solver() -> MinDistSolver:
    """The process-wide shared solver."""
    return _DEFAULT_SOLVER


def mindist_matrix(
    graph: DependenceGraph, ii: int
) -> tuple[np.ndarray, list[str]] | None:
    """Floyd–Warshall longest-path matrix, or ``None`` if II is infeasible.

    Cached: repeated queries for the same graph and II return the same
    (read-only) array.
    """
    return _DEFAULT_SOLVER.solve(graph, ii)


def cyclic_asap(graph: DependenceGraph, ii: int) -> dict[str, int] | None:
    """Cached cyclic-ASAP row of the MinDist matrix (see the solver)."""
    return _DEFAULT_SOLVER.cyclic_asap(graph, ii)
