"""Rau's Iterative Modulo Scheduling (IMS) [19].

The paper cites IMS as the state-of-the-art iterative scheduler; it is the
natural fourth baseline next to Top-Down, Slack and FRLC.  The algorithm
(MICRO-27, 1994):

1. operations are prioritised by **height** — the longest dependence path
   (at the candidate II) from the operation to any other, so operations on
   critical chains schedule first;
2. the highest-priority unscheduled operation computes its EarlyStart from
   its already-scheduled *immediate predecessors* and scans the II-wide
   window ``[ES, ES + II - 1]`` for a free slot;
3. when no slot exists the operation is **force-placed** at max(ES, one
   past its previous placement) and every operation it conflicts with —
   by resources or by a violated dependence — is evicted and rescheduled
   later (this is the "iterative" part);
4. a budget linear in the loop size bounds total placements; exhausting
   it abandons the attempt and the driver retries at II + 1.

Unlike HRMS and Slack, IMS schedules strictly top-down (windows always
scan upward), so it is register-insensitive; its role in the comparison is
quality-of-II at heuristic cost.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.machine.mrt import ModuloReservationTable
from repro.schedulers.base import ModuloScheduler, early_start
from repro.schedulers.mindist import NO_PATH


class IMSScheduler(ModuloScheduler):
    """Iterative modulo scheduling with height priority and ejection."""

    name = "ims"

    def __init__(
        self, max_ii: int | None = None, budget_factor: int = 6
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._budget_factor = budget_factor

    def prepare(self, session: SchedulingSession) -> dict[str, int]:
        """Program-order tiebreak positions (II-independent)."""
        return dict(session.op_index)

    # ------------------------------------------------------------------
    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        position: dict[str, int] = context
        graph = session.graph
        result = session.mindist(ii)
        if result is None:
            return None
        dist, names = result
        heights = self._heights(graph, dist, names)
        order = session.op_index

        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        unscheduled = set(names)
        last_forced: dict[str, int] = {}
        budget = self._budget_factor * len(names) + 32

        while unscheduled:
            pick = max(
                unscheduled,
                key=lambda n: (heights[order[n]], -position[n]),
            )
            op = graph.operation(pick)
            es = early_start(graph, start, pick, ii)
            es = 0 if es is None else es

            placed_at = mrt.scan_place(op, range(es, es + ii))
            if placed_at is None:
                placed_at = self._force_place(
                    graph, mrt, start, unscheduled, pick, es, last_forced, ii
                )
                if placed_at is None:
                    return None
            start[pick] = placed_at
            unscheduled.discard(pick)
            # A slot legal w.r.t. predecessors may still violate an edge
            # to an already-scheduled successor (EarlyStart ignores them);
            # Rau's algorithm displaces such neighbours on every placement.
            self._evict_violations(
                graph, mrt, start, unscheduled, pick, placed_at, ii
            )
            budget -= 1
            if budget <= 0 and unscheduled:
                return None
        return start

    # ------------------------------------------------------------------
    @staticmethod
    def _heights(
        graph: DependenceGraph, dist: np.ndarray, names: list[str]
    ) -> np.ndarray:
        """Longest II-adjusted path from each operation to any other."""
        reachable = dist > NO_PATH // 2
        heights = np.where(reachable, dist, np.int64(0)).max(axis=1)
        latencies = np.array(
            [graph.operation(name).latency for name in names],
            dtype=np.int64,
        )
        return heights + latencies

    def _force_place(
        self,
        graph: DependenceGraph,
        mrt: ModuloReservationTable,
        start: dict[str, int],
        unscheduled: set[str],
        name: str,
        es: int,
        last_forced: dict[str, int],
        ii: int,
    ) -> int | None:
        """Rau's displacement: place at ES (monotone on repeats), evict."""
        cycle = es
        if name in last_forced and last_forced[name] >= cycle:
            cycle = last_forced[name] + 1
        last_forced[name] = cycle
        op = graph.operation(name)

        for victim in mrt.conflicting_ops(op, cycle):
            mrt.unplace(graph.operation(victim))
            start.pop(victim, None)
            unscheduled.add(victim)
        if not mrt.place(op, cycle):
            return None
        return cycle

    def _evict_violations(
        self,
        graph: DependenceGraph,
        mrt: ModuloReservationTable,
        start: dict[str, int],
        unscheduled: set[str],
        name: str,
        cycle: int,
        ii: int,
    ) -> None:
        """Displace neighbours whose dependence edges *cycle* violates."""
        op = graph.operation(name)
        for edge in graph.out_edges(name):
            if edge.dst == name or edge.dst not in start:
                continue
            if start[edge.dst] + edge.distance * ii < cycle + op.latency:
                self._evict(graph, mrt, start, unscheduled, edge.dst)
        for edge in graph.in_edges(name):
            if edge.src == name or edge.src not in start:
                continue
            producer = graph.operation(edge.src)
            if cycle + edge.distance * ii < start[edge.src] + producer.latency:
                self._evict(graph, mrt, start, unscheduled, edge.src)

    @staticmethod
    def _evict(
        graph: DependenceGraph,
        mrt: ModuloReservationTable,
        start: dict[str, int],
        unscheduled: set[str],
        victim: str,
    ) -> None:
        mrt.unplace(graph.operation(victim))
        start.pop(victim, None)
        unscheduled.add(victim)
