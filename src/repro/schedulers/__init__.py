"""Modulo schedulers: HRMS plus the paper's comparison methods.

* :class:`~repro.core.scheduler.HRMSScheduler` — the paper's contribution.
* :class:`~repro.schedulers.topdown.TopDownScheduler` — ASAP list
  scheduling in topological order (the Section 4.2 comparator, [15]).
* :class:`~repro.schedulers.bottomup.BottomUpScheduler` — ALAP list
  scheduling in reverse topological order (Section 2's second strawman).
* :class:`~repro.schedulers.slack.SlackScheduler` — Huff's
  lifetime-sensitive slack scheduling [10] with MinDist windows and
  ejection.
* :class:`~repro.schedulers.frlc.FRLCScheduler` — Wang & Eisenbeis's
  decomposed software pipelining [23]; register-insensitive.
* :class:`~repro.schedulers.spilp.SPILPScheduler` — Govindarajan, Altman &
  Gao's buffer-minimising integer linear program [8], solved with HiGHS
  through :func:`scipy.optimize.milp`.

All schedulers share :class:`~repro.schedulers.base.ModuloScheduler`:
``schedule(graph, machine)`` runs the MII analysis, then tries increasing
II values until an attempt succeeds, returning a verified-shape
:class:`~repro.schedule.schedule.Schedule`.
"""

from repro.schedulers.base import ModuloScheduler
from repro.schedulers.bottomup import BottomUpScheduler
from repro.schedulers.frlc import FRLCScheduler
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.schedulers.slack import SlackScheduler
from repro.schedulers.spilp import SPILPScheduler
from repro.schedulers.topdown import TopDownScheduler


def __getattr__(name: str):
    # Lazy re-export: repro.core imports the base module from this
    # package, so importing HRMS eagerly here would be circular.
    if name == "HRMSScheduler":
        from repro.core.scheduler import HRMSScheduler

        return HRMSScheduler
    raise AttributeError(name)


__all__ = [
    "BottomUpScheduler",
    "FRLCScheduler",
    "HRMSScheduler",
    "ModuloScheduler",
    "SPILPScheduler",
    "SlackScheduler",
    "TopDownScheduler",
    "available_schedulers",
    "make_scheduler",
]
