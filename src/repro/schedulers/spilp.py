"""SPILP — integer-programming modulo scheduling with minimal buffers [8].

Govindarajan, Altman & Gao formulate resource-constrained software
pipelining as a time-indexed integer linear program: binary variables
``x[v, t]`` choose the issue cycle of each operation inside a finite
horizon, modulo resource constraints cap each kernel row, and integer
buffer variables ``b[v]`` upper-bound every value's lifetime in units of
II.  Minimising ``sum(b)`` yields the schedule with minimal buffer
requirements at the smallest feasible II (the driver iterates II upward,
exactly like the original).

The original used the OSL solver; we solve the identical formulation with
HiGHS through :func:`scipy.optimize.milp`.

One known conservatism: the modulo resource constraints bound per-row
*occupancy*, which for unpipelined multi-row reservations is a
relaxation of circular-arc unit assignment.  An extracted optimum that
fails the exact packer is treated as infeasible at that II and the
search moves on — so on unpipelined-saturated loops the reported II can
exceed the true minimum when a *different* relaxed-feasible placement
at the skipped II would have packed (closing that gap needs no-good
cuts and a re-solve loop).  Buffer optimality still holds at the II
actually returned.  The paper's observation that
SPILP costs orders of magnitude more time than the heuristics reproduces
directly — one Livermore-style loop with a long divide chain dominates the
total, mirroring the paper's Loop 23 anecdote.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import SolverError, SolverTimeoutError
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind
from repro.machine.machine import MachineModel
from repro.engine.session import SchedulingSession
from repro.schedulers.base import ModuloScheduler


def _placement_packable(
    graph: DependenceGraph,
    machine: MachineModel,
    ii: int,
    start: dict[str, int],
) -> bool:
    """Exact unit-assignment check for an extracted MILP placement.

    Shared by SPILP and OptReg: both formulations bound kernel-row
    occupancy, which is exact for pipelined classes but a relaxation
    for unpipelined multi-row reservations, so extracted placements
    must pass circular-arc packing before they are accepted.
    """
    from repro.schedule.verify import arcs_packable

    by_class: dict[str, list[tuple[int, int, str]]] = {}
    for name, cycle in start.items():
        op = graph.operation(name)
        unit = machine.class_for(op)
        span = machine.reservation_cycles(op)
        by_class.setdefault(unit.name, []).append(
            (cycle % ii, span, name)
        )
    for unit in machine.unit_classes():
        arcs = by_class.get(unit.name)
        if arcs and not arcs_packable(arcs, unit.count, ii):
            return False
    return True


class SPILPScheduler(ModuloScheduler):
    """Optimal buffer-minimising modulo scheduler (MILP)."""

    name = "spilp"

    def __init__(
        self,
        max_ii: int | None = None,
        time_limit: float = 120.0,
        horizon_slack: int = 2,
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._time_limit = time_limit
        self._horizon_slack = horizon_slack

    def prepare(self, session: SchedulingSession) -> None:
        return None

    # ------------------------------------------------------------------
    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        graph = session.graph
        machine = session.machine
        asap = session.cyclic_asap(ii)
        if asap is None:
            return None
        names = graph.node_names()
        ops = {name: graph.operation(name) for name in names}
        horizon = (
            max(asap[n] + ops[n].latency for n in names)
            + self._horizon_slack * ii
        )
        n_ops = len(names)
        index = {name: i for i, name in enumerate(names)}
        producers = [n for n in names if ops[n].produces_value]
        b_index = {
            name: n_ops * horizon + k for k, name in enumerate(producers)
        }
        n_vars = n_ops * horizon + len(producers)
        b_cap = horizon // ii + 2

        def xcol(name: str, t: int) -> int:
            return index[name] * horizon + t

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        lower: list[float] = []
        upper: list[float] = []
        row_count = 0

        def add_row(
            entries: list[tuple[int, float]], lb: float, ub: float
        ) -> None:
            nonlocal row_count
            for col, val in entries:
                rows.append(row_count)
                cols.append(col)
                vals.append(val)
            lower.append(lb)
            upper.append(ub)
            row_count += 1

        # (1) each operation issues exactly once.
        for name in names:
            add_row([(xcol(name, t), 1.0) for t in range(horizon)], 1.0, 1.0)

        # Issue-time expression t_v = sum(t * x[v, t]) reused below.
        def time_entries(name: str, sign: float) -> list[tuple[int, float]]:
            return [
                (xcol(name, t), sign * t) for t in range(1, horizon)
            ]

        # (2) dependences: t_v - t_u >= latency(u) - delta * II.
        for edge in graph.edges():
            if edge.src == edge.dst:
                continue  # guaranteed by II >= RecMII
            entries = time_entries(edge.dst, +1.0) + time_entries(
                edge.src, -1.0
            )
            lb = ops[edge.src].latency - edge.distance * ii
            add_row(entries, lb, np.inf)

        # (3) modulo resource constraints per unit class and kernel row.
        for unit in machine.unit_classes():
            members = [
                name
                for name in names
                if machine.class_for(ops[name]).name == unit.name
            ]
            if not members:
                continue
            for row in range(ii):
                entries = []
                for name in members:
                    span = machine.reservation_cycles(ops[name])
                    if span > ii:
                        return None  # unpipelined op cannot repeat at this II
                    for t in range(horizon):
                        if any(
                            (t + j) % ii == row for j in range(span)
                        ):
                            entries.append((xcol(name, t), 1.0))
                add_row(entries, -np.inf, float(unit.count))

        # (4) buffers: II * b_v >= t_c + delta * II - t_v per consumer.
        for name in producers:
            for edge in graph.out_edges(name):
                if edge.kind is not DependenceKind.REGISTER:
                    continue
                entries = [(b_index[name], float(ii))]
                if edge.dst != name:
                    entries += time_entries(name, +1.0)
                    entries += time_entries(edge.dst, -1.0)
                add_row(entries, float(edge.distance * ii), np.inf)

        objective = np.zeros(n_vars)
        for name in producers:
            objective[b_index[name]] = 1.0

        lb_vars = np.zeros(n_vars)
        ub_vars = np.ones(n_vars)
        for name in producers:
            ub_vars[b_index[name]] = b_cap
        integrality = np.ones(n_vars)

        constraint = LinearConstraint(
            sparse.csr_matrix(
                (vals, (rows, cols)), shape=(row_count, n_vars)
            ),
            np.array(lower),
            np.array(upper),
        )
        result = milp(
            c=objective,
            constraints=[constraint],
            bounds=Bounds(lb_vars, ub_vars),
            integrality=integrality,
            options={"time_limit": self._time_limit, "presolve": True},
        )

        if result.status == 2:  # infeasible at this II
            return None
        if result.x is None:
            if result.status == 1:  # iteration/time limit, no incumbent
                raise SolverTimeoutError(
                    f"SPILP timed out on {graph.name!r} at II={ii} "
                    f"(limit {self._time_limit}s, no incumbent): "
                    f"{result.message}"
                )
            raise SolverError(
                f"SPILP failed on {graph.name!r} at II={ii}: "
                f"{result.message}"
            )

        start: dict[str, int] = {}
        for name in names:
            base = index[name] * horizon
            column = result.x[base : base + horizon]
            start[name] = int(np.argmax(column))
        if not _placement_packable(graph, machine, ii, start):
            # Constraint (3) bounds per-row *occupancy*, which for
            # unpipelined multi-row reservations is only a relaxation of
            # unit assignment: three 30-cycle arcs can saturate every
            # row of two units at II=45 yet admit no assignment (found
            # by the QA campaign — tests/corpus/).  An exact circular-
            # arc check decides; an unrealizable placement fails the
            # attempt so the driver continues the II search instead of
            # crashing mid-study.
            return None
        return start
