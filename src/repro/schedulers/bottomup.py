"""Bottom-Up scheduler (Section 2's second strawman).

The mirror image of Top-Down: operations are visited in *reverse*
topological order and placed **as late as possible** before their
scheduled successors.  Operations with no successors in the partial
schedule are placed at the latest currently-used cycle ("in order to not
delay any possible predecessor it is scheduled as late as possible") —
which is what stretches V2 in the motivating example: the store C lands
far below its producer B.

Recurrence closers additionally respect the EarlyStart bound from their
scheduled predecessors.
"""

from __future__ import annotations

from typing import Any

from repro.engine.session import SchedulingSession
from repro.schedulers.base import (
    ModuloScheduler,
    downward_window,
    early_start,
    late_start,
    scan_place,
)
from repro.schedulers.topdown import acyclic_topological_order


class BottomUpScheduler(ModuloScheduler):
    """ALAP list scheduling in reverse topological order."""

    name = "bottomup"

    def prepare(self, session: SchedulingSession) -> list[str]:
        return list(
            reversed(
                acyclic_topological_order(session.graph, session.analysis)
            )
        )

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        order: list[str] = context
        graph = session.graph
        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        for name in order:
            op = graph.operation(name)
            es = early_start(graph, start, name, ii)
            ls = late_start(graph, start, name, ii)
            if ls is None:
                # Nothing below us yet: align with the latest used cycle so
                # predecessors keep maximal freedom.
                ls = max(start.values(), default=0)
            if es is not None and es > ls:
                return None
            window = downward_window(ls, ii, es)
            cycle = scan_place(mrt, op, window)
            if cycle is None:
                return None
            start[name] = cycle
        return start
