"""Optimum modulo schedules with *minimum register requirements* [7].

The paper's introduction cites two exact methods: SPILP [8], which
minimises **buffers** (reproduced in :mod:`repro.schedulers.spilp`), and
Eichenberger, Davidson & Abraham's formulation that minimises the
**register requirement itself** (MaxLive).  This module reproduces the
latter as a time-indexed MILP:

* binary ``x[v, t]`` chooses each operation's issue cycle in a finite
  horizon; dependence and modulo-resource constraints are exactly
  SPILP's;
* an integer ``e[v]`` tracks each value's lifetime end
  (``e[v] >= t_w + delta * II`` for every register consumer ``w``,
  ``e[v] >= t_v``);
* the number of live instances of ``v`` at kernel row ``r`` is
  ``floor((e_v - r - 1)/II) - floor((t_v - r - 1)/II)`` — each floor is
  linearised with an integer quotient and a bounded remainder
  (``z = II*q + b, 0 <= b < II``);
* ``R >= sum_v instances(v, r)`` for every row, and ``R`` is minimised
  (a sub-unit tie-break term keeps lifetimes compact among
  register-optimal schedules).

``R`` at the optimum equals the smallest MaxLive any schedule of this II
can achieve, which makes this scheduler the yardstick for HRMS's
register quality on small loops, the same role [7] plays in the paper's
discussion.  Cost grows quickly with ``|V| * horizon``; use it on
Table-1-sized kernels.

The same unpipelined-reservation conservatism as SPILP applies: row
occupancy relaxes circular-arc unit assignment, an unpackable extracted
optimum fails the attempt, and the II search continues — the register
optimum is exact at the II returned, which can exceed the true minimum
II on unpipelined-saturated loops.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import SolverError, SolverTimeoutError
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind
from repro.machine.machine import MachineModel
from repro.engine.session import SchedulingSession
from repro.schedulers.base import ModuloScheduler
from repro.schedulers.spilp import _placement_packable


class OptRegScheduler(ModuloScheduler):
    """Register-optimal modulo scheduler (MILP, Eichenberger-style)."""

    name = "optreg"

    def __init__(
        self,
        max_ii: int | None = None,
        time_limit: float = 120.0,
        horizon_slack: int = 2,
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._time_limit = time_limit
        self._horizon_slack = horizon_slack

    def prepare(self, session: SchedulingSession) -> None:
        return None

    # ------------------------------------------------------------------
    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        graph = session.graph
        machine = session.machine
        asap = session.cyclic_asap(ii)
        if asap is None:
            return None
        names = graph.node_names()
        ops = {name: graph.operation(name) for name in names}
        horizon = (
            max(asap[n] + ops[n].latency for n in names)
            + self._horizon_slack * ii
        )
        producers = [n for n in names if ops[n].produces_value]
        n_ops = len(names)
        index = {name: i for i, name in enumerate(names)}
        p_index = {name: k for k, name in enumerate(producers)}
        n_p = len(producers)

        # Variable layout:
        #   x[v, t]                 n_ops * horizon      binary
        #   e[v]                    n_p                  integer
        #   qe[v, r], qs[v, r]      2 * n_p * ii         integer (floors)
        #   be[v, r], bs[v, r]      2 * n_p * ii         integer remainders
        #   R                       1                    integer
        x_base = 0
        e_base = n_ops * horizon
        qe_base = e_base + n_p
        qs_base = qe_base + n_p * ii
        be_base = qs_base + n_p * ii
        bs_base = be_base + n_p * ii
        r_col = bs_base + n_p * ii
        n_vars = r_col + 1

        max_quot = horizon // ii + 2

        def xcol(name: str, t: int) -> int:
            return x_base + index[name] * horizon + t

        def time_entries(name: str, sign: float) -> list[tuple[int, float]]:
            return [(xcol(name, t), sign * t) for t in range(1, horizon)]

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        lower: list[float] = []
        upper: list[float] = []
        row_count = 0

        def add_row(
            entries: list[tuple[int, float]], lb: float, ub: float
        ) -> None:
            nonlocal row_count
            for col, val in entries:
                rows.append(row_count)
                cols.append(col)
                vals.append(val)
            lower.append(lb)
            upper.append(ub)
            row_count += 1

        # (1) each operation issues exactly once.
        for name in names:
            add_row([(xcol(name, t), 1.0) for t in range(horizon)], 1.0, 1.0)

        # (2) dependences: t_v - t_u >= latency(u) - delta * II.
        for edge in graph.edges():
            if edge.src == edge.dst:
                continue  # guaranteed by II >= RecMII
            entries = time_entries(edge.dst, +1.0) + time_entries(
                edge.src, -1.0
            )
            add_row(
                entries, ops[edge.src].latency - edge.distance * ii, np.inf
            )

        # (3) modulo resource constraints per unit class and kernel row.
        for unit in machine.unit_classes():
            members = [
                name
                for name in names
                if machine.class_for(ops[name]).name == unit.name
            ]
            if not members:
                continue
            for row in range(ii):
                entries = []
                for name in members:
                    span = machine.reservation_cycles(ops[name])
                    if span > ii:
                        return None
                    for t in range(horizon):
                        if any((t + j) % ii == row for j in range(span)):
                            entries.append((xcol(name, t), 1.0))
                add_row(entries, -np.inf, float(unit.count))

        # (4) lifetime ends: e_v >= t_w + delta*II per register consumer,
        #     and e_v >= t_v.
        for name in producers:
            e_col = e_base + p_index[name]
            add_row(
                [(e_col, 1.0)] + time_entries(name, -1.0), 0.0, np.inf
            )
            for edge in graph.out_edges(name):
                if edge.kind is not DependenceKind.REGISTER:
                    continue
                entries = [(e_col, 1.0)]
                if edge.dst == name:
                    entries += time_entries(name, -1.0)
                else:
                    entries += time_entries(edge.dst, -1.0)
                add_row(entries, float(edge.distance * ii), np.inf)

        # (5) floor linearisation: e_v - r - 1 = II*qe + be (0<=be<II),
        #     t_v - r - 1 = II*qs + bs.
        for name in producers:
            k = p_index[name]
            e_col = e_base + k
            for row in range(ii):
                qe = qe_base + k * ii + row
                be = be_base + k * ii + row
                add_row(
                    [(e_col, 1.0), (qe, -float(ii)), (be, -1.0)],
                    float(row + 1),
                    float(row + 1),
                )
                qs = qs_base + k * ii + row
                bs = bs_base + k * ii + row
                add_row(
                    time_entries(name, +1.0)
                    + [(qs, -float(ii)), (bs, -1.0)],
                    float(row + 1),
                    float(row + 1),
                )

        # (6) R bounds every row's live count: R - sum_v (qe - qs) >= 0.
        for row in range(ii):
            entries: list[tuple[int, float]] = [(r_col, 1.0)]
            for name in producers:
                k = p_index[name]
                entries.append((qe_base + k * ii + row, -1.0))
                entries.append((qs_base + k * ii + row, +1.0))
            add_row(entries, 0.0, np.inf)

        # Objective: R, with a sub-unit lifetime tie-break so the solver
        # prefers compact schedules among register-optimal ones.
        objective = np.zeros(n_vars)
        objective[r_col] = 1.0
        tiebreak = 1.0 / (2.0 * n_p * (max_quot + 2) * ii + 1.0)
        for name in producers:
            k = p_index[name]
            for row in range(ii):
                objective[qe_base + k * ii + row] += tiebreak
                objective[qs_base + k * ii + row] -= tiebreak

        lb_vars = np.zeros(n_vars)
        ub_vars = np.ones(n_vars)
        # e: [0, horizon + b_cap * ii]
        e_cap = float(horizon + max_quot * ii)
        for k in range(n_p):
            ub_vars[e_base + k] = e_cap
        for base in (qe_base, qs_base):
            for j in range(n_p * ii):
                lb_vars[base + j] = -float(max_quot)
                ub_vars[base + j] = float(max_quot)
        for base in (be_base, bs_base):
            for j in range(n_p * ii):
                ub_vars[base + j] = float(ii - 1)
        ub_vars[r_col] = float(n_p * (max_quot + 2))

        result = milp(
            c=objective,
            constraints=[
                LinearConstraint(
                    sparse.csr_matrix(
                        (vals, (rows, cols)), shape=(row_count, n_vars)
                    ),
                    np.array(lower),
                    np.array(upper),
                )
            ],
            bounds=Bounds(lb_vars, ub_vars),
            integrality=np.ones(n_vars),
            options={"time_limit": self._time_limit, "presolve": True},
        )

        if result.status == 2:  # infeasible at this II
            return None
        if result.x is None:
            if result.status == 1:  # iteration/time limit, no incumbent
                raise SolverTimeoutError(
                    f"optreg timed out on {graph.name!r} at II={ii} "
                    f"(limit {self._time_limit}s, no incumbent): "
                    f"{result.message}"
                )
            raise SolverError(
                f"optreg failed on {graph.name!r} at II={ii}: "
                f"{result.message}"
            )

        start: dict[str, int] = {}
        for name in names:
            base = index[name] * horizon
            column = result.x[base : base + horizon]
            start[name] = int(np.argmax(column))
        if not _placement_packable(graph, machine, ii, start):
            # Row occupancy is a relaxation of unit assignment for
            # unpipelined reservations (see SPILP); an unrealizable
            # placement fails this attempt rather than the whole study.
            return None
        return start
