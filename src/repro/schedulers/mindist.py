"""MinDist: all-pairs longest dependence distances at a candidate II.

``mindist[u][v]`` is the maximum, over all dependence paths from ``u`` to
``v``, of ``sum(latency(x) for x on the path except v) - II * sum(delta)``
— the minimum number of cycles ``v`` must issue after ``u``.  Huff's Slack
scheduling uses it for exact dynamic EarlyStart/LateStart windows, and the
cyclic-ASAP row (``max over u of mindist[u][v]``) doubles as FRLC's
retiming-free operation priority.

At a feasible II (``II >= RecMII``) every dependence cycle has
non-positive weight, so Floyd–Warshall converges; a positive diagonal
entry flags an infeasible II.

This module is the historical import point; the actual solving lives in
:mod:`repro.engine.mindist`, which factors each graph once and memoizes
``(graph, II)`` results so the II search never re-solves a matrix.
"""

from __future__ import annotations

from repro.engine.mindist import (  # noqa: F401  (re-exported API)
    NO_PATH,
    MinDistSolver,
    cyclic_asap,
    default_solver,
    mindist_matrix,
)

__all__ = [
    "NO_PATH",
    "MinDistSolver",
    "cyclic_asap",
    "default_solver",
    "mindist_matrix",
]
