"""MinDist: all-pairs longest dependence distances at a candidate II.

``mindist[u][v]`` is the maximum, over all dependence paths from ``u`` to
``v``, of ``sum(latency(x) for x on the path except v) - II * sum(delta)``
— the minimum number of cycles ``v`` must issue after ``u``.  Huff's Slack
scheduling uses it for exact dynamic EarlyStart/LateStart windows, and the
cyclic-ASAP row (``max over u of mindist[u][v]``) doubles as FRLC's
retiming-free operation priority.

At a feasible II (``II >= RecMII``) every dependence cycle has
non-positive weight, so Floyd–Warshall converges; a positive diagonal
entry flags an infeasible II.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ddg import DependenceGraph

#: Sentinel for "no path" — avoids -inf arithmetic warnings.
NO_PATH = -(10**9)


def mindist_matrix(
    graph: DependenceGraph, ii: int
) -> tuple[np.ndarray, list[str]] | None:
    """Floyd–Warshall longest-path matrix, or ``None`` if II is infeasible.

    Returns ``(matrix, names)`` with rows/columns indexed by *names*
    (program order).  ``matrix[i, j] <= NO_PATH / 2`` means "no constraint".
    """
    names = graph.node_names()
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    dist = np.full((n, n), NO_PATH, dtype=np.int64)

    for edge in graph.edges():
        i, j = index[edge.src], index[edge.dst]
        weight = graph.operation(edge.src).latency - edge.distance * ii
        if i == j:
            if weight > 0:
                return None  # self-dependence violated at this II
            continue
        if weight > dist[i, j]:
            dist[i, j] = weight

    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        np.maximum(dist, via, out=dist)
        # Keep "no path" saturated so chained NO_PATH values cannot creep
        # upward into the feasible range.
        dist[dist < NO_PATH // 2] = NO_PATH

    if np.any(np.diag(dist) > 0):
        return None
    return dist, names


def cyclic_asap(graph: DependenceGraph, ii: int) -> dict[str, int] | None:
    """Earliest issue cycles respecting loop-carried dependences at *ii*.

    ``t(v) = max(0, max_u mindist[u][v])`` — the unconstrained-resource
    ASAP schedule of the cyclic graph.  ``None`` when *ii* is infeasible.
    """
    result = mindist_matrix(graph, ii)
    if result is None:
        return None
    dist, names = result
    asap = np.maximum(dist.max(axis=0), 0)
    return {name: int(asap[i]) for i, name in enumerate(names)}
