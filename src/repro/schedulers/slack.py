"""Huff's lifetime-sensitive Slack scheduling [10].

The method keeps, for every unscheduled operation, a dynamic window
``[EarlyStart, LateStart]`` computed from the MinDist matrix and the
partial schedule, and repeatedly places the operation with the smallest
*slack* (window width).  Placement is bidirectional — operations pulled by
predecessors scan their window upward, operations pulled by successors
scan downward — which is what makes the heuristic lifetime-sensitive.

When an operation has no free slot in its window it is **force-placed** at
its EarlyStart (bumping one cycle on repeats) and the operations it
conflicts with — resource conflicts and violated dependences alike — are
ejected back into the unscheduled pool (Huff's "operation ejection").  A
budget proportional to the loop size bounds the total number of
placements; exhausting it fails the attempt and the driver retries at
II+1.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.machine.mrt import ModuloReservationTable
from repro.schedulers.base import ModuloScheduler
from repro.schedulers.mindist import NO_PATH


class SlackScheduler(ModuloScheduler):
    """Lifetime-sensitive slack scheduling with ejection."""

    name = "slack"

    def __init__(
        self, max_ii: int | None = None, budget_factor: int = 6
    ) -> None:
        super().__init__(max_ii=max_ii)
        self._budget_factor = budget_factor

    def prepare(self, session: SchedulingSession) -> dict[str, int]:
        return dict(session.op_index)

    # ------------------------------------------------------------------
    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        position: dict[str, int] = context
        graph = session.graph
        result = session.mindist(ii)
        if result is None:
            return None
        dist, names = result
        index = session.op_index
        latencies = np.array(
            [graph.operation(name).latency for name in names], dtype=np.int64
        )

        # Static frame: cyclic ASAP, critical-path anchor, cyclic ALAP.
        es0 = np.maximum(dist.max(axis=0), 0)
        horizon = int((es0 + latencies).max())
        reach = dist + latencies[None, :]
        ls0 = horizon - reach.max(axis=1)
        ls0 = np.maximum(ls0, es0)  # resource pressure may stretch later

        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        unscheduled = set(names)
        last_forced: dict[str, int] = {}
        budget = self._budget_factor * len(names) + 32

        while unscheduled:
            pick, es, hard_ls, early_first = self._select(
                dist, names, index, es0, ls0, start, unscheduled, position
            )
            op = graph.operation(pick)
            placed_at = None
            # The scan window is bounded below by dependences (es) and
            # above only by *placed successors* (hard_ls); the static
            # ALAP frame drives the slack priority but must not clip the
            # scan — on resource-bound loops it would pin every critical
            # operation to one cycle and thrash the ejection machinery.
            top = es + ii - 1 if hard_ls is None else min(hard_ls, es + ii - 1)
            if es <= top:
                if early_first:
                    window = range(es, top + 1)
                else:
                    window = range(top, es - 1, -1)
                placed_at = mrt.scan_place(op, window)
            if placed_at is None:
                placed_at = self._force_place(
                    graph, mrt, start, unscheduled, pick, es, last_forced, ii
                )
                if placed_at is None:
                    return None
            start[pick] = placed_at
            unscheduled.discard(pick)
            budget -= 1
            if budget <= 0 and unscheduled:
                return None
        return start

    # ------------------------------------------------------------------
    @staticmethod
    def _select(
        dist: np.ndarray,
        names: list[str],
        index: dict[str, int],
        es0: np.ndarray,
        ls0: np.ndarray,
        start: dict[str, int],
        unscheduled: set[str],
        position: dict[str, int],
    ) -> tuple[str, int, int | None, bool]:
        """Pick the min-slack operation, its hard window and direction.

        Returns ``(name, es, hard_ls, early_first)``: ``es`` is the hard
        dependence lower bound (static cyclic ASAP tightened by placed
        predecessors); ``hard_ls`` is the upper bound imposed by placed
        successors, or ``None`` when no placed successor constrains the
        operation (the static ALAP frame enters the *priority* — the
        slack — but not the feasible window, since an unconstrained
        operation may legally stretch the schedule).

        The dynamic bounds of every unscheduled operation against every
        placed one are computed in two vectorised passes over the
        MinDist matrix (loops up to ~200 operations make a per-pair
        Python loop the scheduler's bottleneck).
        """
        hi = np.iinfo(np.int64).max
        reachable = dist > NO_PATH // 2
        es = es0.astype(np.int64).copy()
        priority_ls = ls0.astype(np.int64).copy()
        up = np.full(len(names), hi, dtype=np.int64)
        pred_bound = np.zeros(len(names), dtype=bool)
        if start:
            placed = np.fromiter(
                (index[o] for o in start), dtype=np.int64, count=len(start)
            )
            cycles = np.fromiter(
                start.values(), dtype=np.int64, count=len(start)
            )
            lo = np.iinfo(np.int64).min
            down = np.where(
                reachable[placed, :], cycles[:, None] + dist[placed, :], lo
            ).max(axis=0)
            up = np.where(
                reachable[:, placed], cycles[None, :] - dist[:, placed], hi
            ).min(axis=1)
            pred_bound = down >= es
            es = np.maximum(es, down)
            priority_ls = np.minimum(priority_ls, up)

        best: tuple | None = None
        for name in unscheduled:
            i = index[name]
            slack = int(priority_ls[i]) - int(es[i])
            key = (slack, int(es[i]), position[name])
            if best is None or key < best[0]:
                succ_bound = up[i] != hi
                early_first = not succ_bound or pred_bound[i]
                hard_ls = int(up[i]) if succ_bound else None
                best = (key, name, int(es[i]), hard_ls, bool(early_first))
        assert best is not None
        _, name, es_pick, hard_ls, early_first = best
        return name, es_pick, hard_ls, early_first

    def _force_place(
        self,
        graph: DependenceGraph,
        mrt: ModuloReservationTable,
        start: dict[str, int],
        unscheduled: set[str],
        name: str,
        es: int,
        last_forced: dict[str, int],
        ii: int,
    ) -> int | None:
        """Huff's ejection: insist on (roughly) EarlyStart, evict conflicts."""
        cycle = es
        if name in last_forced and last_forced[name] >= cycle:
            cycle = last_forced[name] + 1
        last_forced[name] = cycle
        op = graph.operation(name)

        # Evict resource conflicts.
        for victim in mrt.conflicting_ops(op, cycle):
            mrt.unplace(graph.operation(victim))
            start.pop(victim, None)
            unscheduled.add(victim)
        if not mrt.place(op, cycle):
            return None  # class has zero capacity for this span at this II

        # Evict dependence violations caused by the forced cycle.
        for edge in graph.out_edges(name):
            if edge.dst == name or edge.dst not in start:
                continue
            if start[edge.dst] + edge.distance * ii < cycle + op.latency:
                self._evict(graph, mrt, start, unscheduled, edge.dst)
        for edge in graph.in_edges(name):
            if edge.src == name or edge.src not in start:
                continue
            producer = graph.operation(edge.src)
            if cycle + edge.distance * ii < start[edge.src] + producer.latency:
                self._evict(graph, mrt, start, unscheduled, edge.src)
        return cycle

    @staticmethod
    def _evict(
        graph: DependenceGraph,
        mrt: ModuloReservationTable,
        start: dict[str, int],
        unscheduled: set[str],
        victim: str,
    ) -> None:
        mrt.unplace(graph.operation(victim))
        start.pop(victim, None)
        unscheduled.add(victim)
