"""Name → scheduler factory registry used by experiments and the CLI."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.schedulers.base import ModuloScheduler
from repro.schedulers.bottomup import BottomUpScheduler
from repro.schedulers.frlc import FRLCScheduler
from repro.schedulers.ims import IMSScheduler
from repro.schedulers.optreg import OptRegScheduler
from repro.schedulers.slack import SlackScheduler
from repro.schedulers.sms import SwingScheduler
from repro.schedulers.spilp import SPILPScheduler
from repro.schedulers.topdown import TopDownScheduler


def _factories() -> dict[str, Callable[..., ModuloScheduler]]:
    # HRMS lives in repro.core, which itself imports the scheduler base
    # module; resolving it lazily keeps the import graph acyclic.
    from repro.core.scheduler import HRMSScheduler

    return {
        HRMSScheduler.name: HRMSScheduler,
        TopDownScheduler.name: TopDownScheduler,
        BottomUpScheduler.name: BottomUpScheduler,
        SlackScheduler.name: SlackScheduler,
        SwingScheduler.name: SwingScheduler,
        IMSScheduler.name: IMSScheduler,
        FRLCScheduler.name: FRLCScheduler,
        SPILPScheduler.name: SPILPScheduler,
        OptRegScheduler.name: OptRegScheduler,
    }


#: Exact (MILP-backed) methods: orders of magnitude slower than the
#: heuristics; callers iterating the registry may want to cap their
#: time limits or skip them on large loops.
EXACT_SCHEDULERS = ("spilp", "optreg")


def available_schedulers() -> list[str]:
    """Registered scheduler names, stable order."""
    return list(_factories())


def make_scheduler(name: str, **kwargs) -> ModuloScheduler:
    """Instantiate a scheduler by registry name."""
    try:
        factory = _factories()[name]
    except KeyError:
        raise ReproError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        ) from None
    return factory(**kwargs)
