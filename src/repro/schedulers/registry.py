"""Name → scheduler factory registry used by experiments and the CLI."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.schedulers.base import ModuloScheduler
from repro.schedulers.bottomup import BottomUpScheduler
from repro.schedulers.frlc import FRLCScheduler
from repro.schedulers.ims import IMSScheduler
from repro.schedulers.optreg import OptRegScheduler
from repro.schedulers.slack import SlackScheduler
from repro.schedulers.sms import SwingScheduler
from repro.schedulers.spilp import SPILPScheduler
from repro.schedulers.topdown import TopDownScheduler


def _factories() -> dict[str, Callable[..., ModuloScheduler]]:
    # HRMS lives in repro.core and the portfolio races this registry;
    # resolving both lazily keeps the import graph acyclic.
    from repro.core.scheduler import HRMSScheduler
    from repro.portfolio.scheduler import PortfolioScheduler

    return {
        HRMSScheduler.name: HRMSScheduler,
        TopDownScheduler.name: TopDownScheduler,
        BottomUpScheduler.name: BottomUpScheduler,
        SlackScheduler.name: SlackScheduler,
        SwingScheduler.name: SwingScheduler,
        IMSScheduler.name: IMSScheduler,
        FRLCScheduler.name: FRLCScheduler,
        SPILPScheduler.name: SPILPScheduler,
        OptRegScheduler.name: OptRegScheduler,
        PortfolioScheduler.name: PortfolioScheduler,
    }


#: Exact (MILP-backed) methods: orders of magnitude slower than the
#: heuristics; callers iterating the registry may want to cap their
#: time limits or skip them on large loops.
EXACT_SCHEDULERS = ("spilp", "optreg")

#: Virtual methods that delegate to other registry entries (the
#: portfolio races concrete members, so it cannot be one itself).
VIRTUAL_SCHEDULERS = ("portfolio",)


def available_schedulers() -> list[str]:
    """Registered scheduler names, stable order."""
    return list(_factories())


def scheduler_catalog() -> list[dict]:
    """Wire-safe registry description: one dict per scheduler.

    Served by ``GET /v1/schedulers`` so clients discover names and
    flags (``exact`` — MILP-backed, slow; ``virtual`` — delegates to
    other entries) instead of hardcoding them.
    """
    return [
        {
            "name": name,
            "exact": name in EXACT_SCHEDULERS,
            "virtual": name in VIRTUAL_SCHEDULERS,
        }
        for name in available_schedulers()
    ]


def __getattr__(name: str):
    # DEFAULT_BATCH_SCHEDULERS is derived from the registry order (the
    # paper's baseline plus its primary comparator — the first two
    # entries), but resolving factories at import time would close the
    # repro.core import cycle, so it materialises lazily (PEP 562).
    if name == "DEFAULT_BATCH_SCHEDULERS":
        return tuple(available_schedulers()[:2])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_scheduler(name: str, **kwargs) -> ModuloScheduler:
    """Instantiate a scheduler by registry name."""
    try:
        factory = _factories()[name]
    except KeyError:
        raise ReproError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        ) from None
    return factory(**kwargs)
