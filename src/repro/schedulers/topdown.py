"""Top-Down scheduler (the Section 4.2 comparator, after Llosa et al. [15]).

Operations are visited in topological order of the acyclic condensation
(recurrence backward edges removed) with program-order tie-breaking, and
each is placed **as soon as possible** after its scheduled predecessors —
operations with no predecessors go as early as cycle 0 "in order not to
delay any possible successor" (Section 2), which is precisely what
stretches lifetimes like V5 in the motivating example.

Recurrence closers additionally respect the LateStart bound from their
scheduled successors (the backward edge's head is placed first in
topological order).
"""

from __future__ import annotations

from typing import Any

from repro.core.hypernode import HypernodeGraph
from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.graph.traversal import topological_order
from repro.mii.analysis import MIIResult
from repro.mii.recurrences import all_backward_edge_keys
from repro.schedulers.base import (
    ModuloScheduler,
    early_start,
    late_start,
    scan_place,
    upward_window,
)


def acyclic_topological_order(
    graph: DependenceGraph, analysis: MIIResult
) -> list[str]:
    """Topological order after removing recurrence backward edges."""
    dropped = all_backward_edge_keys(analysis.subgraphs)
    working = HypernodeGraph(graph, dropped_edge_keys=dropped)
    return topological_order(working)


class TopDownScheduler(ModuloScheduler):
    """ASAP list scheduling in topological order."""

    name = "topdown"

    def prepare(self, session: SchedulingSession) -> list[str]:
        return acyclic_topological_order(session.graph, session.analysis)

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        order: list[str] = context
        graph = session.graph
        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        for name in order:
            op = graph.operation(name)
            es = early_start(graph, start, name, ii)
            ls = late_start(graph, start, name, ii)
            es = 0 if es is None else es
            if ls is not None and es > ls:
                return None
            window = upward_window(es, ii, ls)
            cycle = scan_place(mrt, op, window)
            if cycle is None:
                return None
            start[name] = cycle
        return start
