"""FRLC — Wang & Eisenbeis's decomposed software pipelining [23].

The published method decomposes modulo scheduling into (1) choosing *row
numbers* (which iteration-relative stage each operation belongs to, i.e. a
retiming that removes loop-carried edges) and (2) list-scheduling the
resulting acyclic graph.  Both decisions optimise the initiation interval
only; register pressure is never consulted — which is exactly the role the
paper assigns FRLC in Table 1.

Our implementation computes the cyclic-ASAP time of every operation at the
candidate II (equivalent to the retiming ``row = asap // II`` composed
with the in-row offset) and list-schedules in that priority, placing each
operation as soon as possible.  Flat-ASAP placement is aggressive about
the II and indifferent to lifetimes, reproducing FRLC's behaviour:
competitive initiation intervals, materially worse buffer counts.
"""

from __future__ import annotations

from typing import Any

from repro.engine.session import SchedulingSession
from repro.schedulers.base import (
    ModuloScheduler,
    early_start,
    late_start,
    scan_place,
    upward_window,
)


class FRLCScheduler(ModuloScheduler):
    """Decomposed software pipelining (register-insensitive)."""

    name = "frlc"

    def prepare(self, session: SchedulingSession) -> dict[str, int]:
        return dict(session.op_index)

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        position: dict[str, int] = context
        graph = session.graph
        asap = session.cyclic_asap(ii)
        if asap is None:
            return None
        order = sorted(graph.node_names(), key=lambda n: (asap[n], position[n]))

        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        for name in order:
            op = graph.operation(name)
            es = early_start(graph, start, name, ii)
            # The retiming floor keeps every op at or after its cyclic-ASAP
            # time, so recurrence circuits are never stretched beyond
            # distance * II by construction.
            es = max(asap[name], es if es is not None else 0)
            ls = late_start(graph, start, name, ii)
            if ls is not None and es > ls:
                return None
            window = upward_window(es, ii, ls)
            cycle = scan_place(mrt, op, window)
            if cycle is None:
                return None
            start[name] = cycle
        return start
