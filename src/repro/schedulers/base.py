"""Shared scheduler driver and placement arithmetic.

The II search loop is identical for every heuristic scheduler: compute the
MII, prepare whatever per-loop state the method needs (HRMS's ordering, for
example, is computed **once** and reused across II attempts — one of the
paper's selling points), then try II = MII, MII+1, … until an attempt
places every operation.

The EarlyStart/LateStart formulas of Section 3.3 are shared here too::

    EarlyStart(u) = max over scheduled preds v:  t_v + lambda_v - delta * II
    LateStart(u)  = min over scheduled succs v:  t_v - lambda_u + delta * II

(maximised/minimised per *edge*, so parallel edges and recurrence closers
are handled uniformly; self-dependences are skipped — they are satisfied by
``II >= RecMII``).
"""

from __future__ import annotations

import abc
import time
from typing import Any, Iterable

from repro.errors import IterationLimitError
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.machine.mrt import ModuloReservationTable
from repro.mii.analysis import MIIResult, compute_mii
from repro.schedule.schedule import Schedule, ScheduleStats


def early_start(
    graph: DependenceGraph,
    start: dict[str, int],
    name: str,
    ii: int,
) -> int | None:
    """Earliest issue cycle allowed by already-scheduled predecessors."""
    bound: int | None = None
    for edge in graph.in_edges(name):
        if edge.src == name or edge.src not in start:
            continue
        candidate = (
            start[edge.src]
            + graph.operation(edge.src).latency
            - edge.distance * ii
        )
        bound = candidate if bound is None else max(bound, candidate)
    return bound


def late_start(
    graph: DependenceGraph,
    start: dict[str, int],
    name: str,
    ii: int,
) -> int | None:
    """Latest issue cycle allowed by already-scheduled successors."""
    latency = graph.operation(name).latency
    bound: int | None = None
    for edge in graph.out_edges(name):
        if edge.dst == name or edge.dst not in start:
            continue
        candidate = start[edge.dst] - latency + edge.distance * ii
        bound = candidate if bound is None else min(bound, candidate)
    return bound


def scan_place(
    mrt: ModuloReservationTable,
    op,
    candidates: Iterable[int],
) -> int | None:
    """Place *op* at the first candidate cycle with a free unit.

    Delegates to the MRT's vectorized whole-window scan, which tests
    every candidate row in one rolled-mask operation.
    """
    return mrt.scan_place(op, candidates)


def upward_window(es: int, ii: int, ls: int | None = None) -> range:
    """Cycles ES .. ES+II-1, optionally clipped at a late bound."""
    top = es + ii - 1
    if ls is not None:
        top = min(top, ls)
    return range(es, top + 1)


def downward_window(ls: int, ii: int, es: int | None = None) -> range:
    """Cycles LS .. LS-II+1, optionally clipped at an early bound."""
    bottom = ls - ii + 1
    if es is not None:
        bottom = max(bottom, es)
    return range(ls, bottom - 1, -1)


class ModuloScheduler(abc.ABC):
    """Template for heuristic modulo schedulers.

    Subclasses implement :meth:`prepare` (per-loop, II-independent state)
    and :meth:`attempt` (one try at a fixed II, returning the start map or
    ``None``).
    """

    #: Human-readable method name used in reports.
    name: str = "abstract"

    def __init__(self, max_ii: int | None = None) -> None:
        self._max_ii = max_ii

    # ------------------------------------------------------------------
    def schedule(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: MIIResult | None = None,
    ) -> Schedule:
        """Produce a schedule, searching II upward from the MII."""
        wall_start = time.perf_counter()
        if analysis is None:
            analysis = compute_mii(graph, machine)

        prep_start = time.perf_counter()
        context = self.prepare(graph, machine, analysis)
        prep_seconds = time.perf_counter() - prep_start

        ii_limit = self._ii_limit(graph, analysis)
        attempts = 0
        sched_start = time.perf_counter()
        for ii in range(analysis.mii, ii_limit + 1):
            attempts += 1
            start = self.attempt(graph, machine, ii, context)
            if start is not None:
                now = time.perf_counter()
                stats = ScheduleStats(
                    scheduler=self.name,
                    mii=analysis.mii,
                    resmii=analysis.resmii,
                    recmii=analysis.recmii,
                    attempts=attempts,
                    ordering_seconds=prep_seconds,
                    scheduling_seconds=now - sched_start,
                    total_seconds=now - wall_start,
                )
                return Schedule(graph, machine, ii, start, stats)
        raise IterationLimitError(ii_limit)

    def _ii_limit(self, graph: DependenceGraph, analysis: MIIResult) -> int:
        if self._max_ii is not None:
            return self._max_ii
        # A fully sequential iteration always fits once II covers the whole
        # span of one iteration plus slack for modulo wrap effects.
        return analysis.mii + graph.total_latency() + len(graph) + 8

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: MIIResult,
    ) -> Any:
        """Build II-independent state (orderings, distance matrices, …)."""

    @abc.abstractmethod
    def attempt(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        """Try to schedule at a fixed *ii*; ``None`` signals failure."""
