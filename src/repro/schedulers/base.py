"""Shared scheduler driver and placement arithmetic.

The II search loop is identical for every heuristic scheduler: compute the
MII, prepare whatever per-loop state the method needs (HRMS's ordering, for
example, is computed **once** and reused across II attempts — one of the
paper's selling points), then try II = MII, MII+1, … until an attempt
places every operation.

The EarlyStart/LateStart formulas of Section 3.3 are shared here too::

    EarlyStart(u) = max over scheduled preds v:  t_v + lambda_v - delta * II
    LateStart(u)  = min over scheduled succs v:  t_v - lambda_u + delta * II

(maximised/minimised per *edge*, so parallel edges and recurrence closers
are handled uniformly; self-dependences are skipped — they are satisfied by
``II >= RecMII``).
"""

from __future__ import annotations

import abc
import time
from typing import Any, Iterable

from repro import cancel
from repro.engine.session import SchedulingSession
from repro.errors import IterationLimitError
from repro.obs import trace
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.machine.mrt import ModuloReservationTable
from repro.mii.analysis import MIIResult
from repro.schedule.schedule import Schedule, ScheduleStats


def early_start(
    graph: DependenceGraph,
    start: dict[str, int],
    name: str,
    ii: int,
) -> int | None:
    """Earliest issue cycle allowed by already-scheduled predecessors."""
    bound: int | None = None
    for edge in graph.in_edges(name):
        if edge.src == name or edge.src not in start:
            continue
        candidate = (
            start[edge.src]
            + graph.operation(edge.src).latency
            - edge.distance * ii
        )
        bound = candidate if bound is None else max(bound, candidate)
    return bound


def late_start(
    graph: DependenceGraph,
    start: dict[str, int],
    name: str,
    ii: int,
) -> int | None:
    """Latest issue cycle allowed by already-scheduled successors."""
    latency = graph.operation(name).latency
    bound: int | None = None
    for edge in graph.out_edges(name):
        if edge.dst == name or edge.dst not in start:
            continue
        candidate = start[edge.dst] - latency + edge.distance * ii
        bound = candidate if bound is None else min(bound, candidate)
    return bound


def scan_place(
    mrt: ModuloReservationTable,
    op,
    candidates: Iterable[int],
) -> int | None:
    """Place *op* at the first candidate cycle with a free unit.

    Delegates to the MRT's vectorized whole-window scan, which tests
    every candidate row in one rolled-mask operation.
    """
    return mrt.scan_place(op, candidates)


def default_ii_limit(graph: DependenceGraph, mii: int) -> int:
    """The II every driver is guaranteed to reach without a user cap.

    A fully sequential iteration always fits once II covers the whole
    span of one iteration plus slack for modulo wrap effects — the
    bound the driver's II search stops at, the II the sequential
    fallback schedule uses, and the upper limit the QA ``ii-bounds``
    oracle holds every schedule to (one definition, three consumers).
    """
    return mii + graph.total_latency() + len(graph) + 8


def neighbor_directed_attempt(
    session: SchedulingSession,
    ii: int,
    order: list[str],
    closers_down: bool = False,
    stagger: int = 0,
) -> dict[str, int] | None:
    """One placement attempt using the paper's direction rule.

    Shared fallback for the bidirectional schedulers (HRMS, SMS).
    Their primary attempts classify an operation by which *transitive*
    bounds exist — but the MinDist matrix gives almost every operation
    both an EarlyStart and a LateStart once any recurrence node is
    placed, so nearly everything scans ASAP.  An operation whose only
    *scheduled direct neighbours* are successors then gets parked at
    its transitive EarlyStart (often far too early), which can pin a
    later recurrence closer into a one-cycle window on an occupied row
    — at **every** II, so the driver's II+1 retry loops to exhaustion
    (found by the QA fuzzing campaign; minimized in ``tests/corpus/``).

    Here the scan *direction* follows Section 3.3's actual rule —
    scheduled direct predecessors only → ASAP, successors only → ALAP,
    both (recurrence closers) → the two-sided window, scanned upward or
    (``closers_down``) downward — while the window *limits* still come
    from the exact transitive bounds.

    ``stagger`` rotates every multi-candidate scan by that many cycles,
    so boundary cycles (an op's exact EarlyStart/LateStart) are tried
    *last*.  Greedy boundary placement is what pinches later one-cycle
    windows onto occupied rows — an op parked at exactly its LS both
    freezes a successor's window and squats on the row that successor
    needs; staggering leaves the boundary free whenever an alternative
    slot exists.
    """
    graph = session.graph
    bounds = session.start_bounds(ii)
    if bounds is None:
        return None
    index = session.op_index
    mrt = session.mrt(ii)
    start: dict[str, int] = {}
    for name in order:
        op = graph.operation(name)
        es = bounds.early_start(index[name])
        ls = bounds.late_start(index[name])
        if es is not None and ls is not None and es > ls:
            return None
        has_pred = any(
            edge.src != name and edge.src in start
            for edge in graph.in_edges(name)
        )
        has_succ = any(
            edge.dst != name and edge.dst in start
            for edge in graph.out_edges(name)
        )
        if has_succ and not has_pred and ls is not None:
            window = downward_window(ls, ii, es)
        elif has_pred and has_succ and closers_down and ls is not None:
            window = downward_window(ls, ii, es)
        elif es is not None:
            window = upward_window(es, ii, ls)
        elif ls is not None:
            window = downward_window(ls, ii)
        else:
            window = upward_window(0, ii)
        candidates: Iterable[int] = window
        if stagger:
            cycles = list(window)
            if len(cycles) > 1:
                shift = stagger % len(cycles)
                candidates = cycles[shift:] + cycles[:shift]
        cycle = scan_place(mrt, op, candidates)
        if cycle is None:
            return None
        start[name] = cycle
        bounds.place(index[name], cycle)
    return start


def bidirectional_attempt(
    session: SchedulingSession,
    ii: int,
    order: list[str],
    both_down: bool = False,
) -> dict[str, int] | None:
    """One bidirectional placement pass with transitive bounds.

    The primary attempt shared by HRMS and SMS (their orderings differ,
    their placement rule does not): each operation in *order* scans an
    II-long window anchored by its transitive EarlyStart/LateStart —
    upward when only predecessors constrain it, downward when only
    successors do, two-sided for recurrence closers.  ``both_down``
    anchors the two-sided scan at the LateStart end instead (the rescue
    for windows wider than II; see the HRMS scheduler's notes).
    """
    graph = session.graph
    bounds = session.start_bounds(ii)
    if bounds is None:
        return None  # II below RecMII; cannot happen from the driver
    index = session.op_index
    mrt = session.mrt(ii)
    start: dict[str, int] = {}
    for name in order:
        op = graph.operation(name)
        es = bounds.early_start(index[name])
        ls = bounds.late_start(index[name])
        if es is not None and ls is None:
            window = upward_window(es, ii)
        elif ls is not None and es is None:
            window = downward_window(ls, ii)
        elif es is not None and ls is not None:
            if es > ls:
                return None
            if both_down:
                # Anchor the II-length scan at the LateStart end: the
                # upward window [ES, ES+II-1] can miss the feasible
                # region entirely when LS - ES exceeds II.
                window = downward_window(ls, ii, es)
            else:
                window = upward_window(es, ii, ls)
        else:
            window = upward_window(0, ii)
        cycle = scan_place(mrt, op, window)
        if cycle is None:
            return None
        start[name] = cycle
        bounds.place(index[name], cycle)
    return start


def sequential_fallback_schedule(
    graph: DependenceGraph, machine: MachineModel, ii: int
) -> dict[str, int] | None:
    """The existence proof made executable: one operation at a time.

    Issues the operations in a topological order of the distance-0
    subgraph, each after the previous one's latency, so for ``ii`` at
    least the loop body's whole serial span every constraint holds by
    construction: intra-iteration edges are satisfied by the ordering
    and the latency-wide gaps, loop-carried edges by ``ii`` exceeding
    every issue cycle, and resources by the reservations being disjoint
    in absolute cycles that never wrap.  Returns ``None`` when *ii* is
    too small for the construction (or the distance-0 subgraph is
    cyclic, in which case no schedule exists at any II).
    """
    strides = {
        op.name: max(op.latency, machine.reservation_cycles(op), 1)
        for op in graph.operations()
    }
    if ii < sum(strides.values()):
        return None
    indegree = {name: 0 for name in graph.node_names()}
    for edge in graph.edges():
        if edge.distance == 0 and edge.src != edge.dst:
            indegree[edge.dst] += 1
    ready = [name for name in graph.node_names() if indegree[name] == 0]
    start: dict[str, int] = {}
    cursor = 0
    while ready:
        name = ready.pop(0)
        start[name] = cursor
        cursor += strides[name]
        for edge in graph.out_edges(name):
            if edge.distance != 0 or edge.dst == name:
                continue
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                ready.append(edge.dst)
    if len(start) != len(graph):
        return None  # zero-distance cycle: unschedulable at any II
    return start


def upward_window(es: int, ii: int, ls: int | None = None) -> range:
    """Cycles ES .. ES+II-1, optionally clipped at a late bound."""
    top = es + ii - 1
    if ls is not None:
        top = min(top, ls)
    return range(es, top + 1)


def downward_window(ls: int, ii: int, es: int | None = None) -> range:
    """Cycles LS .. LS-II+1, optionally clipped at an early bound."""
    bottom = ls - ii + 1
    if es is not None:
        bottom = max(bottom, es)
    return range(ls, bottom - 1, -1)


class ModuloScheduler(abc.ABC):
    """Template for heuristic modulo schedulers.

    Subclasses implement :meth:`prepare` (per-loop, II-independent state)
    and :meth:`attempt` (one try at a fixed II, returning the start map or
    ``None``).
    """

    #: Human-readable method name used in reports.
    name: str = "abstract"

    def __init__(self, max_ii: int | None = None) -> None:
        self._max_ii = max_ii

    # ------------------------------------------------------------------
    def schedule(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        analysis: MIIResult | None = None,
        session: SchedulingSession | None = None,
    ) -> Schedule:
        """Produce a schedule, searching II upward from the MII.

        ``session`` shares per-(graph, machine) engine state — the MII
        analysis, the sweeping MinDist frontier, per-attempt scratch —
        across searches (portfolio members, batch requests).  Without
        one a private session is created for this search.
        """
        if session is None:
            session = SchedulingSession(graph, machine, analysis)
        if analysis is None:
            analysis = session.analysis
        if trace.ACTIVE is None:
            return self._search(graph, machine, session, analysis)
        with trace.span(
            "scheduler.search", scheduler=self.name, mii=analysis.mii
        ) as tspan:
            schedule = self._search(graph, machine, session, analysis)
            if tspan is not None:
                tspan.attrs["ii"] = schedule.ii
                tspan.attrs["attempts"] = schedule.stats.attempts
            return schedule

    def _search(
        self,
        graph: DependenceGraph,
        machine: MachineModel,
        session: SchedulingSession,
        analysis: MIIResult,
    ) -> Schedule:
        """The II search itself (tracing-agnostic)."""
        wall_start = time.perf_counter()

        prep_start = time.perf_counter()
        context = self.prepare(session)
        prep_seconds = time.perf_counter() - prep_start

        ii_limit = self._ii_limit(graph, analysis)
        attempts = 0
        sched_start = time.perf_counter()
        for ii in range(analysis.mii, ii_limit + 1):
            # Cooperative cancellation: the II search is the only
            # unbounded loop in the library, so a service deadline is
            # honoured here, between attempts (no-op when unarmed).
            cancel.check()
            attempts += 1
            start = self.attempt(session, ii, context)
            if trace.ACTIVE is not None:
                trace.add_event(
                    "attempt", {"ii": ii, "placed": start is not None}
                )
            if start is not None:
                now = time.perf_counter()
                stats = ScheduleStats(
                    scheduler=self.name,
                    mii=analysis.mii,
                    resmii=analysis.resmii,
                    recmii=analysis.recmii,
                    attempts=attempts,
                    ordering_seconds=prep_seconds,
                    scheduling_seconds=now - sched_start,
                    total_seconds=now - wall_start,
                )
                return Schedule(graph, machine, ii, start, stats)
        if self._max_ii is None:
            # The default limit was *chosen* so a fully sequential
            # iteration fits — make that existence proof the schedule
            # instead of failing.  Heuristic window scans can pinch a
            # recurrence node into an II-invariant dead end (see the QA
            # corpus), in which case no amount of II growth helps; the
            # sequential construction cannot.  A user-supplied max_ii
            # is a real cap, so exhausting it still raises.
            start = sequential_fallback_schedule(graph, machine, ii_limit)
            if start is not None:
                now = time.perf_counter()
                stats = ScheduleStats(
                    scheduler=self.name,
                    mii=analysis.mii,
                    resmii=analysis.resmii,
                    recmii=analysis.recmii,
                    attempts=attempts + 1,
                    ordering_seconds=prep_seconds,
                    scheduling_seconds=time.perf_counter() - sched_start,
                    total_seconds=now - wall_start,
                )
                return Schedule(graph, machine, ii_limit, start, stats)
        raise IterationLimitError(ii_limit)

    def _ii_limit(self, graph: DependenceGraph, analysis: MIIResult) -> int:
        if self._max_ii is not None:
            return self._max_ii
        return default_ii_limit(graph, analysis.mii)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, session: SchedulingSession) -> Any:
        """Build II-independent state (orderings, distance matrices, …).

        The session exposes the loop (``session.graph``), the target
        (``session.machine``) and the shared MII analysis
        (``session.analysis``).
        """

    @abc.abstractmethod
    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        """Try to schedule at a fixed *ii*; ``None`` signals failure.

        Per-II state (the MinDist matrix, StartBounds, the MRT) comes
        from the session — attempts at consecutive IIs advance the
        sweep incrementally instead of re-solving from scratch.
        """
