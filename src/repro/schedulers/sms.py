"""Swing Modulo Scheduling (SMS) — HRMS's published successor.

Llosa, González, Ayguadé & Valero refined HRMS into *Swing Modulo
Scheduling* (PACT'96), the register-sensitive software pipeliner later
adopted by GCC and LLVM.  It keeps HRMS's bidirectional placement but
replaces hypernode reduction with a lighter **mobility-driven ordering**:

1. Compute each operation's earliest/latest start at the MII
   (cyclic ASAP/ALAP via the MinDist machinery) and its *mobility*
   (slack = ALAP − ASAP; critical-path and recurrence nodes have zero).
2. Grow the order outward from the most critical node: at every step,
   among the unordered neighbours of the ordered set (falling back to all
   unordered nodes when a component is exhausted), pick the one with the
   least mobility — ties broken towards greater depth, then program
   order.  Growing neighbour-first "swings" the traversal back and forth
   across the graph, guaranteeing a scheduled reference operation exactly
   like HRMS's invariant.
3. Place each operation with the same EarlyStart/LateStart windows as
   HRMS (transitive bounds, II-long scans, II+1 on failure).

Included both as a usable scheduler (registry name ``"sms"``) and as the
repository's "future work" ablation: the SMS-vs-HRMS comparison shows
how much of HRMS's benefit survives the cheaper ordering.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.session import SchedulingSession
from repro.graph.ddg import DependenceGraph
from repro.schedulers.base import (
    ModuloScheduler,
    bidirectional_attempt,
    neighbor_directed_attempt,
)
from repro.schedulers.mindist import mindist_matrix


class SwingScheduler(ModuloScheduler):
    """Swing Modulo Scheduling (mobility-ordered bidirectional placement)."""

    name = "sms"

    def prepare(self, session: SchedulingSession) -> list[str]:
        mii = session.analysis.mii
        return swing_order(
            session.graph, mii, solved=session.mindist(max(mii, 1))
        )

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        order: list[str] = context
        result = bidirectional_attempt(session, ii, order,
                                       both_down=False)
        if result is not None:
            return result
        # Same rescue as HRMS: an ES-anchored II-length window can miss
        # the feasible region of a two-sided node when LS - ES > II.
        result = bidirectional_attempt(session, ii, order,
                                       both_down=True)
        if result is not None:
            return result
        # Same last resort as HRMS (see neighbor_directed_attempt): the
        # transitive-bound classification can pin a node into an
        # II-invariant one-cycle window; the paper's scheduled-neighbour
        # direction rule — and, failing that, the staggered scan that
        # keeps boundary cycles free — unsticks those loops.
        for closers_down, stagger in (
            (False, 0), (True, 0), (False, 1), (True, 1),
        ):
            result = neighbor_directed_attempt(
                session, ii, order,
                closers_down=closers_down, stagger=stagger,
            )
            if result is not None:
                return result
        return None


def swing_order(
    graph: DependenceGraph, mii: int, solved=None
) -> list[str]:
    """The SMS node order: least mobility first, grown over neighbours.

    ``solved`` accepts a precomputed MinDist result at ``max(mii, 1)``
    (the scheduler passes its session's matrix through); without one
    the shared solver is queried directly.
    """
    if solved is None:
        solved = mindist_matrix(graph, max(mii, 1))
    if solved is None:  # cannot happen for mii >= RecMII
        raise ValueError("infeasible MII for swing ordering")
    dist, names = solved
    index = {name: i for i, name in enumerate(names)}
    position = {name: i for i, name in enumerate(graph.node_names())}

    latencies = np.array(
        [graph.operation(name).latency for name in names], dtype=np.int64
    )
    asap = np.maximum(dist.max(axis=0), 0)
    horizon = int((asap + latencies).max())
    alap = horizon - (dist + latencies[None, :]).max(axis=1)
    alap = np.maximum(alap, asap)
    mobility = alap - asap
    depth = asap  # shallow critical nodes first: start at a chain's head

    def key(name: str) -> tuple:
        i = index[name]
        return (int(mobility[i]), int(depth[i]), position[name])

    ordered: list[str] = []
    remaining = set(names)
    frontier: set[str] = set()
    while remaining:
        pool = frontier or remaining
        pick = min(pool, key=key)
        ordered.append(pick)
        remaining.discard(pick)
        frontier.discard(pick)
        for other in graph.neighbors(pick):
            if other in remaining:
                frontier.add(other)
    return ordered
