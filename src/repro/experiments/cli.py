"""Command-line entry point: ``hrms-experiments <artefact>``.

Regenerates any table or figure of the paper::

    hrms-experiments motivating
    hrms-experiments table1 [--spilp-time-limit 30]
    hrms-experiments table2
    hrms-experiments table3
    hrms-experiments stats  [--loops 1258] [--jobs 8] [--backend process]
    hrms-experiments fig11  [--loops 1258] [--jobs 8]
    hrms-experiments fig12 | fig13 | fig14
    hrms-experiments ablations
    hrms-experiments frontend
    hrms-experiments portfolio [--loops 4] [--policy min_regs]
    hrms-experiments all [--quick]

``portfolio`` is not a paper artefact: it races the scheduler
portfolio (:mod:`repro.portfolio`) for a sample of loops across every
built-in machine configuration and prints each loop's Pareto front
over the winners' (II, MaxLive).

``--quick`` shrinks the Perfect-Club population and SPILP's time limit so
the whole run finishes in about a minute (useful for CI).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import stats as stats_mod
from repro.experiments.ablations import (
    hypernode_sensitivity,
    phase_split,
    preordering_value,
    render_sensitivity,
)
from repro.experiments.fig11 import figure11, render_figure11
from repro.experiments.frontend_suite import (
    render_frontend_suite,
    run_frontend_suite,
)
from repro.experiments.fig12 import figure12, render_figure12
from repro.experiments.fig13 import figure13, render_figure13
from repro.experiments.fig14 import figure14, render_figure14
from repro.experiments.motivating import render_motivating, run_motivating
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, summarise
from repro.experiments.table3 import render_table3, summarise_times
from repro.machine.configs import govindarajan_machine, perfect_club_machine
from repro.workloads.govindarajan import govindarajan_suite
from repro.workloads.perfectclub import perfect_club_suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hrms-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artefact",
        choices=[
            "motivating", "table1", "table2", "table3", "stats",
            "fig11", "fig12", "fig13", "fig14", "ablations",
            "frontend", "portfolio", "all",
        ],
    )
    from repro.portfolio.policies import policy_names

    parser.add_argument(
        "--policy", choices=policy_names(), default=None,
        help="portfolio selection policy (portfolio artefact only)",
    )
    parser.add_argument(
        "--loops", type=int, default=1258,
        help="Perfect-Club population size (default: 1258)",
    )
    parser.add_argument(
        "--spilp-time-limit", type=float, default=30.0,
        help="per-loop MILP time limit in seconds (default: 30)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small population + tight solver limits",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers for the Perfect-Club study (default: 1 = serial, "
             "or all cores when a parallel --backend is named; "
             "0 = all cores)",
    )
    parser.add_argument(
        "--backend", choices=("process", "thread", "serial"), default=None,
        help="executor for the Perfect-Club study fan-out (default: "
             "process when --jobs > 1, serial otherwise); 'process' "
             "runs GIL-free with warm-started workers",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent artifact store directory: study rows are read "
             "from and written to DIR, so re-runs skip scheduling "
             "(shared with hrms-serve)",
    )
    args = parser.parse_args(argv)
    if args.policy is not None and args.artefact != "portfolio":
        parser.error("--policy only applies to the portfolio artefact")

    if args.quick:
        args.loops = min(args.loops, 150)
        args.spilp_time_limit = min(args.spilp_time_limit, 5.0)

    wanted = (
        ["motivating", "table1", "table2", "table3", "stats",
         "fig11", "fig12", "fig13", "fig14", "ablations", "frontend"]
        if args.artefact == "all"
        else [args.artefact]
    )

    table1_records = None
    study = None

    def get_table1():
        nonlocal table1_records
        if table1_records is None:
            table1_records = run_table1(
                spilp_time_limit=args.spilp_time_limit
            )
        return table1_records

    def get_study():
        nonlocal study
        if study is None:
            loops = perfect_club_suite(n_loops=args.loops)
            # An explicit parallel backend with no --jobs means "use the
            # cores" — not the serial default, which would silently
            # short-circuit the pool the user just asked for.
            jobs = args.jobs
            if jobs is None:
                jobs = 0 if args.backend in ("process", "thread") else 1
            mode = args.backend or ("serial" if jobs == 1 else "process")
            if args.store is not None:
                # The persistent store makes warm re-runs pure reads, so
                # route through the cache-aware runner even single-worker.
                from repro.experiments.runner import run_study_parallel
                from repro.service.store import persistent_study_cache

                study = run_study_parallel(
                    loops=loops,
                    max_workers=jobs if jobs > 0 else None,
                    mode=mode,
                    cache=persistent_study_cache(args.store),
                )
            elif jobs == 1 and args.backend is None:
                study = stats_mod.run_study(loops=loops)
            else:
                from repro.experiments.runner import run_study_parallel

                study = run_study_parallel(
                    loops=loops,
                    max_workers=jobs if jobs > 0 else None,
                    mode=mode,
                )
        return study

    for artefact in wanted:
        print(f"\n################ {artefact} ################")
        if artefact == "motivating":
            print(render_motivating(run_motivating()))
        elif artefact == "table1":
            print(render_table1(get_table1()))
        elif artefact == "table2":
            print(render_table2(summarise(get_table1())))
        elif artefact == "table3":
            print(render_table3(summarise_times(get_table1())))
        elif artefact == "stats":
            print(stats_mod.render_stats(stats_mod.aggregate(get_study())))
        elif artefact == "fig11":
            print(render_figure11(figure11(get_study())))
        elif artefact == "fig12":
            print(render_figure12(figure12(get_study())))
        elif artefact == "fig13":
            print(render_figure13(figure13(get_study())))
        elif artefact == "fig14":
            result = figure14(get_study())
            print(render_figure14(result))
        elif artefact == "frontend":
            print(render_frontend_suite(run_frontend_suite()))
        elif artefact == "portfolio":
            from repro.portfolio import render_sweep, sweep_portfolio

            # A small, capped sample: sweeps race every heuristic on
            # every machine config, so size is loops x machines x members.
            suite = govindarajan_suite()
            sample = suite[: max(1, min(args.loops, 8))]
            print(
                f"sweeping {len(sample)} of {len(suite)} loops "
                f"(capped at 8; each loop races the portfolio on every "
                f"built-in machine)\n"
            )
            for loop in sample:
                sweep = sweep_portfolio(loop.graph, policy=args.policy)
                print(render_sweep(sweep))
                front = ", ".join(
                    f"{entry.machine} (II {entry.result.winner_score.ii}, "
                    f"MaxLive {entry.result.winner_score.maxlive})"
                    for entry in sweep.front()
                )
                print(f"  pareto front: {front}\n")
        elif artefact == "ablations":
            machine = govindarajan_machine()
            sample = govindarajan_suite()[:8]
            print(render_sensitivity(
                hypernode_sensitivity(sample, machine)
            ))
            pc = perfect_club_suite(n_loops=min(args.loops, 200))
            value = preordering_value(pc, perfect_club_machine())
            print(
                f"\npre-ordering value on {value.loops} loops: "
                f"HRMS maxlive {value.hrms_maxlive} vs program-order "
                f"{value.ablated_maxlive} "
                f"(ratio {value.register_ratio:.2f}); optimal II "
                f"{value.hrms_optimal} vs {value.ablated_optimal}"
            )
            split = phase_split(pc, perfect_club_machine())
            print(
                f"phase split: ordering {split.ordering_share:.1%}, "
                f"placement {split.scheduling_share:.1%}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
