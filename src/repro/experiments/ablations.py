"""Ablations — design-choice checks the paper asserts but does not table.

* **Initial hypernode invariance** (Section 3.1, footnote 1): the paper
  claims the choice of starting node barely changes register pressure.
  :func:`hypernode_sensitivity` re-runs HRMS once per candidate starting
  node and reports the MaxLive spread per loop.

* **Value of the pre-ordering**: scheduling the same bidirectional placer
  in plain program order (no hypernode reduction) shows how much of
  HRMS's advantage comes from the ordering itself.
  :func:`preordering_value` compares the two on a loop population.

* **Phase cost split** (Section 4.2): ordering is claimed to be a small
  fraction of total scheduling time; :func:`phase_split` measures it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.scheduler import HRMSScheduler
from repro.engine.session import SchedulingSession
from repro.experiments.results import render_table
from repro.graph.ddg import DependenceGraph
from repro.machine.machine import MachineModel
from repro.schedule.maxlive import max_live
from repro.schedulers.base import (
    ModuloScheduler,
    downward_window,
    early_start,
    late_start,
    scan_place,
    upward_window,
)
from repro.workloads.loops import Loop


@dataclass
class SensitivityRow:
    loop: str
    candidates: int
    min_maxlive: int
    max_maxlive: int
    min_ii: int
    max_ii: int


def hypernode_sensitivity(
    loops: list[Loop],
    machine: MachineModel,
    max_candidates: int = 8,
) -> list[SensitivityRow]:
    """Run HRMS from several initial hypernodes; report the spread."""
    rows = []
    for loop in loops:
        names = loop.graph.node_names()[:max_candidates]
        maxlives: list[int] = []
        iis: list[int] = []
        for name in names:
            scheduler = HRMSScheduler(initial_hypernode=name)
            schedule = scheduler.schedule(loop.graph, machine)
            maxlives.append(max_live(schedule))
            iis.append(schedule.ii)
        rows.append(
            SensitivityRow(
                loop=loop.name,
                candidates=len(names),
                min_maxlive=min(maxlives),
                max_maxlive=max(maxlives),
                min_ii=min(iis),
                max_ii=max(iis),
            )
        )
    return rows


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    headers = ["Loop", "starts", "MaxLive min", "MaxLive max", "II min",
               "II max"]
    return render_table(
        headers,
        [
            [r.loop, r.candidates, r.min_maxlive, r.max_maxlive, r.min_ii,
             r.max_ii]
            for r in rows
        ],
    )


class ProgramOrderScheduler(ModuloScheduler):
    """HRMS's placement rules without its ordering (the ablated variant).

    Operations are visited in program order; each is placed as soon /
    as late as possible depending on which neighbours happen to be
    scheduled — the bidirectional placer is identical to HRMS's, so any
    difference in output is attributable to the pre-ordering phase.
    """

    name = "program-order"

    def prepare(self, session: SchedulingSession) -> list[str]:
        return session.graph.node_names()

    def attempt(
        self,
        session: SchedulingSession,
        ii: int,
        context: Any,
    ) -> dict[str, int] | None:
        order: list[str] = context
        graph = session.graph
        mrt = session.mrt(ii)
        start: dict[str, int] = {}
        for name in order:
            op = graph.operation(name)
            es = early_start(graph, start, name, ii)
            ls = late_start(graph, start, name, ii)
            if es is not None and ls is None:
                window = upward_window(es, ii)
            elif ls is not None and es is None:
                window = downward_window(ls, ii)
            elif es is not None and ls is not None:
                if es > ls:
                    return None
                window = upward_window(es, ii, ls)
            else:
                window = upward_window(0, ii)
            cycle = scan_place(mrt, op, window)
            if cycle is None:
                return None
            start[name] = cycle
        return start


@dataclass
class PreorderingValue:
    loops: int
    hrms_maxlive: int
    ablated_maxlive: int
    hrms_optimal: int
    ablated_optimal: int

    @property
    def register_ratio(self) -> float:
        return (
            self.hrms_maxlive / self.ablated_maxlive
            if self.ablated_maxlive
            else 0.0
        )


def preordering_value(
    loops: list[Loop], machine: MachineModel
) -> PreorderingValue:
    """Compare full HRMS against the program-order ablation."""
    from repro.mii.analysis import compute_mii

    hrms = HRMSScheduler()
    ablated = ProgramOrderScheduler()
    h_live = a_live = h_opt = a_opt = 0
    for loop in loops:
        analysis = compute_mii(loop.graph, machine)
        hs = hrms.schedule(loop.graph, machine, analysis)
        try:
            as_ = ablated.schedule(loop.graph, machine, analysis)
        except Exception:
            continue
        h_live += max_live(hs)
        a_live += max_live(as_)
        h_opt += hs.ii == analysis.mii
        a_opt += as_.ii == analysis.mii
    return PreorderingValue(
        loops=len(loops),
        hrms_maxlive=h_live,
        ablated_maxlive=a_live,
        hrms_optimal=h_opt,
        ablated_optimal=a_opt,
    )


@dataclass
class PhaseSplit:
    ordering_share: float
    scheduling_share: float


def phase_split(loops: list[Loop], machine: MachineModel) -> PhaseSplit:
    """Measure pre-ordering vs placement time over a loop population."""
    scheduler = HRMSScheduler()
    ordering = placing = total = 0.0
    for loop in loops:
        schedule = scheduler.schedule(loop.graph, machine)
        ordering += schedule.stats.ordering_seconds
        placing += schedule.stats.scheduling_seconds
        total += schedule.stats.total_seconds
    return PhaseSplit(
        ordering_share=ordering / total if total else 0.0,
        scheduling_share=placing / total if total else 0.0,
    )
