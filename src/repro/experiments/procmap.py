"""Warm-start process mapping for CPU-bound experiment fan-out.

:func:`repro.experiments.runner.parallel_map` routes its ``"process"``
mode through here.  The difference from a bare
:class:`~concurrent.futures.ProcessPoolExecutor` is the **per-worker
warm start**: every worker process runs :func:`_initializer` once,
which imports the full scheduler stack, materialises the machine-config
catalog and exercises the MinDist engine
(:func:`repro.engine.warm_start`) — so the first loop a worker
schedules pays none of the one-time costs, and a study's wall time
measures scheduling, not interpreter start-up.

The map is order-preserving and chunked (one IPC round-trip carries
several loops); workers share nothing, which is exactly right for the
embarrassingly parallel study workload.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _initializer() -> None:
    """Per-worker warm start (see the module docstring)."""
    from repro.engine import warm_start
    from repro.machine.configs import canonical_machines

    canonical_machines()
    warm_start()


def process_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    max_workers: int | None = None,
    chunksize: int | None = None,
) -> list[Any]:
    """Order-preserving process-pool map with warm-started workers.

    ``chunksize=None`` picks ``len(items) / (workers * 4)`` — large
    enough to amortise pickling, small enough to keep workers balanced.
    A single item or a single worker short-circuits to a plain loop
    (no pool, no warm-up).
    """
    workers = max_workers if max_workers is not None else _default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=min(workers, len(items)), initializer=_initializer
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
