"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.experiments.motivating` — Figures 2–4 (Section 2).
* :mod:`repro.experiments.table1` — Table 1 (II/buffers/time, 24 loops).
* :mod:`repro.experiments.table2` — Table 2 (better/equal/worse summary).
* :mod:`repro.experiments.table3` — Table 3 (total compilation time).
* :mod:`repro.experiments.stats` — Section 4.2's aggregate statistics and
  the shared Perfect-Club study all figure harnesses reuse.
* :mod:`repro.experiments.fig11` / ``fig12`` / ``fig13`` — cumulative
  register-requirement distributions (static, dynamic, +invariants).
* :mod:`repro.experiments.fig14` — execution cycles under register
  budgets (∞/64/32) with spilling.
* :mod:`repro.experiments.ablations` — design-choice checks (initial
  hypernode invariance, value of the pre-ordering, phase-time split).
* :mod:`repro.experiments.runner` — ``concurrent.futures``-based
  parallel study runner with per-loop result caching.
* :mod:`repro.experiments.cli` — ``hrms-experiments`` command-line entry.
"""
