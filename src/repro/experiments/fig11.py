"""Figure 11 — static cumulative distribution of variant registers.

For each scheduler, the fraction of *loops* whose loop variants need at
most ``x`` registers (MaxLive), for x = 0 … the suite's maximum.  The
reproduced claim: the HRMS curve lies above (left of) Top-Down's — at any
register budget, more loops fit — with an average requirement around 87 %
of Top-Down's.
"""

from __future__ import annotations

from repro.experiments.results import cumulative_distribution, render_table
from repro.experiments.stats import PerfectStudy

#: Register counts the rendering samples (the paper marks 32 and 64).
SAMPLE_POINTS = (8, 16, 32, 64)


def figure11(study: PerfectStudy) -> dict[str, list[tuple[int, float]]]:
    """Cumulative series per scheduler (static: every loop weighs 1)."""
    series: dict[str, list[tuple[int, float]]] = {}
    top = max(
        row.maxlive
        for record in study.records
        for row in record.rows.values()
    )
    for name in study.schedulers:
        values = [record.rows[name].maxlive for record in study.records]
        series[name] = cumulative_distribution(values, upto=top)
    return series


def render_figure11(
    series: dict[str, list[tuple[int, float]]],
    points: tuple[int, ...] = SAMPLE_POINTS,
) -> str:
    """Table of the curves sampled at the paper's reference points."""
    from repro.experiments.results import series_at

    headers = ["registers <="] + [str(p) for p in points]
    rows = []
    for name, curve in series.items():
        rows.append(
            [name] + [f"{series_at(curve, p):.1%}" for p in points]
        )
    return render_table(headers, rows)
