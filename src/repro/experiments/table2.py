"""Table 2 — HRMS versus each other method, loop by loop.

For every competitor the paper counts the loops where HRMS achieves a
lower / equal / higher initiation interval and, within the II ties, the
loops where HRMS needs fewer / equal / more buffers.  The expectation
being reproduced: HRMS matches SPILP nearly everywhere and dominates the
other heuristics (it obtains a lower II on a noticeable fraction of loops
and rarely loses on buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import LoopRecord, render_table


@dataclass
class Comparison:
    """HRMS-vs-one-method tallies (the paper's Table 2 row)."""

    method: str
    ii_better: int = 0
    ii_equal: int = 0
    ii_worse: int = 0
    buf_better: int = 0
    buf_equal: int = 0
    buf_worse: int = 0
    skipped: int = 0


def summarise(
    records: list[LoopRecord], baseline: str = "hrms"
) -> list[Comparison]:
    """Tally HRMS against every other method present in *records*."""
    methods: dict[str, None] = {}
    for record in records:
        for method in record.results:
            if method != baseline:
                methods.setdefault(method, None)

    comparisons = []
    for method in methods:
        comparison = Comparison(method=method)
        for record in records:
            ours = record.result(baseline)
            theirs = record.result(method)
            if (
                ours is None
                or theirs is None
                or ours.failed
                or theirs.failed
            ):
                comparison.skipped += 1
                continue
            if ours.ii < theirs.ii:
                comparison.ii_better += 1
            elif ours.ii > theirs.ii:
                comparison.ii_worse += 1
            else:
                comparison.ii_equal += 1
                if ours.buffers < theirs.buffers:
                    comparison.buf_better += 1
                elif ours.buffers > theirs.buffers:
                    comparison.buf_worse += 1
                else:
                    comparison.buf_equal += 1
        comparisons.append(comparison)
    return comparisons


def render_table2(comparisons: list[Comparison]) -> str:
    """Text rendering in the paper's layout."""
    headers = [
        "vs", "II<", "II=", "II>", "Buf<", "Buf=", "Buf>", "skipped",
    ]
    rows = [
        [
            c.method,
            c.ii_better,
            c.ii_equal,
            c.ii_worse,
            c.buf_better,
            c.buf_equal,
            c.buf_worse,
            c.skipped,
        ]
        for c in comparisons
    ]
    return render_table(headers, rows)
