"""Figure 13 — dynamic distribution of variants *plus* invariants.

Loop invariants occupy one register each for the whole execution
regardless of the schedule, so both schedulers shift right by the same
per-loop amount; the paper highlights that a material share of execution
time needs more than 32 (and even 64) total registers, motivating the
register-budget experiment of Figure 14.
"""

from __future__ import annotations

from repro.experiments.fig11 import SAMPLE_POINTS, render_figure11
from repro.experiments.results import cumulative_distribution
from repro.experiments.stats import PerfectStudy


def figure13(study: PerfectStudy) -> dict[str, list[tuple[int, float]]]:
    """Execution-time-weighted distribution of variants + invariants."""
    series: dict[str, list[tuple[int, float]]] = {}
    top = max(
        row.maxlive + record.loop.invariants
        for record in study.records
        for row in record.rows.values()
    )
    for name in study.schedulers:
        values = [
            record.rows[name].maxlive + record.loop.invariants
            for record in study.records
        ]
        weights = [
            float(record.rows[name].ii * record.loop.iterations)
            for record in study.records
        ]
        series[name] = cumulative_distribution(values, weights, upto=top)
    return series


def render_figure13(series: dict[str, list[tuple[int, float]]]) -> str:
    """Same sampled-table rendering as Figures 11/12."""
    return render_figure11(series, points=SAMPLE_POINTS)
