"""Table 1 — II, buffers and scheduling time for the 24-loop comparison.

For every loop of the Govindarajan suite and every method (HRMS, SPILP,
Slack, FRLC — Top-Down optionally added for context) the harness reports
the achieved initiation interval, the buffer requirement (Govindarajan's
metric) and the wall-clock scheduling time.  SPILP failures (time-limit or
solver errors) are recorded rather than raised, matching how such entries
would be reported in practice.
"""

from __future__ import annotations

import time

from repro.errors import SchedulingError, SolverError
from repro.experiments.results import LoopRecord, MethodResult, render_table
from repro.machine.configs import govindarajan_machine
from repro.mii.analysis import compute_mii
from repro.schedule.buffers import buffer_requirements
from repro.schedule.maxlive import max_live
from repro.schedule.verify import verify_schedule
from repro.schedulers.registry import make_scheduler
from repro.workloads.govindarajan import govindarajan_suite
from repro.workloads.loops import Loop

#: The methods Table 1 compares, in the paper's column order.
TABLE1_METHODS = ("hrms", "spilp", "slack", "frlc")


def run_table1(
    loops: list[Loop] | None = None,
    methods: tuple[str, ...] = TABLE1_METHODS,
    machine=None,
    spilp_time_limit: float = 30.0,
    verify: bool = True,
) -> list[LoopRecord]:
    """Schedule every loop with every method; returns one record per loop."""
    loops = loops if loops is not None else govindarajan_suite()
    machine = machine or govindarajan_machine()
    records: list[LoopRecord] = []
    for loop in loops:
        analysis = compute_mii(loop.graph, machine)
        record = LoopRecord(
            loop=loop.name,
            size=len(loop.graph),
            mii=analysis.mii,
            resmii=analysis.resmii,
            recmii=analysis.recmii,
        )
        for method in methods:
            kwargs = (
                {"time_limit": spilp_time_limit} if method == "spilp" else {}
            )
            scheduler = make_scheduler(method, **kwargs)
            began = time.perf_counter()
            try:
                schedule = scheduler.schedule(loop.graph, machine, analysis)
            except (SolverError, SchedulingError):
                record.results[method] = MethodResult(
                    method=method,
                    ii=0,
                    buffers=0,
                    maxlive=0,
                    seconds=time.perf_counter() - began,
                    mii=analysis.mii,
                    failed=True,
                )
                continue
            if verify:
                verify_schedule(schedule)
            record.results[method] = MethodResult(
                method=method,
                ii=schedule.ii,
                buffers=buffer_requirements(schedule),
                maxlive=max_live(schedule),
                seconds=time.perf_counter() - began,
                mii=analysis.mii,
            )
        records.append(record)
    return records


def render_table1(records: list[LoopRecord]) -> str:
    """Text rendering in the paper's layout (one loop per row)."""
    methods = _methods_of(records)
    headers = ["Loop", "MII"]
    for method in methods:
        headers += [f"{method}.II", f"{method}.Buf", f"{method}.s"]
    rows = []
    for record in records:
        row: list[object] = [record.loop, record.mii]
        for method in methods:
            result = record.result(method)
            if result is None or result.failed:
                row += ["-", "-", "-"]
            else:
                row += [result.ii, result.buffers, round(result.seconds, 3)]
        rows.append(row)
    return render_table(headers, rows)


def _methods_of(records: list[LoopRecord]) -> list[str]:
    methods: dict[str, None] = {}
    for record in records:
        for method in record.results:
            methods.setdefault(method, None)
    return list(methods)
