"""Figure 14 — execution cycles with infinite, 64 and 32 registers.

Every loop is scheduled by each method; when variants + invariants exceed
the register budget, spill code is inserted and the loop re-scheduled
(:mod:`repro.spill`).  Execution time is ``II × iterations`` summed over
the suite.  The reproduced claims:

* with unlimited registers the two schedulers are nearly tied (both reach
  MII almost everywhere);
* at 64 and, more strongly, at 32 registers HRMS's lower pressure means
  less spill code and fewer cycles — the paper reports HRMS ~43 % faster
  at 64 registers and ~21 % faster at 32 on its machine, and that
  HRMS @ 32 runs about as fast as Top-Down @ 64.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.results import render_table
from repro.experiments.stats import PerfectStudy
from repro.machine.configs import perfect_club_machine
from repro.schedulers.registry import make_scheduler
from repro.spill.spiller import schedule_with_register_budget

#: The register budgets of Figure 14 (None = infinite).
BUDGETS: tuple[int | None, ...] = (None, 64, 32)


@dataclass
class BudgetOutcome:
    """One scheduler's suite-wide cycle count under one budget."""

    method: str
    budget: int | None
    total_cycles: int
    spilled_loops: int
    spilled_values: int
    unfit_loops: int


@dataclass
class Figure14Result:
    outcomes: list[BudgetOutcome] = field(default_factory=list)

    def cycles(self, method: str, budget: int | None) -> int:
        for outcome in self.outcomes:
            if outcome.method == method and outcome.budget == budget:
                return outcome.total_cycles
        raise KeyError((method, budget))


def figure14(
    study: PerfectStudy,
    budgets: tuple[int | None, ...] = BUDGETS,
    machine=None,
) -> Figure14Result:
    """Run the register-budget experiment on the study's loop population."""
    machine = machine or perfect_club_machine()
    result = Figure14Result()
    for method in study.schedulers:
        scheduler = make_scheduler(method)
        for budget in budgets:
            total = 0
            spilled_loops = 0
            spilled_values = 0
            unfit = 0
            for record in study.records:
                loop = record.loop
                outcome = schedule_with_register_budget(
                    loop.graph,
                    machine,
                    scheduler,
                    budget,
                    invariants=loop.invariants,
                )
                total += outcome.schedule.execution_cycles(loop.iterations)
                if outcome.spill_count:
                    spilled_loops += 1
                    spilled_values += outcome.spill_count
                if not outcome.fits:
                    unfit += 1
            result.outcomes.append(
                BudgetOutcome(
                    method=method,
                    budget=budget,
                    total_cycles=total,
                    spilled_loops=spilled_loops,
                    spilled_values=spilled_values,
                    unfit_loops=unfit,
                )
            )
    return result


def render_figure14(result: Figure14Result) -> str:
    """Bar-chart-as-table: total cycles per (method, budget)."""
    headers = [
        "Method", "registers", "cycles", "spilled loops", "spilled values",
        "unfit",
    ]
    rows = []
    for outcome in result.outcomes:
        rows.append(
            [
                outcome.method,
                "inf" if outcome.budget is None else outcome.budget,
                outcome.total_cycles,
                outcome.spilled_loops,
                outcome.spilled_values,
                outcome.unfit_loops,
            ]
        )
    return render_table(headers, rows)
