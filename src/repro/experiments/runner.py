"""Parallel experiment runner.

The figure/table harnesses schedule large loop populations (the full
Perfect-Club study is 1258 loops x several schedulers) and every loop is
independent — an embarrassingly parallel workload the seed ran serially.
This module fans a study out over a :mod:`concurrent.futures` executor:

* :func:`parallel_map` — order-preserving map over an executor
  (``process`` for CPU-bound scheduling, ``thread`` for quick tests,
  ``serial`` as the zero-dependency fallback);
* :func:`run_study_parallel` — a drop-in parallel equivalent of
  :func:`repro.experiments.stats.run_study` with **per-loop result
  caching**: structurally identical graphs (by
  :func:`repro.engine.graph_fingerprint`) are scheduled once, and a
  caller-supplied cache dict carries results across repeated studies.

Results are deterministic: output order follows input order regardless
of worker completion order, and every scheduler in this library is
itself deterministic.  Timing fields (``seconds`` etc.) naturally vary
between runs and between serial/parallel execution.
"""

from __future__ import annotations

import os
from collections.abc import MutableMapping
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.engine.mindist import graph_fingerprint
from repro.experiments.stats import PerfectStudy, StudyRecord, StudyRow, _row_of
from repro.machine.configs import perfect_club_machine
from repro.machine.machine import MachineModel
from repro.mii.analysis import compute_mii
from repro.schedulers import registry
from repro.schedulers.registry import make_scheduler
from repro.workloads.loops import Loop
from repro.workloads.perfectclub import perfect_club_suite

#: Executor kinds :func:`parallel_map` accepts.
MODES = ("process", "thread", "serial")


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _machine_fingerprint(machine: MachineModel) -> tuple:
    """Structural identity of a machine (names alone can collide)."""
    return (
        machine.name,
        tuple(
            (unit.name, unit.count, unit.pipelined)
            for unit in machine.unit_classes()
        ),
    )


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    max_workers: int | None = None,
    mode: str = "process",
) -> list[Any]:
    """Map *fn* over *items*, preserving order.

    ``mode`` picks the executor: ``"process"`` (CPU-bound work, runs
    GIL-free through :func:`repro.experiments.procmap.process_map`
    with warm-started workers), ``"thread"`` (cheap to spawn; fine for
    NumPy-heavy work that releases the GIL), or ``"serial"`` (no
    executor at all).  A single item, a single worker, or
    ``mode="serial"`` short-circuits to a plain loop.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    workers = max_workers if max_workers is not None else _default_workers()
    if mode == "serial" or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if mode == "process":
        from repro.experiments.procmap import process_map

        return process_map(fn, items, max_workers=workers)
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def _study_worker(
    task: tuple[Loop, tuple[str, ...], MachineModel],
) -> tuple[int, dict[str, StudyRow]]:
    """Schedule one loop with every scheduler (runs in a worker)."""
    loop, schedulers, machine = task
    analysis = compute_mii(loop.graph, machine)
    rows: dict[str, StudyRow] = {}
    for name in schedulers:
        schedule = make_scheduler(name).schedule(loop.graph, machine, analysis)
        rows[name] = _row_of(schedule)
    return analysis.mii, rows


def run_study_parallel(
    loops: list[Loop] | None = None,
    schedulers: tuple[str, ...] | None = None,
    machine: MachineModel | None = None,
    n_loops: int | None = None,
    *,
    max_workers: int | None = None,
    mode: str = "process",
    cache: MutableMapping | None = None,
) -> PerfectStudy:
    """Parallel drop-in for :func:`repro.experiments.stats.run_study`.

    ``schedulers=None`` means the registry-derived
    :data:`repro.schedulers.registry.DEFAULT_BATCH_SCHEDULERS` (the
    baseline and its primary comparator).  Structurally identical loops
    are scheduled once (keyed by graph fingerprint + machine +
    scheduler set); pass the same *cache* mapping to successive calls
    to reuse results across studies.  Any mutable mapping works — a
    plain dict for in-process reuse, or
    :func:`repro.service.store.persistent_study_cache` to persist rows
    in the on-disk artifact store across runs and processes
    (``hrms-experiments --store DIR``).
    """
    if schedulers is None:
        schedulers = registry.DEFAULT_BATCH_SCHEDULERS
    if loops is None:
        loops = perfect_club_suite(
            n_loops=n_loops if n_loops is not None else 1258
        )
    machine = machine or perfect_club_machine()
    cache = cache if cache is not None else {}

    machine_key = _machine_fingerprint(machine)
    keys = [
        (graph_fingerprint(loop.graph), schedulers, machine_key)
        for loop in loops
    ]
    pending: dict[tuple, Loop] = {}
    for key, loop in zip(keys, loops):
        if key not in cache and key not in pending:
            pending[key] = loop

    if pending:
        tasks = [(loop, schedulers, machine) for loop in pending.values()]
        outcomes = parallel_map(
            _study_worker, tasks, max_workers=max_workers, mode=mode
        )
        for key, outcome in zip(pending, outcomes):
            cache[key] = outcome

    records = []
    for key, loop in zip(keys, loops):
        mii, rows = cache[key]
        records.append(StudyRecord(loop=loop, mii=mii, rows=dict(rows)))
    return PerfectStudy(records=records, schedulers=tuple(schedulers))
