"""Figures 2–4 — the motivating example, end to end.

Produces, for Top-Down, Bottom-Up and HRMS: the one-iteration schedule,
the variant lifetimes, the kernel, and the per-row live-register counts —
the four panels of each of the paper's Figures 2, 3 and 4.  The numbers
are pinned by regression tests: 8 / 7 / 6 registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.configs import motivating_machine
from repro.schedule.kernel import render_kernel
from repro.schedule.lifetimes import compute_lifetimes
from repro.schedule.maxlive import live_values_per_row, max_live
from repro.schedule.schedule import Schedule
from repro.schedulers.registry import make_scheduler
from repro.workloads.motivating import motivating_example

#: The figure order in the paper: Fig 2, Fig 3, Fig 4.
METHODS = ("topdown", "bottomup", "hrms")


@dataclass
class MotivatingPanel:
    """One figure's worth of data."""

    method: str
    schedule: Schedule
    registers: int
    per_row: list[int]


def run_motivating() -> list[MotivatingPanel]:
    """Schedule the example with the three methods of Section 2."""
    graph = motivating_example()
    machine = motivating_machine()
    panels = []
    for method in METHODS:
        schedule = make_scheduler(method).schedule(graph, machine)
        panels.append(
            MotivatingPanel(
                method=method,
                schedule=schedule,
                registers=max_live(schedule),
                per_row=live_values_per_row(schedule),
            )
        )
    return panels


def render_motivating(panels: list[MotivatingPanel]) -> str:
    """All four sub-figures per method, as text."""
    blocks = []
    for panel in panels:
        schedule = panel.schedule
        lines = [
            f"=== {panel.method} (Figure "
            f"{2 + METHODS.index(panel.method)}) ===",
            f"II = {schedule.ii}, stage count = {schedule.stage_count}",
            "schedule: "
            + ", ".join(
                f"{name}@{schedule.issue_cycle(name)}"
                for name in schedule.graph.node_names()
            ),
            "lifetimes:",
        ]
        for lifetime in compute_lifetimes(schedule):
            lines.append(
                f"  {lifetime.producer}: [{lifetime.start}, "
                f"{lifetime.end})  length {lifetime.length}"
            )
        lines.append(render_kernel(schedule))
        lines.append(
            f"live per kernel row: {panel.per_row} -> "
            f"{panel.registers} registers"
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
