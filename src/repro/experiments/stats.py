"""Section 4.2 — the Perfect-Club study shared by Figures 11–14.

Schedules the whole loop population with HRMS and the Top-Down comparator
and gathers everything the figures need: per-loop II, MII, MaxLive of the
variants, invariant counts, iteration counts, and per-phase timing.  The
aggregate statistics the paper quotes are reproduced by
:func:`aggregate`:

* fraction of loops scheduled at II = MII (paper: 97.5 %);
* average II / MII (paper: 1.01);
* dynamic performance — iteration-weighted MII/II (paper: 98.4 %);
* pre-ordering's share of scheduling time (paper: 9 % ordering vs
  87.8 % placement);
* the mean HRMS/Top-Down variant-register ratio (paper: 87 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.configs import perfect_club_machine
from repro.mii.analysis import compute_mii
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule
from repro.schedulers import registry
from repro.schedulers.registry import make_scheduler
from repro.workloads.loops import Loop
from repro.workloads.perfectclub import perfect_club_suite


@dataclass
class StudyRow:
    """Per-loop outcome for one scheduler."""

    ii: int
    maxlive: int
    seconds: float
    ordering_seconds: float
    scheduling_seconds: float


@dataclass
class StudyRecord:
    """One loop's results across schedulers."""

    loop: Loop
    mii: int
    rows: dict[str, StudyRow] = field(default_factory=dict)


@dataclass
class PerfectStudy:
    """The full study: per-loop records plus run parameters."""

    records: list[StudyRecord]
    schedulers: tuple[str, ...]

    def loops(self) -> list[Loop]:
        return [record.loop for record in self.records]


def run_study(
    loops: list[Loop] | None = None,
    schedulers: tuple[str, ...] | None = None,
    machine=None,
    n_loops: int | None = None,
) -> PerfectStudy:
    """Schedule the population with every scheduler.

    ``schedulers=None`` means the registry-derived
    :data:`repro.schedulers.registry.DEFAULT_BATCH_SCHEDULERS`.
    """
    if schedulers is None:
        schedulers = registry.DEFAULT_BATCH_SCHEDULERS
    if loops is None:
        loops = perfect_club_suite(
            n_loops=n_loops if n_loops is not None else 1258
        )
    machine = machine or perfect_club_machine()
    records: list[StudyRecord] = []
    for loop in loops:
        analysis = compute_mii(loop.graph, machine)
        record = StudyRecord(loop=loop, mii=analysis.mii)
        for name in schedulers:
            schedule = make_scheduler(name).schedule(
                loop.graph, machine, analysis
            )
            record.rows[name] = _row_of(schedule)
        records.append(record)
    return PerfectStudy(records=records, schedulers=tuple(schedulers))


def _row_of(schedule: Schedule) -> StudyRow:
    return StudyRow(
        ii=schedule.ii,
        maxlive=max_live(schedule),
        seconds=schedule.stats.total_seconds,
        ordering_seconds=schedule.stats.ordering_seconds,
        scheduling_seconds=schedule.stats.scheduling_seconds,
    )


@dataclass
class AggregateStats:
    """The Section 4.2 headline numbers."""

    loops: int
    optimal_fraction: float
    mean_ii_over_mii: float
    dynamic_performance: float
    ordering_time_share: float
    scheduling_time_share: float
    register_ratio_vs: dict[str, float]


def aggregate(
    study: PerfectStudy, baseline: str = "hrms"
) -> AggregateStats:
    """Compute the paper's aggregate claims from a study."""
    records = study.records
    n = len(records)
    optimal = sum(1 for r in records if r.rows[baseline].ii == r.mii)
    mean_ratio = (
        sum(r.rows[baseline].ii / r.mii for r in records) / n if n else 0.0
    )
    ideal_cycles = sum(r.mii * r.loop.iterations for r in records)
    real_cycles = sum(
        r.rows[baseline].ii * r.loop.iterations for r in records
    )
    dynamic = ideal_cycles / real_cycles if real_cycles else 0.0

    total = sum(r.rows[baseline].seconds for r in records)
    ordering = sum(r.rows[baseline].ordering_seconds for r in records)
    placing = sum(r.rows[baseline].scheduling_seconds for r in records)

    ratios: dict[str, float] = {}
    for other in study.schedulers:
        if other == baseline:
            continue
        ours = sum(r.rows[baseline].maxlive for r in records)
        theirs = sum(r.rows[other].maxlive for r in records)
        ratios[other] = ours / theirs if theirs else 0.0

    return AggregateStats(
        loops=n,
        optimal_fraction=optimal / n if n else 0.0,
        mean_ii_over_mii=mean_ratio,
        dynamic_performance=dynamic,
        ordering_time_share=ordering / total if total else 0.0,
        scheduling_time_share=placing / total if total else 0.0,
        register_ratio_vs=ratios,
    )


def render_stats(stats: AggregateStats) -> str:
    """One-line-per-claim text rendering."""
    lines = [
        f"loops scheduled:            {stats.loops}",
        f"II == MII:                  {stats.optimal_fraction:.1%}"
        "   (paper: 97.5%)",
        f"mean II / MII:              {stats.mean_ii_over_mii:.3f}"
        "  (paper: 1.01)",
        f"dynamic performance:        {stats.dynamic_performance:.1%}"
        "  (paper: 98.4%)",
        f"pre-ordering time share:    {stats.ordering_time_share:.1%}"
        "   (paper: ~9%)",
        f"placement time share:       {stats.scheduling_time_share:.1%}"
        "  (paper: ~87.8%)",
    ]
    for other, ratio in stats.register_ratio_vs.items():
        lines.append(
            f"register ratio vs {other}: {ratio:.1%}  (paper: ~87%)"
        )
    return "\n".join(lines)
