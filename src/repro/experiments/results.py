"""Shared result containers and plain-text rendering.

Every harness returns structured records and offers a ``render_*``
function that prints the same rows/series the paper's table or figure
reports, so the reproduction can be eyeballed against the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class MethodResult:
    """One scheduler's outcome on one loop."""

    method: str
    ii: int
    buffers: int
    maxlive: int
    seconds: float
    mii: int
    failed: bool = False

    @property
    def optimal(self) -> bool:
        """Did the method reach the loop's MII?"""
        return not self.failed and self.ii == self.mii


@dataclass
class LoopRecord:
    """All methods' outcomes on one loop."""

    loop: str
    size: int
    mii: int
    resmii: int
    recmii: int
    results: dict[str, MethodResult] = field(default_factory=dict)

    def result(self, method: str) -> MethodResult | None:
        return self.results.get(method)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width ASCII table (right-aligned numbers, left-aligned text)."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if _numeric(cells[i]) and i > 0
            else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    out = [line(list(headers))]
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    return bool(cell) and all(c.isdigit() or c in ".-+x%" for c in cell)


def cumulative_distribution(
    values: Sequence[int],
    weights: Sequence[float] | None = None,
    upto: int | None = None,
) -> list[tuple[int, float]]:
    """Cumulative fraction of (weighted) population with value <= x.

    Mirrors the paper's Figures 11–13: x is a register count, y the
    fraction of loops (static) or of execution time (dynamic) needing at
    most x registers.
    """
    if weights is None:
        weights = [1.0] * len(values)
    if len(weights) != len(values):
        raise ValueError("values and weights must have equal length")
    total = float(sum(weights))
    if total == 0:
        return []
    top = max(values, default=0) if upto is None else upto
    series: list[tuple[int, float]] = []
    acc = 0.0
    by_value: dict[int, float] = {}
    for value, weight in zip(values, weights):
        by_value[value] = by_value.get(value, 0.0) + weight
    for x in range(0, top + 1):
        acc += by_value.get(x, 0.0)
        series.append((x, acc / total))
    return series


def series_at(series: list[tuple[int, float]], x: int) -> float:
    """Value of a cumulative series at *x* (clamped to the ends)."""
    if not series:
        return 0.0
    if x < series[0][0]:
        return 0.0
    for point, frac in reversed(series):
        if point <= x:
            return frac
    return series[-1][1]
