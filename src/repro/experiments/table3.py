"""Table 3 — total scheduling time per method over the 24-loop suite.

The paper's headline: HRMS costs heuristic-class time (within a small
factor of Slack/FRLC) while SPILP costs up to two orders of magnitude
more, most of it on a single divide-heavy recurrence loop — our
``liv23s`` plays Livermore 23's role.  The harness also reports totals
with the stress loop excluded, reproducing the paper's "even without this
loop, HRMS is over 40 times faster [than SPILP]" aside in spirit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import LoopRecord, render_table

#: The SPILP stress loop excluded in the secondary comparison.
STRESS_LOOP = "liv23s"


@dataclass
class TimeTotals:
    """Per-method compilation-time aggregate."""

    method: str
    total_seconds: float
    without_stress: float
    failures: int


def summarise_times(records: list[LoopRecord]) -> list[TimeTotals]:
    """Total wall-clock per method (failed runs still cost their time)."""
    methods: dict[str, None] = {}
    for record in records:
        for method in record.results:
            methods.setdefault(method, None)

    totals = []
    for method in methods:
        total = 0.0
        trimmed = 0.0
        failures = 0
        for record in records:
            result = record.result(method)
            if result is None:
                continue
            total += result.seconds
            if record.loop != STRESS_LOOP:
                trimmed += result.seconds
            failures += result.failed
        totals.append(
            TimeTotals(
                method=method,
                total_seconds=total,
                without_stress=trimmed,
                failures=failures,
            )
        )
    return totals


def render_table3(totals: list[TimeTotals]) -> str:
    """Text rendering in the paper's layout plus the slowdown ratio."""
    base = next((t for t in totals if t.method == "hrms"), None)
    headers = ["Method", "Total(s)", f"w/o {STRESS_LOOP}(s)", "xHRMS", "fail"]
    rows = []
    for t in totals:
        ratio = (
            f"{t.total_seconds / base.total_seconds:.1f}x"
            if base and base.total_seconds > 0
            else "-"
        )
        rows.append(
            [
                t.method,
                round(t.total_seconds, 3),
                round(t.without_stress, 3),
                ratio,
                t.failures,
            ]
        )
    return render_table(headers, rows)
