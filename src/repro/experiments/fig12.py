"""Figure 12 — dynamic cumulative distribution of variant registers.

Same curves as Figure 11 but each loop is weighted by its execution time
(``II × iterations`` under the scheduler in question), answering "what
fraction of run time is spent in loops needing at most x registers".
Loops with large register pressure tend to be the long-running ones, so
the dynamic curves sit below the static ones — and HRMS still dominates
Top-Down.
"""

from __future__ import annotations

from repro.experiments.results import cumulative_distribution
from repro.experiments.stats import PerfectStudy
from repro.experiments.fig11 import SAMPLE_POINTS, render_figure11


def figure12(study: PerfectStudy) -> dict[str, list[tuple[int, float]]]:
    """Cumulative series per scheduler, weighted by execution time."""
    series: dict[str, list[tuple[int, float]]] = {}
    top = max(
        row.maxlive
        for record in study.records
        for row in record.rows.values()
    )
    for name in study.schedulers:
        values = [record.rows[name].maxlive for record in study.records]
        weights = [
            float(record.rows[name].ii * record.loop.iterations)
            for record in study.records
        ]
        series[name] = cumulative_distribution(values, weights, upto=top)
    return series


def render_figure12(series: dict[str, list[tuple[int, float]]]) -> str:
    """Same sampled-table rendering as Figure 11."""
    return render_figure11(series, points=SAMPLE_POINTS)
