"""Scheduler comparison on compiler-derived graphs.

The Table-1/Figure-11 suites are hand-built or synthetic; this experiment
closes the loop with graphs produced by the actual front end
(:mod:`repro.frontend`), the way the paper's ICTINEO pipeline fed its
scheduler.  Every bundled kernel is compiled and scheduled by every
heuristic method; the report compares achieved II (vs the MII), MaxLive
and scheduling time.

SPILP is excluded by default (MILP time on the bigger kernels) but can be
requested; it is the optimality yardstick on the small ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.results import render_table
from repro.frontend import compile_source, kernel_names, kernel_source
from repro.machine.configs import perfect_club_machine
from repro.machine.machine import MachineModel
from repro.mii.analysis import compute_mii
from repro.schedule.maxlive import max_live
from repro.schedule.verify import verify_schedule
from repro.schedulers.registry import make_scheduler

#: Methods compared by default (registry names).
DEFAULT_METHODS = ("hrms", "topdown", "bottomup", "slack", "ims", "sms", "frlc")


@dataclass
class KernelRow:
    """One kernel's outcome under one method."""

    kernel: str
    method: str
    mii: int
    ii: int
    maxlive: int
    seconds: float

    @property
    def optimal(self) -> bool:
        return self.ii == self.mii


@dataclass
class FrontendSuiteResult:
    rows: list[KernelRow] = field(default_factory=list)

    def for_method(self, method: str) -> list[KernelRow]:
        return [row for row in self.rows if row.method == method]

    def summary(self) -> dict[str, tuple[int, int, float]]:
        """method → (kernels at MII, total MaxLive, total seconds).

        MaxLive sums over *all* kernels so methods are comparable; a
        method that trades II for registers still shows its register
        total, with the II miss visible in the first column.
        """
        out: dict[str, tuple[int, int, float]] = {}
        methods = dict.fromkeys(row.method for row in self.rows)
        for method in methods:
            rows = self.for_method(method)
            out[method] = (
                sum(1 for r in rows if r.optimal),
                sum(r.maxlive for r in rows),
                sum(r.seconds for r in rows),
            )
        return out


def run_frontend_suite(
    methods: tuple[str, ...] = DEFAULT_METHODS,
    machine: MachineModel | None = None,
    kernels: tuple[str, ...] | None = None,
) -> FrontendSuiteResult:
    """Compile every kernel and schedule it with every method."""
    machine = machine or perfect_club_machine()
    names = kernels or tuple(kernel_names())
    loops = [
        compile_source(kernel_source(name), name=name) for name in names
    ]
    result = FrontendSuiteResult()
    for method in methods:
        scheduler = make_scheduler(method)
        for loop in loops:
            analysis = compute_mii(loop.graph, machine)
            began = time.perf_counter()
            schedule = scheduler.schedule(loop.graph, machine, analysis)
            elapsed = time.perf_counter() - began
            verify_schedule(schedule)
            result.rows.append(
                KernelRow(
                    kernel=loop.name,
                    method=method,
                    mii=analysis.mii,
                    ii=schedule.ii,
                    maxlive=max_live(schedule),
                    seconds=elapsed,
                )
            )
    return result


def render_frontend_suite(result: FrontendSuiteResult) -> str:
    """Two tables: per-kernel IIs and the method summary."""
    methods = list(dict.fromkeys(row.method for row in result.rows))
    kernels = list(dict.fromkeys(row.kernel for row in result.rows))
    by_key = {(r.kernel, r.method): r for r in result.rows}

    headers = ["Kernel", "MII"] + [f"{m} II/ML" for m in methods]
    rows = []
    for kernel in kernels:
        mii = by_key[(kernel, methods[0])].mii
        cells: list[object] = [kernel, mii]
        for method in methods:
            row = by_key[(kernel, method)]
            cells.append(f"{row.ii}/{row.maxlive}")
        rows.append(cells)
    per_kernel = render_table(headers, rows)

    summary_rows = [
        [method, at_mii, maxlive, f"{seconds:.3f}"]
        for method, (at_mii, maxlive, seconds) in result.summary().items()
    ]
    summary = render_table(
        ["Method", "kernels at MII", "total MaxLive", "time (s)"],
        summary_rows,
    )
    return f"{per_kernel}\n\n{summary}"
