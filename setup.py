"""Shim for environments without PEP 517 build tooling (offline installs).

`pip install -e .` reads pyproject.toml; this file only exists so that
`python setup.py develop` works where pip cannot bootstrap wheel/setuptools.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "hrms-experiments = repro.experiments.cli:main",
            "hrms-compile = repro.frontend.cli:main",
            "hrms-serve = repro.service.cli:serve_main",
            "hrms-submit = repro.service.cli:submit_main",
            "hrms-report = repro.obs.report:main",
            "hrms-fuzz = repro.qa.cli:main",
            "hrms-chaos = repro.qa.chaos:main",
            "hrms-conformance = repro.qa.conformance:main",
        ]
    }
)
