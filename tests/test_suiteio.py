"""Tests for loop-suite persistence."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.govindarajan import govindarajan_suite
from repro.workloads.perfectclub import perfect_club_suite
from repro.workloads.suiteio import (
    dump_suite,
    load_suite,
    suite_from_dict,
    suite_to_dict,
)


class TestSuiteIO:
    def test_round_trip_gov_suite(self, tmp_path):
        suite = govindarajan_suite()
        path = tmp_path / "gov.json"
        dump_suite(suite, path)
        loaded = load_suite(path)
        assert len(loaded) == len(suite)
        for a, b in zip(suite, loaded):
            assert a.graph.node_names() == b.graph.node_names()
            assert {e.key for e in a.graph.edges()} == {
                e.key for e in b.graph.edges()
            }
            assert a.iterations == b.iterations
            assert a.invariants == b.invariants
            assert a.source == b.source

    def test_round_trip_perfect_sample(self):
        suite = perfect_club_suite(n_loops=12)
        clone = suite_from_dict(suite_to_dict(suite))
        assert [l.name for l in clone] == [l.name for l in suite]

    def test_loaded_loops_schedule_identically(self, tmp_path,
                                               gov_machine):
        from repro.core.scheduler import HRMSScheduler

        suite = govindarajan_suite()[:4]
        path = tmp_path / "s.json"
        dump_suite(suite, path)
        loaded = load_suite(path)
        scheduler = HRMSScheduler()
        for a, b in zip(suite, loaded):
            sa = scheduler.schedule(a.graph, gov_machine)
            sb = scheduler.schedule(b.graph, gov_machine)
            assert sa.as_dict() == sb.as_dict()

    def test_unknown_version_rejected(self):
        with pytest.raises(WorkloadError):
            suite_from_dict({"format": 42, "loops": []})
