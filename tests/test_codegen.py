"""Tests for unrolled-kernel code generation."""

from repro.core.scheduler import HRMSScheduler
from repro.machine.configs import motivating_machine
from repro.schedule.allocator import allocate_registers
from repro.schedule.codegen import generate_unrolled_kernel
from repro.workloads.motivating import motivating_example


def paper_kernel():
    schedule = HRMSScheduler().schedule(
        motivating_example(), motivating_machine()
    )
    return schedule, generate_unrolled_kernel(schedule)


class TestUnrolledKernel:
    def test_every_copy_of_every_op_emitted(self):
        schedule, kernel = paper_kernel()
        emitted = [
            (op.operation, op.copy) for row in kernel.rows for op in row
        ]
        expected = {
            (name, copy)
            for name in schedule.graph.node_names()
            for copy in range(kernel.unroll)
        }
        assert set(emitted) == expected
        assert len(emitted) == len(expected)  # no duplicates

    def test_rows_cover_unrolled_span(self):
        _, kernel = paper_kernel()
        assert len(kernel.rows) == kernel.unroll * kernel.ii

    def test_stores_have_no_dest(self):
        _, kernel = paper_kernel()
        for row in kernel.rows:
            for op in row:
                if op.operation in ("C", "G"):
                    assert op.dest is None
                else:
                    assert op.dest is not None

    def test_consumer_reads_producers_register(self):
        schedule, kernel = paper_kernel()
        allocation = allocate_registers(schedule)
        # B (copy k) reads A's value of the same iteration (distance 0).
        for row in kernel.rows:
            for op in row:
                if op.operation != "B":
                    continue
                expected = f"r{allocation.assignment[('A', op.copy)]}"
                assert expected in op.sources

    def test_distinct_copies_use_distinct_registers_when_overlapping(self):
        schedule, kernel = paper_kernel()
        allocation = allocate_registers(schedule)
        # D's lifetime (3 cycles) exceeds II=2, so consecutive instances
        # coexist and must sit in different registers.
        assert (
            allocation.assignment[("D", 0)]
            != allocation.assignment[("D", 1)]
        )

    def test_render_contains_rows_and_registers(self):
        _, kernel = paper_kernel()
        text = kernel.render()
        assert "unrolled kernel" in text
        assert "r0" in text
