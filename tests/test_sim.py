"""Tests for the kernel simulator (cross-validation of the analytics)."""

import pytest

from repro.core.scheduler import HRMSScheduler
from repro.errors import ScheduleVerificationError
from repro.graph.builder import GraphBuilder
from repro.machine.configs import motivating_machine
from repro.schedule.maxlive import max_live
from repro.schedule.schedule import Schedule
from repro.sim.simulator import simulate
from repro.workloads.motivating import motivating_example


class TestSimulator:
    def test_peak_live_matches_maxlive_on_example(self):
        schedule = HRMSScheduler().schedule(
            motivating_example(), motivating_machine()
        )
        report = simulate(schedule, iterations=4 * schedule.stage_count)
        assert report.peak_live_steady == max_live(schedule) == 6

    def test_peak_live_matches_on_gov_suite(self, gov_suite, gov_machine):
        scheduler = HRMSScheduler()
        for loop in gov_suite:
            schedule = scheduler.schedule(loop.graph, gov_machine)
            report = simulate(
                schedule, iterations=4 * schedule.stage_count + 2
            )
            assert report.peak_live_steady == max_live(schedule), loop.name

    def test_peak_live_matches_on_pc_sample(self, pc_sample, pc_machine):
        scheduler = HRMSScheduler()
        for loop in pc_sample[:25]:
            schedule = scheduler.schedule(loop.graph, pc_machine)
            report = simulate(
                schedule, iterations=4 * schedule.stage_count + 2
            )
            assert report.peak_live_steady == max_live(schedule), loop.name

    def test_detects_premature_read(self, generic4):
        g = GraphBuilder().op("a", latency=2).op("b", deps=["a"]).build()
        broken = Schedule(g, generic4, ii=2, start={"a": 0, "b": 1})
        with pytest.raises(ScheduleVerificationError, match="reads"):
            simulate(broken, iterations=3)

    def test_check_can_be_disabled(self, generic4):
        g = GraphBuilder().op("a", latency=2).op("b", deps=["a"]).build()
        broken = Schedule(g, generic4, ii=2, start={"a": 0, "b": 1})
        report = simulate(broken, iterations=3, check_reads=False)
        assert report.reads_checked > 0

    def test_trace_collection(self):
        schedule = HRMSScheduler().schedule(
            motivating_example(), motivating_machine()
        )
        report = simulate(schedule, iterations=8, keep_trace=True)
        assert len(report.live_trace) == report.total_cycles + 1
        assert max(report.live_trace) == report.peak_live

    def test_requires_positive_iterations(self):
        schedule = HRMSScheduler().schedule(
            motivating_example(), motivating_machine()
        )
        with pytest.raises(ValueError):
            simulate(schedule, iterations=0)

    def test_loop_carried_reads_validated(self, generic4):
        g = (
            GraphBuilder()
            .op("acc", latency=1, deps=[("acc", 1)])
            .op("use", latency=1, deps=["acc"])
            .build()
        )
        schedule = HRMSScheduler().schedule(g, generic4)
        report = simulate(schedule, iterations=10)
        assert report.reads_checked > 10


class TestSteadyWindowSelection:
    """The fixed default-iterations bug: schedules whose length spans
    many IIs used to leave an empty steady window and report
    peak_live_steady = 0 (see tests/corpus/)."""

    def _long_chain_schedule(self, generic4):
        builder = GraphBuilder()
        builder.op("a0", latency=4)
        for i in range(1, 12):
            builder.op(f"a{i}", latency=4, deps=[f"a{i - 1}"])
        return HRMSScheduler().schedule(builder.build(), generic4)

    def test_default_iterations_auto_extend(self, generic4):
        from repro.sim.simulator import minimum_iterations

        schedule = self._long_chain_schedule(generic4)
        needed = minimum_iterations(schedule)
        assert needed > 20, "test premise: the old default was too short"
        report = simulate(schedule)  # old default would under-report 0
        assert report.iterations >= needed
        lo, hi = report.steady_window
        assert hi - lo >= schedule.ii
        assert report.peak_live_steady == max_live(schedule) > 0

    def test_auto_extend_disabled_raises(self, generic4):
        schedule = self._long_chain_schedule(generic4)
        with pytest.raises(ValueError, match="steady-state window"):
            simulate(schedule, iterations=5, auto_extend=False)

    def test_explicit_long_run_is_untouched(self, generic4):
        schedule = self._long_chain_schedule(generic4)
        report = simulate(schedule, iterations=100)
        assert report.iterations == 100
        assert report.peak_live_steady == max_live(schedule)

    def test_margin_covers_loop_carried_distances(self, generic4):
        g = (
            GraphBuilder()
            .op("acc", latency=1, deps=[("acc", 3)])
            .op("use", latency=1, deps=["acc"])
            .build()
        )
        schedule = HRMSScheduler().schedule(g, generic4)
        report = simulate(schedule)
        assert report.peak_live_steady == max_live(schedule)
