"""Failure-injection tests: every error path fires cleanly.

The library's contract is that misuse raises a :class:`ReproError`
subclass with an actionable message — never a bare ``KeyError`` or a
silent wrong answer.  These tests drive each documented failure mode.
"""

import pytest

from repro.errors import (
    AllocationError,
    DuplicateOperationError,
    IterationLimitError,
    MachineError,
    ReproError,
    ScheduleVerificationError,
    SpillError,
    UnknownOperationError,
    UnknownResourceError,
    ZeroDistanceCycleError,
)
from repro.frontend import compile_source
from repro.graph.builder import GraphBuilder
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import Edge
from repro.graph.ops import Operation
from repro.machine.configs import govindarajan_machine
from repro.machine.machine import MachineModel, UnitClass
from repro.schedule.schedule import Schedule
from repro.schedule.verify import verify_schedule
from repro.schedulers.registry import make_scheduler


class TestGraphErrors:
    def test_duplicate_operation(self):
        graph = DependenceGraph("g")
        graph.add_operation(Operation("a"))
        with pytest.raises(DuplicateOperationError, match="'a'"):
            graph.add_operation(Operation("a"))

    def test_edge_to_unknown_operation(self):
        graph = DependenceGraph("g")
        graph.add_operation(Operation("a"))
        with pytest.raises(UnknownOperationError, match="'ghost'"):
            graph.add_edge(Edge("a", "ghost"))

    def test_zero_distance_cycle_rejected(self):
        with pytest.raises(ZeroDistanceCycleError):
            (
                GraphBuilder("cycle")
                .op("a", deps=["b"])
                .op("b", deps=["a"])
                .build()
            )

    def test_zero_distance_cycle_allowed_with_distance(self):
        graph = (
            GraphBuilder("rec")
            .op("a", deps=[("b", 1)])
            .op("b", deps=["a"])
            .build()
        )
        assert len(graph) == 2

    def test_subgraph_of_unknown_nodes(self):
        graph = GraphBuilder("g").op("a").build()
        with pytest.raises(UnknownOperationError):
            graph.subgraph(["a", "nope"])


class TestMachineErrors:
    def test_machine_without_units(self):
        with pytest.raises(MachineError, match="at least one"):
            MachineModel("empty", units=[])

    def test_duplicate_unit_class(self):
        with pytest.raises(MachineError, match="duplicate"):
            MachineModel(
                "dup", units=[UnitClass("mem", 1), UnitClass("mem", 2)]
            )

    def test_zero_count_unit_class(self):
        with pytest.raises(MachineError, match="count"):
            UnitClass("mem", 0)

    def test_unknown_opclass_at_scheduling_time(self):
        graph = GraphBuilder("g").op("a", "vector", latency=1).build()
        machine = govindarajan_machine()
        with pytest.raises(UnknownResourceError, match="'vector'"):
            make_scheduler("hrms").schedule(graph, machine)

    def test_frontend_kernel_on_wrong_machine(self):
        # Perfect-club profile emits fsqrt ops; the Table-1 machine has
        # no such class.
        loop = compile_source(
            "real s\nreal x(9)\ndo i = 1, 9\n  s = sqrt(x(i))\nend do"
        )
        with pytest.raises(UnknownResourceError, match="fsqrt"):
            make_scheduler("hrms").schedule(
                loop.graph, govindarajan_machine()
            )


class TestSchedulingErrors:
    def test_ii_limit_exhaustion(self):
        graph = (
            GraphBuilder("g")
            .load("a")
            .load("b")
            .load("c")
            .store("s", deps=["a", "b", "c"])
            .build()
        )
        machine = govindarajan_machine()
        with pytest.raises(IterationLimitError, match="up to 2"):
            make_scheduler("hrms", max_ii=2).schedule(graph, machine)

    def test_verifier_rejects_broken_dependence(self):
        graph = (
            GraphBuilder("g")
            .load("a")
            .add("b", deps=["a"])
            .store("c", deps=["b"])
            .build()
        )
        machine = govindarajan_machine()
        good = make_scheduler("hrms").schedule(graph, machine)
        bad = Schedule(
            graph,
            machine,
            good.ii,
            {"a": 0, "b": 0, "c": 5},  # b issues before a completes
            good.stats,
        )
        with pytest.raises(ScheduleVerificationError, match="violated"):
            verify_schedule(bad)

    def test_verifier_rejects_resource_oversubscription(self):
        graph = (
            GraphBuilder("g").load("a").load("b").store("c").build()
        )
        machine = govindarajan_machine()
        good = make_scheduler("hrms").schedule(graph, machine)
        bad = Schedule(
            graph,
            machine,
            good.ii,
            {"a": 0, "b": 0, "c": 0},  # three mem ops in one row, 1 unit
            good.stats,
        )
        with pytest.raises(ScheduleVerificationError):
            verify_schedule(bad)

    def test_base_error_catches_everything(self):
        graph = GraphBuilder("g").op("a", "vector").build()
        with pytest.raises(ReproError):
            make_scheduler("hrms").schedule(graph, govindarajan_machine())

    def test_unknown_scheduler_name(self):
        with pytest.raises(ReproError, match="unknown scheduler"):
            make_scheduler("quantum")


class TestSpillAndAllocationErrors:
    def test_spill_budget_too_small(self):
        from repro.spill.spiller import schedule_with_register_budget

        graph = (
            GraphBuilder("wide")
            .load("a")
            .load("b")
            .mul("m", deps=["a"])
            .add("s", deps=["m", "b"])
            .store("st", deps=["s"])
            .build()
        )
        machine = govindarajan_machine()
        outcome = schedule_with_register_budget(
            graph, machine, make_scheduler("hrms"), budget=1
        )
        # A budget of one register cannot hold this loop: the outcome
        # reports not-fitting rather than raising (Figure 14 counts
        # these loops), but the schedule is still valid.
        assert not outcome.fits
        verify_schedule(outcome.schedule)

    def test_rotating_allocator_search_cap(self):
        from repro.schedule import rotating

        graph = (
            GraphBuilder("g")
            .load("a")
            .add("b", deps=["a"])
            .store("c", deps=["b"])
            .build()
        )
        machine = govindarajan_machine()
        schedule = make_scheduler("hrms").schedule(graph, machine)
        original = rotating.MAX_ROTATING_REGISTERS
        rotating.MAX_ROTATING_REGISTERS = 0
        try:
            with pytest.raises(AllocationError, match="exceeded"):
                rotating.allocate_rotating(schedule)
        finally:
            rotating.MAX_ROTATING_REGISTERS = original
