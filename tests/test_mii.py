"""Unit tests for ResMII / RecMII / recurrence-subgraph analysis."""

from repro.graph.builder import GraphBuilder
from repro.machine.configs import GOVINDARAJAN_LATENCIES
from repro.mii.analysis import compute_mii
from repro.mii.recmii import compute_recmii
from repro.mii.recurrences import (
    all_backward_edge_keys,
    find_recurrence_subgraphs,
)
from repro.mii.resmii import compute_resmii


def _gov_builder(name="g"):
    return GraphBuilder(name).defaults(**GOVINDARAJAN_LATENCIES)


class TestResMII:
    def test_generic_machine(self, generic4):
        b = GraphBuilder()
        for i in range(9):
            b.op(f"o{i}", latency=2)
        # ceil(9 ops / 4 units) = 3.
        assert compute_resmii(b.build(), generic4) == 3

    def test_typed_machine_busiest_class_wins(self, gov_machine):
        g = (
            _gov_builder()
            .load("l1").load("l2").load("l3")
            .add("a1", deps=["l1"])
            .build()
        )
        # 3 memory ops on 1 unit -> ResMII 3.
        assert compute_resmii(g, gov_machine) == 3

    def test_unpipelined_latency_floor(self, pc_machine):
        g = (
            GraphBuilder()
            .defaults(fdiv=17)
            .div("d1", deps=[])
            .build()
        )
        # One divide, but the unpipelined unit is busy 17 cycles.
        assert compute_resmii(g, pc_machine) == 17

    def test_empty_pressure_defaults_to_one(self, gov_machine):
        g = _gov_builder().add("a").build()
        assert compute_resmii(g, gov_machine) == 1


class TestRecMII:
    def test_acyclic_is_one(self):
        g = GraphBuilder().op("a").op("b").edge("a", "b").build()
        assert compute_recmii(g) == 1

    def test_simple_recurrence(self):
        g = (
            GraphBuilder()
            .op("a", latency=2)
            .op("b", latency=3, deps=["a"])
            .edge("b", "a", distance=1)
            .build()
        )
        assert compute_recmii(g) == 5

    def test_distance_divides_latency(self):
        g = (
            GraphBuilder()
            .op("a", latency=2)
            .op("b", latency=3, deps=["a"])
            .edge("b", "a", distance=2)
            .build()
        )
        assert compute_recmii(g) == 3  # ceil(5 / 2)

    def test_self_loop(self):
        g = GraphBuilder().op("a", latency=4, deps=[("a", 2)]).build()
        assert compute_recmii(g) == 2

    def test_max_over_circuits(self):
        g = (
            GraphBuilder()
            .op("a", latency=1)
            .op("b", latency=1, deps=["a"])
            .op("c", latency=5, deps=["a"])
            .edge("b", "a", distance=1)
            .edge("c", "a", distance=1)
            .build()
        )
        assert compute_recmii(g) == 6


class TestRecurrenceSubgraphs:
    def test_shared_backward_edge_merges(self):
        b = GraphBuilder()
        for name in "ABCDE":
            b.op(name)
        g = (
            b.edge("A", "B").edge("B", "C").edge("C", "E")
            .edge("A", "D").edge("D", "E")
            .edge("E", "A", distance=1)
            .build()
        )
        subs = find_recurrence_subgraphs(g)
        assert len(subs) == 1
        assert subs[0].nodes == ["A", "B", "C", "D", "E"]
        assert len(subs[0].circuits) == 2

    def test_distinct_backward_edges_stay_separate(self):
        b = GraphBuilder()
        for name in "ACDE":
            b.op(name)
        g = (
            b.edge("A", "C").edge("C", "D")
            .edge("D", "A", distance=1)
            .edge("C", "E").edge("E", "C", distance=1)
            .build()
        )
        subs = find_recurrence_subgraphs(g)
        assert len(subs) == 2

    def test_simplification_removes_shared_nodes(self):
        b = GraphBuilder()
        # Circuit 1 (longer, higher RecMII): A->B->C->A; circuit 2: C->D->C.
        g = (
            b.op("A", latency=3).op("B", latency=3, deps=["A"])
            .op("C", latency=3, deps=["B"])
            .op("D", latency=1, deps=["C"])
            .edge("C", "A", distance=1)
            .edge("D", "C", distance=1)
            .build()
        )
        subs = find_recurrence_subgraphs(g)
        assert subs[0].recmii >= subs[1].recmii
        first_nodes = set(subs[0].ordering_nodes)
        second_nodes = set(subs[1].ordering_nodes)
        assert not first_nodes & second_nodes
        assert "C" in first_nodes  # claimed by the more restrictive one

    def test_trivial_circuits_get_no_ordering_nodes(self):
        g = GraphBuilder().op("a", deps=[("a", 1)]).op("b", deps=["a"]).build()
        subs = find_recurrence_subgraphs(g)
        assert len(subs) == 1
        assert subs[0].is_trivial
        assert subs[0].ordering_nodes == []

    def test_backward_edge_union(self):
        b = GraphBuilder()
        g = (
            b.op("A").op("B", deps=["A"])
            .edge("B", "A", distance=1)
            .build()
        )
        keys = all_backward_edge_keys(find_recurrence_subgraphs(g))
        assert keys == {("B", "A", 1, "register")}


class TestComputeMII:
    def test_combined(self, gov_machine):
        g = (
            _gov_builder()
            .load("l")
            .mul("m", deps=["l", ("a", 1)])
            .add("a", deps=["m"])
            .build()
        )
        result = compute_mii(g, gov_machine)
        assert result.recmii == 3  # mul(2) + add(1) over distance 1
        assert result.resmii == 1
        assert result.mii == 3
        assert result.recurrence_constrained
