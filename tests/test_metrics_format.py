"""Prometheus text-exposition-format compliance of ``/metrics``.

A strict line-level lint: every sample parses, every series is
preceded by its ``# HELP``/``# TYPE`` headers, label values with
backslashes, quotes, and newlines are escaped per the spec.
"""

from __future__ import annotations

import re

from repro.service.metrics import (
    ServiceMetrics,
    escape_help,
    escape_label_value,
)

#: ``metric_name{labels} value`` — names per the Prometheus data model.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)

#: One ``key="value"`` pair; values may contain escaped specials.
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def lint(text: str) -> list[str]:
    """Every format violation found in *text* (empty = compliant)."""
    problems = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line:
            problems.append(f"line {number}: blank line")
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {number}: unknown comment {line!r}")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        # A summary's samples belong to the family name (strip the
        # _count/_sum suffix when the family itself was declared).
        family = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        if family not in typed:
            problems.append(f"line {number}: sample {name!r} has no # TYPE")
        if family not in helped:
            problems.append(f"line {number}: sample {name!r} has no # HELP")
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {number}: non-numeric value {match.group('value')!r}"
            )
        labels = match.group("labels")
        if labels is not None:
            inner = labels[1:-1]
            stripped = _LABEL.sub("", inner).replace(",", "")
            if stripped:
                problems.append(
                    f"line {number}: malformed labels {labels!r}"
                )
    return problems


def _populated_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    metrics.inc("jobs_submitted")
    metrics.inc("jobs_done", 3)
    metrics.observe_latency(0.125)
    metrics.observe_latency(0.5)
    metrics.observe("phase_seconds", 0.01, phase="queue")
    metrics.observe("phase_seconds", 0.25, phase="execute")
    metrics.observe("scheduler_seconds", 0.04, scheduler="hrms")
    return metrics


class TestFormatLint:
    def test_rendered_output_is_compliant(self):
        metrics = _populated_metrics()
        text = metrics.render_prometheus(
            gauges={"queue_depth": 2, "breaker_state": 0}
        )
        assert lint(text) == []
        assert text.endswith("\n")

    def test_nasty_label_values_escape(self):
        metrics = ServiceMetrics()
        metrics.observe(
            "phase_seconds", 0.5, phase='we"ird\\path\nnewline'
        )
        text = metrics.render_prometheus()
        assert lint(text) == []
        assert '\\"' in text
        assert "\\\\" in text
        assert "\\n" in text
        # The raw newline must never split a sample line.
        for line in text.splitlines():
            assert line.startswith(("#", "hrms_"))

    def test_counters_carry_total_suffix_and_headers(self):
        text = _populated_metrics().render_prometheus()
        assert "# HELP hrms_jobs_submitted_total" in text
        assert "# TYPE hrms_jobs_submitted_total counter" in text
        assert "hrms_jobs_submitted_total 1" in text

    def test_summary_family_quantiles_and_count(self):
        text = _populated_metrics().render_prometheus()
        assert "# TYPE hrms_job_latency_seconds summary" in text
        assert 'hrms_job_latency_seconds{quantile="0.5"}' in text
        assert "hrms_job_latency_seconds_count 2" in text
        assert '# TYPE hrms_phase_seconds summary' in text
        assert 'hrms_phase_seconds{phase="queue",quantile="0.5"}' in text
        assert 'hrms_phase_seconds_count{phase="queue"} 1' in text
        assert 'hrms_scheduler_seconds{quantile="0.9",scheduler="hrms"}' in text

    def test_escape_helpers(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert escape_help("x\\y\nz") == "x\\\\y\\nz"

    def test_live_service_endpoint_is_compliant(self, tmp_path):
        from repro.service.api import SchedulingService

        service = SchedulingService(tmp_path / "store", workers=1)
        service.start()
        try:
            text = service.metrics_text()
        finally:
            service.stop()
        assert lint(text) == []
        assert "hrms_queue_depth" in text
