"""Unit tests for the dependence-graph container."""

import pytest

from repro.errors import (
    DuplicateOperationError,
    UnknownOperationError,
    ZeroDistanceCycleError,
)
from repro.graph.ddg import DependenceGraph
from repro.graph.edges import DependenceKind, Edge
from repro.graph.ops import Operation


def chain_graph(n: int = 4) -> DependenceGraph:
    g = DependenceGraph("chain")
    names = [f"n{i}" for i in range(n)]
    for name in names:
        g.add_operation(Operation(name))
    for src, dst in zip(names, names[1:]):
        g.add_edge(Edge(src, dst))
    return g


class TestConstruction:
    def test_program_order_is_insertion_order(self):
        g = DependenceGraph()
        for name in ["z", "a", "m"]:
            g.add_operation(Operation(name))
        assert g.node_names() == ["z", "a", "m"]
        assert g.first_node == "z"

    def test_duplicate_operation_rejected(self):
        g = DependenceGraph()
        g.add_operation(Operation("a"))
        with pytest.raises(DuplicateOperationError):
            g.add_operation(Operation("a"))

    def test_edge_requires_both_endpoints(self):
        g = DependenceGraph()
        g.add_operation(Operation("a"))
        with pytest.raises(UnknownOperationError):
            g.add_edge(Edge("a", "missing"))

    def test_duplicate_edges_are_idempotent(self):
        g = chain_graph(2)
        g.add_edge(Edge("n0", "n1"))  # already present
        assert g.edge_count() == 1

    def test_parallel_edges_with_distinct_distance(self):
        g = chain_graph(2)
        g.add_edge(Edge("n0", "n1", distance=1))
        assert g.edge_count() == 2


class TestQueries:
    def test_predecessors_and_successors(self):
        g = chain_graph(3)
        assert g.successors("n0") == ["n1"]
        assert g.predecessors("n2") == ["n1"]
        assert g.neighbors("n1") == ["n0", "n2"]

    def test_value_consumers_filters_memory_edges(self):
        g = chain_graph(3)
        g.add_edge(Edge("n0", "n2", 1, DependenceKind.MEMORY))
        assert g.value_consumers("n0") == [("n1", 0)]

    def test_unknown_lookup_raises(self):
        g = chain_graph(2)
        with pytest.raises(UnknownOperationError):
            g.operation("ghost")
        with pytest.raises(UnknownOperationError):
            g.out_edges("ghost")

    def test_total_latency(self):
        g = DependenceGraph()
        g.add_operation(Operation("a", latency=2))
        g.add_operation(Operation("b", latency=17))
        assert g.total_latency() == 19


class TestMutation:
    def test_remove_edge(self):
        g = chain_graph(3)
        g.remove_edge(Edge("n0", "n1"))
        assert g.successors("n0") == []
        assert g.edge_count() == 1

    def test_remove_operation_removes_incident_edges(self):
        g = chain_graph(3)
        g.remove_operation("n1")
        assert "n1" not in g
        assert g.edge_count() == 0

    def test_copy_is_independent(self):
        g = chain_graph(3)
        clone = g.copy()
        clone.remove_operation("n1")
        assert "n1" in g
        assert g.edge_count() == 2

    def test_subgraph_induces_edges(self):
        g = chain_graph(4)
        sub = g.subgraph(["n1", "n2"])
        assert sub.node_names() == ["n1", "n2"]
        assert sub.edge_count() == 1

    def test_subgraph_unknown_member(self):
        g = chain_graph(2)
        with pytest.raises(UnknownOperationError):
            g.subgraph(["n0", "ghost"])


class TestValidation:
    def test_zero_distance_cycle_rejected(self):
        g = chain_graph(3)
        g.add_edge(Edge("n2", "n0", 0))
        with pytest.raises(ZeroDistanceCycleError):
            g.validate()

    def test_positive_distance_cycle_accepted(self):
        g = chain_graph(3)
        g.add_edge(Edge("n2", "n0", 1))
        g.validate()

    def test_self_loop_with_distance_accepted(self):
        g = chain_graph(2)
        g.add_edge(Edge("n0", "n0", 1))
        g.validate()
