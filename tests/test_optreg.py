"""Tests for the register-optimal MILP scheduler (Eichenberger [7]).

These also serve as optimality audits of HRMS: on the paper's worked
example the MILP proves that 6 registers at II = 2 cannot be improved,
i.e. HRMS's headline number is not just better than Top-Down/Bottom-Up
but optimal.
"""

import pytest

from repro.frontend import compile_source, kernel_source
from repro.graph.builder import GraphBuilder
from repro.machine.configs import (
    govindarajan_machine,
    motivating_machine,
)
from repro.mii.analysis import compute_mii
from repro.schedule.maxlive import max_live
from repro.schedule.verify import verify_schedule
from repro.schedulers.optreg import OptRegScheduler
from repro.schedulers.registry import make_scheduler
from repro.workloads.motivating import motivating_example


class TestOptRegBasics:
    def test_registered(self):
        assert isinstance(make_scheduler("optreg"), OptRegScheduler)

    def test_motivating_example_proves_hrms_optimal(self):
        machine = motivating_machine()
        graph = motivating_example()
        optimal = OptRegScheduler().schedule(graph, machine)
        verify_schedule(optimal)
        assert optimal.ii == 2
        assert max_live(optimal) == 6  # == HRMS's result (Figure 4)

    def test_simple_chain(self):
        graph = (
            GraphBuilder("chain")
            .load("a")
            .add("b", deps=["a"])
            .store("c", deps=["b"])
            .build()
        )
        machine = govindarajan_machine()
        schedule = OptRegScheduler().schedule(graph, machine)
        verify_schedule(schedule)
        assert schedule.ii == compute_mii(graph, machine).mii

    def test_recurrence_loop(self):
        graph = (
            GraphBuilder("rec")
            .load("x")
            .add("acc", deps=["x", ("acc", 1)])
            .store("st", deps=["acc"])
            .build()
        )
        machine = govindarajan_machine()
        schedule = OptRegScheduler().schedule(graph, machine)
        verify_schedule(schedule)


class TestOptRegIsALowerBound:
    @pytest.mark.parametrize(
        "kernel", ["daxpy", "dot", "liv12_first_diff", "predicated_sum"]
    )
    def test_no_heuristic_beats_optreg_at_same_ii(self, kernel):
        machine = govindarajan_machine()
        from repro.frontend import govindarajan_profile

        loop = compile_source(
            kernel_source(kernel),
            name=kernel,
            profile=govindarajan_profile(),
        )
        optimal = OptRegScheduler().schedule(loop.graph, machine)
        verify_schedule(optimal)
        bound = max_live(optimal)
        for method in ("hrms", "topdown", "slack"):
            schedule = make_scheduler(method).schedule(loop.graph, machine)
            if schedule.ii == optimal.ii:
                assert max_live(schedule) >= bound, (kernel, method)

    def test_hrms_matches_optimum_on_daxpy(self):
        machine = govindarajan_machine()
        from repro.frontend import govindarajan_profile

        loop = compile_source(
            kernel_source("daxpy"),
            name="daxpy",
            profile=govindarajan_profile(),
        )
        optimal = OptRegScheduler().schedule(loop.graph, machine)
        hrms = make_scheduler("hrms").schedule(loop.graph, machine)
        assert hrms.ii == optimal.ii
        assert max_live(hrms) <= max_live(optimal) + 1


class TestOptRegEdgeCases:
    def test_unpipelined_span_forces_ii_escalation(self):
        # One divide on an unpipelined unit: II must grow to the
        # reservation length; the solver's span>II guard triggers the
        # driver's II search.
        from repro.machine.machine import MachineModel, UnitClass

        machine = MachineModel(
            "tiny",
            units=[
                UnitClass("fdiv", 1, pipelined=False),
                UnitClass("mem", 1),
            ],
        )
        graph = (
            GraphBuilder("divloop")
            .load("x")
            .op("d", "fdiv", latency=4, deps=["x"])
            .store("s", deps=["d"])
            .build()
        )
        schedule = OptRegScheduler().schedule(graph, machine)
        verify_schedule(schedule)
        assert schedule.ii >= 4

    def test_store_only_graph(self):
        graph = GraphBuilder("stores").store("a").store("b").build()
        machine = govindarajan_machine()
        schedule = OptRegScheduler().schedule(graph, machine)
        verify_schedule(schedule)
        assert max_live(schedule) == 0
