"""Lexer and parser tests for the loop language."""

from fractions import Fraction

import pytest

from repro.errors import LexError, ParseError
from repro.frontend.lexer import tokenize
from repro.frontend.nodes import (
    ArrayRef,
    Assign,
    BinOp,
    BoolOp,
    Call,
    Compare,
    IfStmt,
    NotOp,
    Num,
    UnaryOp,
    VarRef,
)
from repro.frontend.parser import parse_program
from repro.frontend.tokens import TokenKind

DAXPY = """
real a
real x(100), y(100)
do i = 1, 100
  y(i) = y(i) + a * x(i)
end do
"""


class TestLexer:
    def test_tokenizes_identifiers_keywords_numbers(self):
        tokens = tokenize("do i = 1, 10")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.OPERATOR,
            TokenKind.NUMBER,
            TokenKind.COMMA,
            TokenKind.NUMBER,
            TokenKind.NEWLINE,
            TokenKind.EOF,
        ]

    def test_comment_runs_to_end_of_line(self):
        tokens = tokenize("a = 1 ! the rest is ignored * / (\nb = 2")
        texts = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert texts == ["a", "b"]

    def test_multicharacter_operators_are_greedy(self):
        tokens = tokenize("a <= b >= c == d /= e")
        ops = [t.text for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops == ["<=", ">=", "==", "/="]

    def test_decimal_numbers(self):
        tokens = tokenize("x = 0.5")
        number = [t for t in tokens if t.kind is TokenKind.NUMBER][0]
        assert number.text == "0.5"

    def test_consecutive_newlines_collapse(self):
        tokens = tokenize("a = 1\n\n\nb = 2")
        newline_count = sum(
            1 for t in tokens if t.kind is TokenKind.NEWLINE
        )
        assert newline_count == 2

    def test_locations_are_tracked(self):
        tokens = tokenize("a = 1\n  b = 2")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert (b_token.location.line, b_token.location.column) == (2, 3)

    def test_bad_character_raises_with_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a = 1 $ 2")
        assert "unexpected character" in str(excinfo.value)
        assert "line 1" in str(excinfo.value)


class TestParserStructure:
    def test_daxpy_parses(self):
        program = parse_program(DAXPY)
        assert program.scalar_names() == ("a",)
        assert program.array_names() == ("x", "y")
        assert program.loop.var == "i"
        assert len(program.loop.body) == 1

    def test_declaration_mixing_scalars_and_arrays(self):
        program = parse_program(
            "real a, x(10), b, y(20)\ndo i = 1, 10\n  b = a\nend do"
        )
        assert program.scalar_names() == ("a", "b")
        assert program.array_names() == ("x", "y")

    def test_loop_bounds_are_expressions(self):
        program = parse_program(
            "real n\ndo i = 1, 100\n  n = n + 1\nend do"
        )
        assert isinstance(program.loop.lower, Num)
        assert program.loop.upper == Num(
            Fraction(100), program.loop.upper.location
        )

    def test_end_do_suffix_optional(self):
        program = parse_program("real s\ndo i = 1, 5\n  s = s\nend")
        assert program.loop.var == "i"

    def test_missing_do_is_an_error(self):
        with pytest.raises(ParseError, match="expected a 'do' loop"):
            parse_program("real a\n")

    def test_trailing_garbage_is_an_error(self):
        with pytest.raises(ParseError, match="unexpected text"):
            parse_program("do i = 1, 5\n  i2 = 1\nend do\nreal b\n")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            parse_program("real s\ndo i = 1, 5\n  s = s + 1\n")

    def test_array_extent_must_be_positive_integer(self):
        with pytest.raises(ParseError, match="extent"):
            parse_program("real x(0)\ndo i = 1, 5\n  x(i) = 1\nend do")


class TestParserExpressions:
    def _value(self, text: str):
        source = f"real s, k\nreal x(9), ind(9)\ndo i = 1, 5\n  s = {text}\nend do"
        return parse_program(source).loop.body[0].value

    def test_precedence_mul_over_add(self):
        value = self._value("1 + 2 * 3")
        assert isinstance(value, BinOp) and value.op == "+"
        assert isinstance(value.rhs, BinOp) and value.rhs.op == "*"

    def test_left_associativity_of_subtraction(self):
        value = self._value("1 - 2 - 3")
        assert value.op == "-"
        assert isinstance(value.lhs, BinOp) and value.lhs.op == "-"

    def test_parentheses_override(self):
        value = self._value("(1 + 2) * 3")
        assert value.op == "*"
        assert isinstance(value.lhs, BinOp) and value.lhs.op == "+"

    def test_unary_minus(self):
        value = self._value("-s + 1")
        assert value.op == "+"
        assert isinstance(value.lhs, UnaryOp)

    def test_intrinsic_call(self):
        value = self._value("sqrt(s)")
        assert isinstance(value, Call)
        assert value.func == "sqrt"

    def test_intrinsic_arity_checked(self):
        with pytest.raises(ParseError, match="sqrt takes 1 argument"):
            self._value("sqrt(s, s)")

    def test_two_argument_intrinsic(self):
        value = self._value("max(s, 1)")
        assert isinstance(value, Call) and len(value.args) == 2

    def test_array_reference_with_affine_subscript(self):
        value = self._value("x(i + 1)")
        assert isinstance(value, ArrayRef)
        assert isinstance(value.subscripts[0], BinOp)

    def test_nested_array_reference(self):
        value = self._value("x(ind(i))")
        assert isinstance(value, ArrayRef)
        assert isinstance(value.subscripts[0], ArrayRef)


class TestParserControlFlow:
    def test_if_then_else(self):
        program = parse_program(
            """
            real s
            real x(10)
            do i = 1, 10
              if (x(i) > 0) then
                s = s + x(i)
              else
                s = s - x(i)
              end if
            end do
            """
        )
        stmt = program.loop.body[0]
        assert isinstance(stmt, IfStmt)
        assert isinstance(stmt.cond, Compare)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        program = parse_program(
            "real s\nreal x(5)\ndo i = 1, 5\n"
            "  if (x(i) < 1) then\n    s = s + 1\n  end if\nend do"
        )
        stmt = program.loop.body[0]
        assert stmt.else_body == ()

    def test_boolean_connectives_and_not(self):
        program = parse_program(
            "real s, lo, hi\nreal x(5)\ndo i = 1, 5\n"
            "  if (not (x(i) < lo) and x(i) < hi or s == 0) then\n"
            "    s = s + 1\n  end if\nend do"
        )
        cond = program.loop.body[0].cond
        # 'or' binds loosest.
        assert isinstance(cond, BoolOp) and cond.op == "or"
        assert isinstance(cond.lhs, BoolOp) and cond.lhs.op == "and"
        assert isinstance(cond.lhs.lhs, NotOp)

    def test_parenthesised_condition_vs_expression(self):
        program = parse_program(
            "real s\nreal x(5)\ndo i = 1, 5\n"
            "  if ((x(i) + 1) > (2 * s)) then\n    s = s + 1\n  end if\n"
            "end do"
        )
        cond = program.loop.body[0].cond
        assert isinstance(cond, Compare) and cond.op == ">"

    def test_missing_relop_in_condition(self):
        with pytest.raises(ParseError, match="relational"):
            parse_program(
                "real s\ndo i = 1, 5\n  if (s) then\n    s = 1\n  end if\n"
                "end do"
            )

    def test_nested_ifs(self):
        program = parse_program(
            """
            real s, a, b
            real x(5)
            do i = 1, 5
              if (x(i) > a) then
                if (x(i) < b) then
                  s = s + 1
                end if
              end if
            end do
            """
        )
        outer = program.loop.body[0]
        inner = outer.then_body[0]
        assert isinstance(inner, IfStmt)
