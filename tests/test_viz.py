"""Tests for the DOT export and the Figure-2-style text charts."""

from repro.frontend import compile_source
from repro.machine.configs import motivating_machine
from repro.schedule.maxlive import max_live
from repro.schedulers.registry import make_scheduler
from repro.viz import graph_to_dot, lifetime_chart, register_rows, schedule_table
from repro.workloads.motivating import motivating_example

HRMS = make_scheduler("hrms")


def _schedule():
    return HRMS.schedule(motivating_example(), motivating_machine())


class TestDot:
    def test_contains_every_node_and_edge(self):
        graph = motivating_example()
        dot = graph_to_dot(graph)
        for op in graph.operations():
            assert f'"{op.name}"' in dot
        assert dot.count("->") == graph.edge_count()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_stores_are_boxes(self):
        graph = motivating_example()
        dot = graph_to_dot(graph)
        for op in graph.operations():
            if op.is_store:
                line = next(
                    l for l in dot.splitlines()
                    if l.strip().startswith(f'"{op.name}" [')
                )
                assert "shape=box" in line

    def test_loop_carried_edges_labelled(self):
        loop = compile_source(
            "real s\nreal x(9)\ndo i = 1, 9\n  s = s + x(i)\nend do"
        )
        dot = graph_to_dot(loop.graph)
        assert 'label="d=1"' in dot
        assert "constraint=false" in dot

    def test_edge_kinds_styled(self):
        loop = compile_source(
            """
            real lo
            real x(9), y(9)
            do i = 2, 9
              if (x(i) > lo) then
                y(i) = y(i - 1)
              end if
            end do
            """
        )
        dot = graph_to_dot(loop.graph)
        assert "style=dotted" in dot  # memory
        assert "style=dashed" in dot  # control
        assert "style=solid" in dot   # register

    def test_latencies_optional(self):
        graph = motivating_example()
        assert "λ=" in graph_to_dot(graph, include_latencies=True)
        assert "λ=" not in graph_to_dot(graph, include_latencies=False)

    def test_quoting_of_odd_names(self):
        from repro.graph.builder import GraphBuilder

        graph = (
            GraphBuilder("q")
            .op('weird"name', "generic", latency=1)
            .build()
        )
        dot = graph_to_dot(graph)
        assert '\\"' in dot


class TestCharts:
    def test_schedule_table_shows_all_ops(self):
        schedule = _schedule()
        table = schedule_table(schedule)
        for name in schedule.graph.node_names():
            assert name in table
        assert "II = 2" in table

    def test_lifetime_chart_bar_lengths(self):
        schedule = _schedule()
        chart = lifetime_chart(schedule)
        # Every producer appears as a column header, and the number of
        # '#' marks equals the number of values (one definition each).
        from repro.schedule.lifetimes import compute_lifetimes

        lifetimes = compute_lifetimes(schedule)
        header = chart.splitlines()[0]
        for lifetime in lifetimes:
            assert lifetime.producer in header
        assert chart.count("#") == len(lifetimes)

    def test_register_rows_matches_maxlive(self):
        schedule = _schedule()
        text = register_rows(schedule)
        assert f"MaxLive = {max_live(schedule)}" in text
        assert text.count("row | live variants") == 1

    def test_empty_variant_chart(self):
        from repro.graph.builder import GraphBuilder
        from repro.machine.configs import govindarajan_machine

        graph = GraphBuilder("stores").store("a").store("b").build()
        schedule = HRMS.schedule(graph, govindarajan_machine())
        assert lifetime_chart(schedule) == "(no loop variants)"
