"""Semantic-analysis and affine-analysis tests."""

from fractions import Fraction

import pytest

from repro.errors import SemanticError
from repro.frontend.affine import analyze_affine
from repro.frontend.parser import parse_program
from repro.frontend.semantics import analyze


def _analyze(source: str):
    program = parse_program(source)
    return analyze(program, source)


class TestScalarClassification:
    def test_variant_vs_invariant(self):
        info = _analyze(
            """
            real a, s
            real x(10)
            do i = 1, 10
              s = s + a * x(i)
            end do
            """
        )
        assert info.variant_scalars == ("s",)
        assert info.invariant_scalars == ("a",)

    def test_scalar_assigned_only_in_branch_is_variant(self):
        info = _analyze(
            """
            real s, t
            real x(10)
            do i = 1, 10
              if (x(i) > t) then
                s = s + 1
              end if
            end do
            """
        )
        assert info.variant_scalars == ("s",)
        assert info.invariant_scalars == ("t",)

    def test_trip_count_from_literal_bounds(self):
        info = _analyze("real s\ndo i = 5, 104\n  s = s + 1\nend do")
        assert info.trip_count == 100

    def test_trip_count_none_for_symbolic_bounds(self):
        info = _analyze("real s, n\ndo i = 1, n\n  s = s + 1\nend do")
        assert info.trip_count is None
        # n is read (as a bound) but loop-bound reads happen before the
        # body; only body reads classify scalars.
        assert "n" not in info.variant_scalars


class TestSemanticErrors:
    def test_undeclared_scalar_read(self):
        with pytest.raises(SemanticError, match="undeclared scalar 'b'"):
            _analyze("real a\ndo i = 1, 5\n  a = b\nend do")

    def test_undeclared_scalar_write(self):
        with pytest.raises(SemanticError, match="undeclared scalar 'c'"):
            _analyze("real a\ndo i = 1, 5\n  c = a\nend do")

    def test_undeclared_array(self):
        with pytest.raises(SemanticError, match="undeclared array 'z'"):
            _analyze("real a\ndo i = 1, 5\n  a = z(i)\nend do")

    def test_loop_variable_must_not_be_assigned(self):
        with pytest.raises(SemanticError, match="must not be assigned"):
            _analyze("real a\ndo i = 1, 5\n  i = a\nend do")

    def test_loop_variable_must_not_shadow_declaration(self):
        with pytest.raises(SemanticError, match="shadows"):
            _analyze("real i\ndo i = 1, 5\n  i2 = 1\nend do")

    def test_array_used_without_subscript(self):
        with pytest.raises(SemanticError, match="without a subscript"):
            _analyze("real a\nreal x(5)\ndo i = 1, 5\n  a = x\nend do")

    def test_array_assigned_without_subscript(self):
        with pytest.raises(SemanticError, match="without a subscript"):
            _analyze("real a\nreal x(5)\ndo i = 1, 5\n  x = a\nend do")

    def test_duplicate_declaration(self):
        with pytest.raises(SemanticError, match="more than once"):
            _analyze("real a\nreal a(5)\ndo i = 1, 5\n  a = 1\nend do")

    def test_loop_bound_using_loop_variable(self):
        with pytest.raises(SemanticError, match="loop variable"):
            _analyze("real s\ndo i = 1, i\n  s = 1\nend do")

    def test_loop_bound_using_array(self):
        with pytest.raises(SemanticError, match="arrays"):
            _analyze("real s\nreal x(5)\ndo i = 1, x(1)\n  s = 1\nend do")


class TestAffineAnalysis:
    def _form(self, text: str, invariants=("k",)):
        source = (
            f"real s, k\nreal x(100)\ndo i = 1, 10\n  s = x({text})\nend do"
        )
        program = parse_program(source)
        subscript = program.loop.body[0].value.subscripts[0]
        return analyze_affine(subscript, "i", frozenset(invariants))

    def test_plain_index(self):
        form = self._form("i")
        assert (form.coef, form.const) == (Fraction(1), Fraction(0))

    def test_shifted_index(self):
        form = self._form("i - 3")
        assert (form.coef, form.const) == (Fraction(1), Fraction(-3))

    def test_scaled_index(self):
        form = self._form("2 * i + 1")
        assert (form.coef, form.const) == (Fraction(2), Fraction(1))

    def test_negated_index(self):
        form = self._form("-i + 10")
        assert (form.coef, form.const) == (Fraction(-1), Fraction(10))

    def test_symbolic_offset(self):
        form = self._form("i + k")
        assert form.coef == 1
        assert form.sym_coefs == (("k", Fraction(1)),)

    def test_symbolic_offsets_cancel(self):
        form = self._form("i + k - k")
        assert form.sym_coefs == ()

    def test_division_by_constant(self):
        form = self._form("(2 * i + 4) / 2")
        assert (form.coef, form.const) == (Fraction(1), Fraction(2))

    def test_variant_scalar_is_not_affine(self):
        assert self._form("i + s") is None

    def test_indirect_subscript_is_not_affine(self):
        assert self._form("x(i)") is None

    def test_product_of_loop_var_not_affine(self):
        assert self._form("i * i") is None

    def test_division_by_loop_var_not_affine(self):
        assert self._form("k / i", invariants=("k",)) is None

    def test_distance_between_forms(self):
        write = self._form("i")
        read = self._form("i - 1")
        assert write.minus_const(read) == Fraction(1)

    def test_distance_undefined_across_different_shapes(self):
        assert self._form("i").minus_const(self._form("2 * i")) is None
        assert self._form("i").minus_const(self._form("i + k")) is None
