"""Corpus replay: every committed reproducer stays fixed forever.

Each file in ``tests/corpus/`` is a minimized bug the QA campaign once
surfaced.  Replaying an entry re-runs its scenario (schedule + oracle
battery, generator fingerprint, or verifier rejection) and fails loudly
if the bug has crept back.  An *empty* corpus is itself a failure: the
directory shipping without its files (packaging, checkout filters)
would otherwise silently void the whole regression layer.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.qa.corpus import load_corpus, replay_entry

CORPUS_DIR = Path(__file__).parent / "corpus"


def _entries():
    if not CORPUS_DIR.is_dir():
        return []
    return load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CORPUS_DIR.is_dir(), (
        f"{CORPUS_DIR} is missing — the reproducer corpus did not ship"
    )
    assert _entries(), (
        f"{CORPUS_DIR} contains no reproducers — the regression corpus "
        "is empty, which voids the QA layer's guarantees"
    )


@pytest.mark.parametrize(
    "path,envelope",
    _entries(),
    ids=[path.name for path, _ in _entries()],
)
def test_corpus_entry_replays(path, envelope):
    replay_entry(envelope)


def test_corpus_entries_carry_provenance():
    for path, envelope in _entries():
        assert envelope.get("description"), f"{path.name}: no description"
        assert envelope.get("oracle"), f"{path.name}: no oracle"
        assert envelope.get("kind") in ("schedule", "generator", "verifier")
