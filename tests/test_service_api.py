"""End-to-end tests over a live localhost scheduling server.

Covers the acceptance criteria of the service PR: submissions over
HTTP yield schedules bit-identical to direct in-process scheduling
(100 of them, concurrently), and a server restarted onto the same
store directory serves them as cache hits without rescheduling.
"""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServiceError
from repro.frontend.pipeline import compile_source
from repro.mii.analysis import compute_mii
from repro.schedulers.registry import make_scheduler
from repro.service import ArtifactStore, ServiceClient, ServiceServer
from repro.workloads.govindarajan import govindarajan_suite

DAXPY = """
    real a
    real x(1000), y(1000)
    do i = 1, 1000
      y(i) = y(i) + a * x(i)
    end do
"""


@pytest.fixture
def server(tmp_path):
    with ServiceServer(tmp_path / "store", workers=4) as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


def direct_schedule(graph, machine, scheduler="hrms"):
    analysis = compute_mii(graph, machine)
    return make_scheduler(scheduler).schedule(graph, machine, analysis)


class TestEndToEnd:
    def test_health_and_metrics(self, client):
        assert client.health()
        text = client.metrics()
        assert "hrms_queue_depth" in text
        assert "hrms_store_hit_rate" in text

    def test_submit_poll_fetch_graph_job(self, client, gov_machine, gov_suite):
        loop = gov_suite[0]
        job_id = client.submit_graph(loop.graph, machine="govindarajan")
        record = client.wait(job_id, timeout=30)
        assert record["status"] == "done"
        result = record["result"]
        direct = direct_schedule(loop.graph, gov_machine)
        assert result["ii"] == direct.ii
        envelope = client.artifact(result["artifact"])
        assert envelope["schema"] == 1
        assert envelope["kind"] == "schedule"
        payload = envelope["payload"]
        assert payload["start"] == direct.start
        assert payload["maxlive"] == result["maxlive"]

    def test_submit_source_job(self, client, pc_machine):
        job_id = client.submit_source(DAXPY, name="daxpy")
        envelope = client.result(job_id, timeout=30)
        direct = direct_schedule(
            compile_source(DAXPY, name="daxpy").graph, pc_machine
        )
        assert envelope["payload"]["ii"] == direct.ii
        assert envelope["payload"]["start"] == direct.start

    def test_machine_over_the_wire(self, client, gov_machine, gov_suite):
        """A machine sent as a wire dict, not a registered name."""
        loop = gov_suite[1]
        job_id = client.submit_graph(loop.graph, machine=gov_machine)
        record = client.wait(job_id, timeout=30)
        assert record["status"] == "done"
        assert record["result"]["ii"] == direct_schedule(
            loop.graph, gov_machine
        ).ii

    def test_failed_job_captures_error(self, client):
        job_id = client.submit({"kind": "schedule", "source": "not a loop"})
        record = client.wait(job_id, timeout=30)
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ParseError"
        with pytest.raises(ServiceError, match="ParseError"):
            client.result(job_id)

    def test_suite_job(self, client, gov_machine):
        job_id = client.submit(
            {"kind": "suite", "suite": "govindarajan", "n_loops": 5,
             "schedulers": ["hrms", "topdown"]}
        )
        envelope = client.result(job_id, timeout=60)
        loops = govindarajan_suite()[:5]
        assert [row["name"] for row in envelope["payload"]["loops"]] == [
            loop.name for loop in loops
        ]
        for loop, row in zip(loops, envelope["payload"]["loops"]):
            assert row["rows"]["hrms"]["ii"] == direct_schedule(
                loop.graph, gov_machine
            ).ii

    def test_batch_submission(self, client, gov_suite):
        requests = [
            {"kind": "schedule", "graph": _graph_dict(loop.graph),
             "machine": "govindarajan"}
            for loop in gov_suite[:4]
        ]
        ids = client.submit_batch(requests)
        assert len(ids) == 4
        for job_id in ids:
            assert client.wait(job_id, timeout=30)["status"] == "done"


def _graph_dict(graph):
    from repro.graph.serialization import graph_to_dict

    return graph_to_dict(graph)


class TestConcurrentAndWarmRestart:
    """The PR's acceptance criteria, verbatim."""

    def _submissions(self):
        """100 jobs over 48 distinct (graph, scheduler) requests."""
        graphs = [loop.graph for loop in govindarajan_suite()]  # 24
        pairs = [
            (graph, scheduler)
            for graph in graphs
            for scheduler in ("hrms", "topdown")
        ]
        work = (pairs * 3)[:100]
        assert len(work) == 100
        return work

    def test_100_concurrent_jobs_bit_identical_and_warm_restart(
        self, tmp_path, gov_machine
    ):
        work = self._submissions()
        expected = {}
        for graph, scheduler in work:
            key = (graph.name, scheduler)
            if key not in expected:
                schedule = direct_schedule(graph, gov_machine, scheduler)
                expected[key] = (schedule.ii, schedule.start)

        store_dir = tmp_path / "store"

        def run_round(server):
            client = ServiceClient(server.url)
            with ThreadPoolExecutor(max_workers=32) as pool:
                ids = list(
                    pool.map(
                        lambda item: client.submit_graph(
                            item[0],
                            machine="govindarajan",
                            scheduler=item[1],
                        ),
                        work,
                    )
                )
            records = [client.wait(job_id, timeout=120) for job_id in ids]
            envelopes = []
            for (graph, scheduler), record in zip(work, records):
                assert record["status"] == "done", record
                envelope = client.artifact(record["result"]["artifact"])
                payload = envelope["payload"]
                ii, start = expected[(graph.name, scheduler)]
                assert payload["ii"] == ii, (graph.name, scheduler)
                assert payload["start"] == start, (graph.name, scheduler)
                envelopes.append((record, payload))
            return envelopes

        # Round 1: cold store, 100 concurrent submissions over HTTP.
        with ServiceServer(store_dir, workers=4) as server:
            run_round(server)
            computed_cold = server.service.metrics.counter(
                "schedules_computed"
            )
            # 48 distinct (graph, scheduler) pairs; duplicates may race
            # but the store converges on identical bits either way.
            assert computed_cold >= 48

        # Round 2: a *new* server process-equivalent on the same store
        # must serve every job from the store without rescheduling.
        with ServiceServer(store_dir, workers=4) as server:
            records = run_round(server)
            assert all(record["result"]["cached"] for record, _ in records)
            assert server.service.metrics.counter("schedules_computed") == 0
            assert server.service.store.stats().writes == 0

    def test_restart_preserves_artifacts_on_disk(self, tmp_path, gov_suite):
        store_dir = tmp_path / "store"
        with ServiceServer(store_dir, workers=2) as server:
            client = ServiceClient(server.url)
            job_id = client.submit_graph(
                gov_suite[0].graph, machine="govindarajan"
            )
            key = client.wait(job_id, timeout=30)["result"]["artifact"]
        # Server gone; the artifact is plain JSON on disk.
        envelope = ArtifactStore(store_dir).get(key)
        assert envelope is not None and envelope["payload"]["ii"] >= 1


class TestInProcessService:
    """Behaviour easier to pin down without the HTTP hop."""

    def test_finished_jobs_evicted(self, tmp_path, gov_suite):
        from repro.service.api import SchedulingService

        service = SchedulingService(
            tmp_path / "store", workers=1, finished_jobs_kept=2
        ).start()
        try:
            jobs = [
                service.submit(
                    {
                        "kind": "schedule",
                        "graph": _graph_dict(loop.graph),
                        "machine": "govindarajan",
                    }
                )
                for loop in gov_suite[:5]
            ]
            deadline = 30
            import time as time_mod

            began = time_mod.monotonic()
            while service.metrics.counter("jobs_done") < 5:
                assert time_mod.monotonic() - began < deadline
                time_mod.sleep(0.01)
            assert len(service.jobs()) == 2, "old settled jobs must evict"
            assert service.job(jobs[0].id) is None
            assert service.job(jobs[-1].id) is not None
        finally:
            service.stop()

    def test_suite_alias_shares_artifact(self, tmp_path):
        from repro.service.executor import SchedulingExecutor
        from repro.service.store import ArtifactStore

        executor = SchedulingExecutor(ArtifactStore(tmp_path / "store"))
        first = executor.execute_request(
            "suite", {"suite": "perfect_club", "n_loops": 3}
        )
        second = executor.execute_request(
            "suite", {"suite": "perfectclub", "n_loops": 3}
        )
        assert second["artifact"] == first["artifact"]
        assert second["cached"] and not first["cached"]


class TestHttpErrors:
    def _raw(self, server, method, path, body=None):
        data = None if body is None else body.encode("utf-8")
        request = urllib.request.Request(
            server.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_unknown_job_404(self, server):
        code, body = self._raw(server, "GET", "/v1/jobs/nope")
        assert code == 404 and "error" in body

    def test_unknown_artifact_404(self, server):
        code, body = self._raw(server, "GET", "/v1/artifacts/" + "0" * 64)
        assert code == 404 and "error" in body

    def test_unknown_route_404(self, server):
        assert self._raw(server, "GET", "/v2/everything")[0] == 404

    def test_bad_json_400(self, server):
        code, body = self._raw(server, "POST", "/v1/jobs", "{not json")
        assert code == 400 and "JSON" in body["error"]

    def test_empty_body_400(self, server):
        assert self._raw(server, "POST", "/v1/jobs", "")[0] == 400

    def test_missing_graph_and_source_400(self, server):
        code, body = self._raw(
            server, "POST", "/v1/jobs", json.dumps({"kind": "schedule"})
        )
        assert code == 400 and "graph" in body["error"]

    def test_unknown_kind_400(self, server):
        code, body = self._raw(
            server, "POST", "/v1/jobs", json.dumps({"kind": "banana"})
        )
        assert code == 400 and "unknown job kind" in body["error"]

    def test_batch_is_all_or_nothing(self, server, client, gov_suite):
        """A bad control field mid-batch enqueues nothing (regression:
        pre-validation used to skip control fields)."""
        good = {
            "kind": "schedule",
            "graph": _graph_dict(gov_suite[0].graph),
            "machine": "govindarajan",
        }
        bad = dict(good, priority="high")
        code, body = self._raw(
            server, "POST", "/v1/batch", json.dumps({"jobs": [good, bad]})
        )
        assert code == 400 and "bad control field" in body["error"]
        assert server.service.metrics.counter("jobs_submitted") == 0
        assert server.service.jobs() == []

    def test_bad_content_length_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=b"{}", method="POST",
            headers={"Content-Type": "application/json"},
        )
        request.add_unredirected_header("Content-Length", "abc")
        try:
            with urllib.request.urlopen(request, timeout=10) as resp:
                code = resp.status
        except urllib.error.HTTPError as exc:
            code = exc.code
        assert code == 400

    def test_bad_batch_400(self, server):
        code, _ = self._raw(
            server, "POST", "/v1/batch", json.dumps({"jobs": []})
        )
        assert code == 400
        code, _ = self._raw(
            server, "POST", "/v1/batch",
            json.dumps({"jobs": [{"kind": "schedule"}]}),
        )
        assert code == 400

    def test_malformed_artifact_key_400(self, server):
        code, _ = self._raw(server, "GET", "/v1/artifacts/NOT-HEX")
        assert code == 400

    def test_bad_status_filter_400(self, server):
        code, _ = self._raw(server, "GET", "/v1/jobs?status=limbo")
        assert code == 400

    def test_jobs_listing(self, server, client, gov_suite):
        job_id = client.submit_graph(
            gov_suite[0].graph, machine="govindarajan"
        )
        client.wait(job_id, timeout=30)
        code, body = self._raw(server, "GET", "/v1/jobs")
        assert code == 200
        assert body["counts"].get("done", 0) >= 1
        assert any(job["id"] == job_id for job in body["jobs"])
        code, body = self._raw(server, "GET", "/v1/jobs?status=done")
        assert all(job["status"] == "done" for job in body["jobs"])


class TestBackpressureAndReadiness:
    """Bounded-queue shedding (429 + Retry-After) and the liveness /
    readiness split."""

    def _raw(self, url, method, path, body=None):
        data = None if body is None else body.encode("utf-8")
        request = urllib.request.Request(
            url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read())

    @pytest.fixture
    def stalled(self, tmp_path, gov_suite):
        """A bounded service whose pool never starts: submissions stay
        queued, so the depth cap is hit deterministically."""
        import threading

        from repro.service import ExecutorConfig
        from repro.service.api import SchedulingService, make_server

        service = SchedulingService(
            tmp_path / "store",
            config=ExecutorConfig(workers=1, max_queue_depth=2),
        )
        httpd = make_server(service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            yield f"http://{host}:{port}", service
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
            service.queue.close()

    def _submission(self, gov_suite):
        return json.dumps(
            {
                "kind": "schedule",
                "graph": _graph_dict(gov_suite[0].graph),
                "machine": "govindarajan",
            }
        )

    def test_full_queue_sheds_with_429(self, stalled, gov_suite):
        url, service = stalled
        body = self._submission(gov_suite)
        for _ in range(2):
            code, _, _ = self._raw(url, "POST", "/v1/jobs", body)
            assert code == 202
        code, headers, payload = self._raw(url, "POST", "/v1/jobs", body)
        assert code == 429
        assert headers.get("Retry-After") == "1"
        assert "full" in payload["error"]
        assert service.metrics.counter("jobs_rejected") == 1
        # The shed submission was never admitted.
        assert service.metrics.counter("jobs_submitted") == 2
        assert len(service.jobs()) == 2

    def test_unready_server_is_still_live(self, stalled):
        url, _ = stalled
        code, _, payload = self._raw(url, "GET", "/healthz")
        assert code == 200
        assert payload["live"] is True
        assert payload["ready"] is False
        assert "not running" in payload["reason"]
        code, _, payload = self._raw(url, "GET", "/readyz")
        assert code == 503
        assert payload["ready"] is False

    def test_readyz_200_on_healthy_server(self, server):
        import urllib.request as request_lib

        with request_lib.urlopen(server.url + "/readyz", timeout=10) as resp:
            assert resp.status == 200
            assert json.loads(resp.read())["ready"] is True

    def test_full_queue_flips_readiness(self, stalled, monkeypatch):
        url, service = stalled
        # With the pool faked as running, a saturated queue is what
        # makes the server unready.
        monkeypatch.setattr(
            type(service.pool), "started", property(lambda self: True)
        )
        ready, reason = service.readiness()
        assert ready
        from repro.service.jobs import Job

        service.queue.push(Job(kind="schedule", request={}))
        service.queue.push(Job(kind="schedule", request={}))
        ready, reason = service.readiness()
        assert not ready
        assert "full" in reason
        code, _, _ = self._raw(url, "GET", "/readyz")
        assert code == 503


class TestDeadlinesOverHttp:
    def test_job_timeout_settles_with_timeout_status(
        self, server, client, gov_suite
    ):
        """A deadline blown under injected scheduler latency must come
        back over HTTP as the distinct ``timeout`` status."""
        from repro.service import faults
        from repro.service.faults import FaultPlan, FaultRule

        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule("executor.latency", max_fires=1, delay_s=0.3),
            ),
        )
        with faults.injected(plan):
            job_id = client.submit_graph(
                gov_suite[0].graph,
                machine="govindarajan",
                timeout=0.05,
            )
            record = client.wait(job_id, timeout=30)
        assert record["status"] == "timeout"
        assert record["result"] is None
        assert record["error"]["type"] == "DeadlineExceededError"
        text = client.metrics()
        assert "hrms_jobs_timeout_total 1" in text

    def test_bad_timeout_rejected(self, server):
        import urllib.request as request_lib

        body = json.dumps(
            {"kind": "schedule", "source": DAXPY, "timeout": -1}
        ).encode("utf-8")
        request = request_lib.Request(
            server.url + "/v1/jobs", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            request_lib.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestMetricsEndpoint:
    def test_counters_progress(self, client, gov_suite):
        job_id = client.submit_graph(
            gov_suite[0].graph, machine="govindarajan"
        )
        client.wait(job_id, timeout=30)
        text = client.metrics()
        metrics = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):  # HELP/TYPE headers
                continue
            name, value = line.rsplit(" ", 1)
            metrics[name] = float(value)
        assert metrics["hrms_jobs_submitted_total"] >= 1
        assert metrics["hrms_jobs_done_total"] >= 1
        assert metrics["hrms_schedules_computed_total"] >= 1
        assert metrics["hrms_store_writes"] >= 1
        assert 'hrms_job_latency_seconds{quantile="0.5"}' in metrics


class TestVerifyEndpoint:
    """POST /v1/verify: re-run the QA oracle battery on a stored
    schedule artifact."""

    def _schedule_job(self, client, graph):
        from repro.graph.serialization import graph_to_dict

        job_id = client.submit(
            {
                "kind": "schedule",
                "graph": graph_to_dict(graph),
                "machine": "govindarajan",
            }
        )
        record = client.wait(job_id)
        assert record["status"] == "done"
        return record["result"]["artifact"]

    def test_verify_stored_schedule(self, client, gov_suite):
        graph = gov_suite[0].graph
        key = self._schedule_job(client, graph)
        report = client.verify(key, graph)
        assert report["ok"] is True
        assert report["artifact"] == key
        assert report["artifact_kind"] == "schedule"
        oracles = {check["oracle"] for check in report["checks"]}
        assert oracles == {"legal", "ii-bounds", "sim-reads", "sim-maxlive"}
        assert all(check["ok"] for check in report["checks"])

    def test_verify_portfolio_artifact(self, client, gov_suite):
        from repro.graph.serialization import graph_to_dict

        graph = gov_suite[0].graph
        job_id = client.submit(
            {
                "kind": "schedule",
                "graph": graph_to_dict(graph),
                "machine": "govindarajan",
                "scheduler": "portfolio",
                "members": ["hrms", "topdown"],
            }
        )
        record = client.wait(job_id, timeout=120)
        assert record["status"] == "done"
        key = record["result"]["artifact"]
        report = client.verify(key, graph)
        assert report["ok"] is True
        assert report["artifact_kind"] == "portfolio"

    def test_verify_unknown_artifact_404(self, client, gov_suite):
        with pytest.raises(ServiceError, match="404"):
            client.verify("ab" * 32, gov_suite[0].graph)

    def test_verify_wrong_graph_rejected(self, client, gov_suite):
        key = self._schedule_job(client, gov_suite[0].graph)
        with pytest.raises(ServiceError, match="digest"):
            client.verify(key, gov_suite[1].graph)

    def test_verify_requires_graph(self, client, gov_suite):
        key = self._schedule_job(client, gov_suite[0].graph)
        with pytest.raises(ServiceError, match="graph"):
            client._call("POST", "/v1/verify", {"artifact": key})

    def test_verify_requires_artifact(self, client):
        with pytest.raises(ServiceError, match="artifact"):
            client._call("POST", "/v1/verify", {"graph": {}})

    def test_verify_rejects_suite_artifacts(self, client):
        job_id = client.submit(
            {"kind": "suite", "suite": "govindarajan", "n_loops": 2}
        )
        record = client.wait(job_id, timeout=120)
        assert record["status"] == "done"
        key = record["result"]["artifact"]
        with pytest.raises(ServiceError, match="kind"):
            client.verify(key, {})
